//! A data-warehouse style scenario: choosing between candidate acyclic
//! schemas for a denormalised "sales" universal relation.
//!
//! Run with `cargo run --example warehouse_schema`.
//!
//! The paper's introduction motivates measuring AJD loss for schema design:
//! a snowflake-style decomposition compresses the data, but if the
//! functional/multivalued structure is only *approximate* the decomposition
//! produces spurious tuples.  Here we synthesise a sales table whose
//! dimension hierarchy (city → region) is almost, but not perfectly, clean,
//! and compare three candidate acyclic schemas by their J-measure, their
//! exact loss, and the bounds connecting the two.

use ajd::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a synthetic denormalised sales relation with attributes
/// (order, product, city, region): region is a function of city except for a
/// few "dirty" rows, and products are sold mostly independently of geography.
fn build_sales(rng: &mut StdRng, n_orders: u32, dirty_rows: u32) -> (Catalog, Relation) {
    let catalog = Catalog::with_attributes(["order", "product", "city", "region"])
        .expect("distinct attribute names");
    let order = catalog.attr("order").unwrap();
    let num_cities = 12u32;
    let num_products = 8u32;
    let city_region = |city: u32| city % 3; // 3 regions, 4 cities each

    let schema = vec![
        order,
        catalog.attr("product").unwrap(),
        catalog.attr("city").unwrap(),
        catalog.attr("region").unwrap(),
    ];
    let mut r = Relation::with_capacity(schema, n_orders as usize).unwrap();
    for o in 0..n_orders {
        let product = rng.random_range(0..num_products);
        let city = rng.random_range(0..num_cities);
        let region = if o < dirty_rows {
            // data-entry noise: the region does not match the city
            (city_region(city) + 1) % 3
        } else {
            city_region(city)
        };
        r.push_row(&[o, product, city, region]).unwrap();
    }
    (catalog, r)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (catalog, sales) = build_sales(&mut rng, 4_000, 40);
    println!(
        "sales relation: {} rows over {:?}",
        sales.len(),
        (0..4)
            .map(|i| catalog.name(AttrId(i)).unwrap().to_owned())
            .collect::<Vec<_>>()
    );

    let order = catalog.attr("order").unwrap();
    let product = catalog.attr("product").unwrap();
    let city = catalog.attr("city").unwrap();
    let region = catalog.attr("region").unwrap();

    // Candidate acyclic schemas (all of them join trees over the 4 attributes).
    let candidates: Vec<(&str, Vec<AttrSet>)> = vec![
        (
            "snowflake: {order,product,city} + {city,region}",
            vec![
                AttrSet::from_slice(&[order, product, city]),
                AttrSet::from_slice(&[city, region]),
            ],
        ),
        (
            "star-ish: {order,product} + {order,city} + {city,region}",
            vec![
                AttrSet::from_slice(&[order, product]),
                AttrSet::from_slice(&[order, city]),
                AttrSet::from_slice(&[city, region]),
            ],
        ),
        (
            "aggressive: {order,product} + {product,city} + {city,region}",
            vec![
                AttrSet::from_slice(&[order, product]),
                AttrSet::from_slice(&[product, city]),
                AttrSet::from_slice(&[city, region]),
            ],
        ),
    ];

    // One analyzer for the whole comparison: the candidate schemas share
    // most of their bags, so the groupings are computed once.
    let analyzer = Analyzer::new(&sales);
    println!(
        "\n{:<55} {:>10} {:>10} {:>12} {:>12}",
        "schema", "J (nats)", "rho", "rho>= (L4.1)", "spurious"
    );
    for (name, bags) in candidates {
        let tree = JoinTree::from_acyclic_schema(&bags).expect("candidate schemas are acyclic");
        let report = analyzer
            .analyze(&tree)
            .expect("schema covers the sales attributes");
        println!(
            "{:<55} {:>10.4} {:>10.4} {:>12.4} {:>12}",
            name, report.j_measure, report.rho, report.rho_lower_bound, report.spurious
        );
    }

    // The dirty rows are why the snowflake schema is not perfectly lossless:
    // city almost determines region, but not quite.  Quantify that single
    // dependency with the best-MVD search restricted to the dimension table.
    let dims_only = sales
        .project(&AttrSet::from_slice(&[product, city, region]))
        .expect("dimension attributes are in the sales schema");
    let miner = SchemaMiner::new(DiscoveryConfig::default());
    if let Some((mvd, cmi)) = miner.best_mvd(&dims_only).expect("small arity") {
        println!(
            "\nbest MVD on the (product, city, region) projection: {mvd}  with I = {cmi:.5} nats"
        );
    }

    // Finally, let the miner propose a schema for the full relation under a
    // J budget, and show the loss it actually incurs.
    let mined = analyzer
        .mine(DiscoveryConfig::default())
        .expect("mining succeeds");
    let realised = analyzer.loss(&mined.tree).unwrap();
    println!(
        "\nmined schema ({} bags): J = {:.4} nats, certified rho >= {:.4}, realised rho = {:.4}",
        mined.bags().len(),
        mined.j_measure,
        mined.rho_lower_bound,
        realised
    );
    for bag in mined.bags() {
        let names: Vec<&str> = bag.iter().map(|a| catalog.name(a).unwrap()).collect();
        println!("  bag: {names:?}");
    }
}
