//! Natural joins, semijoins and join cardinality.
//!
//! The paper's central combinatorial quantity is the size of the acyclic
//! join `|⋈ᵢ R[Ωᵢ]|`, from which the relative number of spurious tuples
//! `ρ(R,S) = (|⋈ᵢ R[Ωᵢ]| − |R|)/|R|` (eq. 1) is computed.  This module
//! provides the generic relational operators:
//!
//! * [`natural_join`] — classic build/probe hash join of two relations on
//!   their shared attributes.
//! * [`natural_join_all`] — left-to-right multiway join (used as the
//!   *materialising baseline* in benchmarks and tests).
//! * [`semijoin`] — `R ⋉ S`, used by Yannakakis-style processing.
//! * [`count_natural_join`] — cardinality of a two-way join without
//!   materialising the output.
//!
//! The asymptotically better way to compute the size of an *acyclic* join is
//! message passing over the join tree; that lives in `ajd-jointree`
//! (`count_acyclic_join`) because it needs the join-tree type, and is
//! validated against [`natural_join_all`] in tests.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap};
use crate::relation::{GroupCounts, Relation, Value};

/// Computes the natural join `left ⋈ right` on their shared attributes.
///
/// If the relations share no attribute the result is the Cartesian product.
/// The output schema is `left`'s columns followed by `right`'s non-shared
/// columns.  Output rows are **not** deduplicated (joining two sets always
/// yields a set, so no deduplication is needed in that case).
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_key_pos = left.attr_positions(&shared)?;
    let right_key_pos = right.attr_positions(&shared)?;

    // Probe the smaller side? We always build on `right` for output-order
    // stability; the paper's workloads have similarly-sized projections.
    let right_extra: Vec<AttrId> = right
        .schema()
        .iter()
        .copied()
        .filter(|a| !shared.contains(*a))
        .collect();
    let right_extra_pos: Vec<usize> = right_extra
        .iter()
        .map(|&a| right.attr_pos(a).expect("attribute from own schema"))
        .collect();

    let mut out_schema: Vec<AttrId> = left.schema().to_vec();
    out_schema.extend_from_slice(&right_extra);
    let mut out = Relation::new(out_schema)?;

    // Build: shared-key → indices of matching right rows.
    let mut build: FxHashMap<Box<[Value]>, Vec<u32>> = map_with_capacity(right.len());
    let mut key = vec![0u32; shared.len()];
    for (i, row) in right.iter_rows().enumerate() {
        for (k, &p) in right_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        build
            .entry(key.clone().into_boxed_slice())
            .or_default()
            .push(i as u32);
    }

    // Probe.
    let mut out_row = vec![0u32; left.arity() + right_extra.len()];
    for lrow in left.iter_rows() {
        for (k, &p) in left_key_pos.iter().enumerate() {
            key[k] = lrow[p];
        }
        if let Some(matches) = build.get(key.as_slice()) {
            out_row[..left.arity()].copy_from_slice(lrow);
            for &ri in matches {
                let rrow = right.row(ri as usize);
                for (k, &p) in right_extra_pos.iter().enumerate() {
                    out_row[left.arity() + k] = rrow[p];
                }
                out.push_row(&out_row)?;
            }
        }
    }
    Ok(out)
}

/// Counts `|left ⋈ right|` without materialising the join output.
///
/// The count is `Σ_k c_left(k) · c_right(k)` over the shared-attribute
/// groups of the two sides, accumulated in `u128` with checked arithmetic
/// (two-way joins reach `N²`, which exceeds `u64` at production scale);
/// a result beyond `u128` yields [`RelationError::CountOverflow`].
pub fn count_natural_join(left: &Relation, right: &Relation) -> Result<u128> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_counts = left.group_counts(&shared)?;
    let right_counts = right.group_counts(&shared)?;
    count_join_of_group_counts(&left_counts, &right_counts)
}

/// Counts the join size `Σ_k c_left(k) · c_right(k)` from pre-grouped
/// counts of the two sides on their shared attributes.
///
/// This is the arithmetic core of [`count_natural_join`], exposed so cached
/// group counts (see [`crate::AnalysisContext`]) can be combined without
/// re-grouping, and so the overflow behaviour is testable with synthetic
/// counts.  Both inputs must be grouped by the same attribute set.
pub fn count_join_of_group_counts(left: &GroupCounts, right: &GroupCounts) -> Result<u128> {
    if left.attrs != right.attrs {
        return Err(RelationError::SchemaMismatch {
            detail: format!(
                "join counting needs both sides grouped by the same attributes, got {} and {}",
                left.attrs, right.attrs
            ),
        });
    }
    // Probe the smaller side against the larger one.
    let (probe, build) = if left.num_groups() <= right.num_groups() {
        (left, right)
    } else {
        (right, left)
    };
    let mut total: u128 = 0;
    for (key, count) in probe.iter() {
        let other = build.count_of(key);
        if other > 0 {
            // A product of two u64 counts always fits in u128; only the
            // accumulated sum can overflow.
            let pairs = (count as u128) * (other as u128);
            total = total
                .checked_add(pairs)
                .ok_or(RelationError::CountOverflow(
                    "two-way join size exceeds u128",
                ))?;
        }
    }
    Ok(total)
}

/// Joins a sequence of relations left to right: `r₁ ⋈ r₂ ⋈ … ⋈ r_k`.
///
/// This is the *materialising baseline* used to validate the join-tree based
/// counting; for cyclic join orders intermediate results can explode, which
/// is exactly the behaviour the ablation benchmark demonstrates.
pub fn natural_join_all(relations: &[Relation]) -> Result<Relation> {
    let mut iter = relations.iter();
    let first = iter.next().ok_or(RelationError::EmptyInput(
        "natural_join_all of zero relations",
    ))?;
    let mut acc = first.clone();
    for r in iter {
        acc = natural_join(&acc, r)?;
    }
    Ok(acc)
}

/// Computes the semijoin `left ⋉ right`: the tuples of `left` that agree
/// with at least one tuple of `right` on their shared attributes.
pub fn semijoin(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_key_pos = left.attr_positions(&shared)?;
    let right_key_pos = right.attr_positions(&shared)?;

    let mut keys = set_with_capacity(right.len());
    let mut key = vec![0u32; shared.len()];
    for row in right.iter_rows() {
        for (k, &p) in right_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        keys.insert(key.clone().into_boxed_slice());
    }

    let mut out = Relation::new(left.schema().to_vec())?;
    for row in left.iter_rows() {
        for (k, &p) in left_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        if keys.contains(key.as_slice()) {
            out.push_row(row)?;
        }
    }
    Ok(out)
}

/// Decomposes `r` onto a database schema: returns `[Π_{Ω₁}(R), …, Π_{Ω_m}(R)]`.
pub fn decompose(r: &Relation, schema: &[AttrSet]) -> Result<Vec<Relation>> {
    schema.iter().map(|bag| r.try_project(bag)).collect()
}

/// Computes the *loss* of a database schema with respect to `r`:
/// `(|⋈ᵢ Π_{Ωᵢ}(R)| − |R|) / |R|` — eq. (1) of the paper — by fully
/// materialising the join.  Prefer the join-tree counting in `ajd-jointree`
/// for acyclic schemas; this function is the reference implementation.
///
/// `|R|` is the number of distinct tuples of `R` projected onto the
/// schema's attributes (equal to `r.len()` in the paper's setting of a set
/// relation fully covered by the schema), so the loss is never negative.
pub fn loss_materialized(r: &Relation, schema: &[AttrSet]) -> Result<f64> {
    if r.is_empty() {
        return Err(RelationError::EmptyInput("relation for loss computation"));
    }
    let projections = decompose(r, schema)?;
    let joined = natural_join_all(&projections)?;
    let covered = schema.iter().fold(AttrSet::empty(), |acc, b| acc.union(b));
    let base = r.group_counts(&covered)?.num_groups() as f64;
    Ok((joined.len() as f64 - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[Value]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    #[test]
    fn join_on_shared_attribute() {
        // R(A,B) ⋈ S(B,C)
        let r = rel(&[0, 1], &[&[1, 10], &[2, 10], &[3, 20]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 200], &[30, 300]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.attrs(), AttrSet::from_ids([0, 1, 2]));
        assert_eq!(j.len(), 4); // (1,10)x2 + (2,10)x2
        assert!(j.contains_row(&[1, 10, 100]));
        assert!(j.contains_row(&[2, 10, 200]));
        assert!(!j.contains_row(&[3, 20, 300]));
        assert_eq!(count_natural_join(&r, &s).unwrap(), 4);
    }

    #[test]
    fn join_without_shared_attributes_is_cartesian_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8], &[9]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(count_natural_join(&r, &s).unwrap(), 6);
    }

    #[test]
    fn join_with_identical_schemas_is_intersection() {
        let r = rel(&[0, 1], &[&[1, 1], &[2, 2]]);
        let s = rel(&[0, 1], &[&[2, 2], &[3, 3]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[2, 2]));
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[2, 30]]);
        let s = rel(&[1, 2], &[&[10, 5], &[20, 6], &[20, 7]]);
        let a = natural_join(&r, &s).unwrap();
        let b = natural_join(&s, &r).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn multiway_join_reconstructs_lossless_decomposition() {
        // R(A,B,C) that satisfies the MVD A ->> B | C  (so lossless).
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([0, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(joined.set_eq(&r));
        assert_eq!(loss_materialized(&r, &schema).unwrap(), 0.0);
    }

    #[test]
    fn lossy_decomposition_produces_spurious_tuples() {
        // Example 4.1: a bijection between A and B; schema {{A},{B}}.
        let n = 5u32;
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        let rho = loss_materialized(&r, &schema).unwrap();
        assert!((rho - (n as f64 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn join_always_contains_original_relation() {
        let r = rel(&[0, 1, 2], &[&[0, 1, 2], &[0, 2, 1], &[1, 1, 1]]);
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(r.is_subset_of(&joined));
        assert!(joined.len() >= r.len());
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&[1], &[&[10], &[30]]);
        let sj = semijoin(&r, &s).unwrap();
        assert_eq!(sj.len(), 2);
        assert!(sj.contains_row(&[1, 10]));
        assert!(sj.contains_row(&[3, 30]));
        assert_eq!(sj.schema(), r.schema());
    }

    #[test]
    fn join_all_of_nothing_is_an_error() {
        assert!(natural_join_all(&[]).is_err());
    }

    #[test]
    fn loss_of_empty_relation_is_an_error() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        assert!(loss_materialized(&r, &schema).is_err());
    }

    #[test]
    fn count_matches_materialised_join_size() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]);
        let s = rel(&[1, 2], &[&[1, 9], &[1, 8], &[2, 7], &[4, 6]]);
        assert_eq!(
            count_natural_join(&r, &s).unwrap(),
            natural_join(&r, &s).unwrap().len() as u128
        );
    }

    fn synthetic_counts(attr: u32, counts: &[(Value, u64)]) -> GroupCounts {
        let mut g = GroupCounts {
            attrs: AttrSet::singleton(AttrId(attr)),
            ..GroupCounts::default()
        };
        for &(v, c) in counts {
            g.counts.insert(vec![v].into_boxed_slice(), c);
            // `total` is metadata here; saturate so the synthetic overflow
            // scenarios below stay representable.
            g.total = g.total.saturating_add(c);
        }
        g
    }

    /// Regression: the count used to accumulate in `u64`, silently wrapping
    /// for joins beyond `2^64` pairs; it now widens to `u128` with checked
    /// arithmetic.
    #[test]
    fn count_from_group_counts_handles_beyond_u64() {
        // A single shared key with 2^40 matches on each side: the join has
        // 2^80 tuples, far beyond u64, and must be reported exactly.
        let big = 1u64 << 40;
        let left = synthetic_counts(0, &[(7, big)]);
        let right = synthetic_counts(0, &[(7, big)]);
        assert_eq!(
            count_join_of_group_counts(&left, &right).unwrap(),
            1u128 << 80
        );
    }

    /// Regression: counts whose sum exceeds `u128` must error out instead of
    /// wrapping or saturating (a clamped join size yields a wrong loss).
    #[test]
    fn count_from_group_counts_overflow_is_an_error() {
        let huge = u64::MAX;
        let left = synthetic_counts(0, &[(0, huge), (1, huge), (2, huge)]);
        let right = synthetic_counts(0, &[(0, huge), (1, huge), (2, huge)]);
        let err = count_join_of_group_counts(&left, &right).unwrap_err();
        assert!(matches!(err, RelationError::CountOverflow(_)));
    }

    #[test]
    fn count_from_group_counts_rejects_mismatched_groupings() {
        let left = synthetic_counts(0, &[(0, 1)]);
        let right = synthetic_counts(1, &[(0, 1)]);
        assert!(count_join_of_group_counts(&left, &right).is_err());
    }
}
