//! K-minimum-values (KMV) distinct-count sketches.
//!
//! The estimation tier sometimes needs *how many distinct groups* an
//! attribute set has — the active-domain sizes that instantiate the paper's
//! Theorem 5.1, the support sizes behind plug-in bias terms — without ever
//! building the full group table.  A KMV sketch answers that in `O(k)`
//! memory: hash every row's projection to a 64-bit value with a seeded,
//! deterministic mixer and keep only the `k` smallest hashes.  If fewer
//! than `k` distinct hashes were ever seen the count is exact; otherwise
//! the `k`-th smallest hash `v₍k₎` estimates the distinct count as
//! `(k − 1) / U₍k₎` where `U₍k₎ = (v₍k₎ + 1) / 2⁶⁴` (Bar-Yossef et al.,
//! "Counting distinct elements in a data stream").
//!
//! Two properties make the sketch safe inside this workspace's
//! determinism contract:
//!
//! * **Seeded hashing** — the mixer is a SplitMix64 chain over the row's
//!   *decoded* values, keyed by an explicit caller-provided seed.  No
//!   ambient entropy, so the same `(rows, attrs, k, seed)` always produces
//!   the same sketch (the `nondeterminism-source` lint enforces the
//!   no-ambient-entropy half of this).
//! * **Order-independent merge** — "keep the k smallest of a set" does not
//!   depend on insertion order, and [`KmvSketch::merge`] unions two
//!   sketches' hash sets.  A sharded relation can therefore sketch each
//!   shard independently and merge in any order, and the result is
//!   **identical** to sketching the flat relation row by row.  (Hashing
//!   decoded values — not per-shard dictionary codes — is what makes the
//!   shard layout invisible.)
//!
//! The estimator's guarantee is distributional, not worst-case: its
//! relative standard error is `≈ 1/√(k − 2)`, and
//! [`KmvSketch::relative_epsilon`] converts a confidence `δ` into a
//! Chebyshev-style relative error bound `1/√(δ·(k − 2))`.

use crate::relation::Value;
use std::collections::BTreeSet;

/// SplitMix64 finalising step: a well-mixed 64-bit permutation.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    // ajd: allow(silent-arithmetic, "hash mixing is arithmetic mod 2^64 by design; wrapping here is the algorithm, not a lost count")
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    // ajd: allow(silent-arithmetic, "hash mixing is arithmetic mod 2^64 by design")
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    // ajd: allow(silent-arithmetic, "hash mixing is arithmetic mod 2^64 by design")
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded, deterministic 64-bit hash of a sequence of decoded values.
///
/// The chain mixes each value (and finally the length) through
/// [`splitmix64`], so permutations and prefixes do not collide trivially.
#[inline]
pub fn seeded_row_hash(seed: u64, values: &[Value]) -> u64 {
    let mut h = splitmix64(seed ^ 0x5851_f42d_4c95_7f2d);
    for &v in values {
        h = splitmix64(h ^ v as u64);
    }
    splitmix64(h ^ values.len() as u64)
}

/// A k-minimum-values distinct-count sketch over seeded row hashes.
///
/// ```
/// use ajd_relation::sketch::KmvSketch;
///
/// let mut sk = KmvSketch::new(64, 7);
/// for v in 0u32..1000 {
///     sk.observe(&[v]);
/// }
/// let est = sk.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.5, "estimate {est} far from 1000");
///
/// // Merging shard-local sketches equals sketching the concatenation.
/// let (mut a, mut b) = (KmvSketch::new(64, 7), KmvSketch::new(64, 7));
/// for v in 0u32..500 { a.observe(&[v]); }
/// for v in 500u32..1000 { b.observe(&[v]); }
/// a.merge(&b);
/// assert_eq!(a.estimate().to_bits(), sk.estimate().to_bits());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    /// Number of minimum hash values retained.
    k: usize,
    /// Seed of the row hasher (two sketches must share it to be mergeable).
    seed: u64,
    /// The at-most-`k` smallest distinct hashes seen (sorted set, so the
    /// maximum — the eviction candidate — is `last()`).
    mins: BTreeSet<u64>,
    /// `true` once more than `k` distinct hashes have been seen (the
    /// estimate is then probabilistic rather than an exact count).
    saturated: bool,
}

impl KmvSketch {
    /// An empty sketch retaining the `k` smallest hashes (`k ≥ 2`) under
    /// the given hash seed.
    pub fn new(k: usize, seed: u64) -> Self {
        KmvSketch {
            k: k.max(2),
            seed,
            mins: BTreeSet::new(),
            saturated: false,
        }
    }

    /// The sketch's `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sketch's hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of hashes currently retained (`min(k, distinct seen)`).
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// `true` once the distinct count can only be estimated, not counted.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Observes one row projection (decoded values).
    pub fn observe(&mut self, values: &[Value]) {
        self.insert_hash(seeded_row_hash(self.seed, values));
    }

    /// Inserts a pre-computed hash (the merge path).
    fn insert_hash(&mut self, h: u64) {
        if self.mins.len() < self.k {
            self.mins.insert(h);
            return;
        }
        let max = *self.mins.last().expect("k >= 2 entries present");
        if h < max && self.mins.insert(h) {
            self.mins.pop_last();
            self.saturated = true;
        } else if h >= max {
            // Beyond (or equal to) the current k-th minimum: evidence that
            // more than k distinct hashes exist, even though nothing is
            // retained for it.
            self.saturated = self.saturated || !self.mins.contains(&h);
        }
    }

    /// Unions another sketch into this one.  Both must share `k` and the
    /// seed; the merge is order-independent, so shard-local sketches merged
    /// in any order equal the flat-relation sketch.
    ///
    /// # Panics
    ///
    /// Panics if `k` or the seed differ — merging incompatible sketches is
    /// a programming error, not a data condition.
    pub fn merge(&mut self, other: &KmvSketch) {
        assert_eq!(self.k, other.k, "KMV merge requires equal k");
        assert_eq!(self.seed, other.seed, "KMV merge requires equal seeds");
        self.saturated = self.saturated || other.saturated;
        for &h in &other.mins {
            self.insert_hash(h);
        }
    }

    /// The distinct-count estimate.
    ///
    /// Exact (the retained count) while fewer than `k` distinct hashes have
    /// been seen; otherwise the KMV estimator `(k − 1) / U₍k₎` with
    /// `U₍k₎ = (v₍k₎ + 1) / 2⁶⁴`.
    pub fn estimate(&self) -> f64 {
        if !self.saturated || self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        let kth = *self.mins.last().expect("saturated sketch holds k hashes");
        let u_k = (kth as f64 + 1.0) / 2.0f64.powi(64);
        (self.k as f64 - 1.0) / u_k
    }

    /// `true` if [`KmvSketch::estimate`] is an exact distinct count rather
    /// than a probabilistic estimate.
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    /// Chebyshev-style relative error bound at confidence `1 − δ`:
    /// `Var[D̂] ≤ D²/(k−2)`, so `P(|D̂ − D| ≥ εD) ≤ 1/(ε²(k−2))`, giving
    /// `ε = 1/√(δ·(k−2))`.  Returns `0` while the sketch is still exact.
    pub fn relative_epsilon(&self, delta: f64) -> f64 {
        if self.is_exact() {
            return 0.0;
        }
        let k = (self.k as f64 - 2.0).max(1.0);
        1.0 / (delta.clamp(f64::MIN_POSITIVE, 1.0) * k).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut sk = KmvSketch::new(16, 0);
        for v in 0u32..10 {
            sk.observe(&[v, v + 1]);
        }
        assert!(sk.is_exact());
        assert_eq!(sk.estimate(), 10.0);
        // Duplicates do not inflate the count.
        for v in 0u32..10 {
            sk.observe(&[v, v + 1]);
        }
        assert_eq!(sk.estimate(), 10.0);
        assert_eq!(sk.relative_epsilon(0.05), 0.0);
    }

    #[test]
    fn estimates_within_chebyshev_bound() {
        for (n, k) in [(1_000u32, 256usize), (20_000, 512)] {
            let mut sk = KmvSketch::new(k, 42);
            for v in 0..n {
                sk.observe(&[v]);
            }
            assert!(sk.is_saturated());
            let est = sk.estimate();
            let eps = sk.relative_epsilon(0.05);
            let rel = (est - n as f64).abs() / n as f64;
            assert!(
                rel <= eps,
                "n={n} k={k}: relative error {rel:.4} exceeds bound {eps:.4}"
            );
        }
    }

    #[test]
    fn merge_is_order_independent_and_equals_flat() {
        let seed = 9;
        let k = 64;
        let mut flat = KmvSketch::new(k, seed);
        for v in 0u32..3000 {
            flat.observe(&[v % 700, v % 11]);
        }
        // Shard the same stream three ways, merge in two different orders.
        let mut parts: Vec<KmvSketch> = (0..3).map(|_| KmvSketch::new(k, seed)).collect();
        for v in 0u32..3000 {
            parts[(v % 3) as usize].observe(&[v % 700, v % 11]);
        }
        let mut fwd = parts[0].clone();
        fwd.merge(&parts[1]);
        fwd.merge(&parts[2]);
        let mut rev = parts[2].clone();
        rev.merge(&parts[1]);
        rev.merge(&parts[0]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, flat);
        assert_eq!(fwd.estimate().to_bits(), flat.estimate().to_bits());
    }

    #[test]
    fn different_seeds_produce_different_but_deterministic_sketches() {
        let build = |seed: u64| {
            let mut sk = KmvSketch::new(32, seed);
            for v in 0u32..500 {
                sk.observe(&[v]);
            }
            sk
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }

    #[test]
    #[should_panic(expected = "equal seeds")]
    fn merging_mismatched_seeds_panics() {
        let mut a = KmvSketch::new(8, 1);
        let b = KmvSketch::new(8, 2);
        a.merge(&b);
    }
}
