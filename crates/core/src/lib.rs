//! # ajd-core
//!
//! The user-facing API of the reproduction of *"Quantifying the Loss of
//! Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! The crate is built around one idea: **every quantity the paper defines
//! reduces to group counts over projections of one relation**, so there is
//! one owner for that cached state and one API to route through —
//! [`Analyzer`]:
//!
//! * [`Analyzer::new`] binds a relation and owns the shared
//!   [`ajd_relation::AnalysisContext`];
//! * scalar measures ([`Analyzer::entropy`], [`Analyzer::cmi`],
//!   [`Analyzer::mvd_cmi`], …), tree measures ([`Analyzer::loss`],
//!   [`Analyzer::j_measure`], [`Analyzer::kl`], [`Analyzer::join_size`]),
//!   MVD measures ([`Analyzer::mvd_loss`], [`Analyzer::mvd_holds`]) and the
//!   full [`Analyzer::analyze`] report all answer from the same memoized
//!   groupings;
//! * [`Analyzer::batch`] returns a [`BatchAnalyzer`] that fans many trees
//!   out over `std::thread::scope` workers sharing the same cache;
//! * [`Analyzer::mine`] runs *approximate acyclic schema discovery* — the
//!   motivating application (Kenig et al., SIGMOD 2020): a Chow–Liu style
//!   spanning-tree miner over pairwise mutual information, followed by
//!   greedy bag merging to drive the J-measure below a target
//!   ([`SchemaMiner`] exposes the pieces individually);
//! * [`LiveAnalyzer`] serves the same measures over a **live, append-only**
//!   sharded relation: readers pin epoch-consistent snapshots while appends
//!   install the next epoch, and the two-tier cache (per-shard group
//!   tables plus per-epoch merged results) makes each append cost one
//!   shard's grouping, not the world's.
//!
//! The free functions in `ajd-info` / `ajd-jointree` remain available for
//! one-shot use (`j_measure(&r, &tree)`); they are the same generic code
//! path the analyzer calls, so results are bit-identical either way.
//!
//! ## The estimation tier
//!
//! [`EstimatedAnalyzer`] answers the same measures from a seeded,
//! planned-size row sample in sublinear time, returning every answer as an
//! [`Estimate`] carrying its (ε, δ, seed, sample size) and concentration
//! bound; it falls back to the exact kernel (bit-identically) when the
//! planned sample would cover the relation.  The [`LossEngine`] trait is
//! the one API over both tiers — [`Analyzer`], [`BatchAnalyzer`] and
//! [`EstimatedAnalyzer`] all implement it, with the exact paths reporting
//! `ε = 0` — so consumers like [`SchemaMiner::mine_engine`] never fork on
//! exact-vs-estimated.
//!
//! ```
//! use ajd_core::Analyzer;
//! use ajd_jointree::JoinTree;
//! use ajd_random::generators::bijection_relation;
//! use ajd_relation::{AttrId, AttrSet};
//!
//! // Example 4.1 of the paper.
//! let r = bijection_relation(32);
//! let tree = JoinTree::from_acyclic_schema(&[
//!     AttrSet::singleton(AttrId(0)),
//!     AttrSet::singleton(AttrId(1)),
//! ]).unwrap();
//! let analyzer = Analyzer::new(&r);
//! let report = analyzer.analyze(&tree).unwrap();
//! assert_eq!(report.spurious, 32 * 32 - 32);
//! // Lemma 4.1 is tight on this family: J = log(1 + rho).
//! assert!((report.j_measure - report.log1p_rho).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod discovery;
pub mod engine;
pub mod estimate;
pub mod live;

pub use analysis::{Analyzer, ConfidenceBounds, LossReport, MvdLoss, ProbabilisticBounds};
pub use batch::BatchAnalyzer;
pub use discovery::{DiscoveryConfig, MinedSchema, SchemaMiner};
pub use engine::LossEngine;
pub use estimate::{BoundKind, Estimate, EstimateConfig, EstimatedAnalyzer, SamplePlanner};
pub use live::{LiveAnalyzer, LiveStats};
