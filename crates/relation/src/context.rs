//! Shared-computation analysis context and the [`GroupSource`] abstraction.
//!
//! Every information measure in the paper (the entropies of eq. 4, the
//! J-measure of eq. 7, the KL-divergence of Theorem 3.2, the per-MVD
//! conditional mutual informations and losses of eq. 28) reduces to *group
//! counts* of the same relation `R` on various attribute subsets `Y ⊆ Ω`,
//! and every loss computation reduces to *projections* of `R` onto bags.
//! Evaluating many measures — or many candidate join trees, as schema
//! discovery does — therefore recomputes the same groupings over and over.
//!
//! Two pieces live here:
//!
//! * [`GroupSource`] — the capability every measure in the workspace is
//!   written against: "give me group counts / interned group ids / a
//!   projection for this attribute set".  A plain [`Relation`] implements it
//!   by computing fresh (the one-shot path); an [`AnalysisContext`]
//!   implements it by memoizing (the shared path).  Because both
//!   implementations call the *same* columnar kernel, a measure computed
//!   through a context is **bit-identical** to its uncached counterpart — a
//!   property the workspace's tests assert.
//! * [`AnalysisContext`] — the memoization layer, in the spirit of the
//!   lattice-level entropy caching of Kenig et al. (*Mining Approximate
//!   Acyclic Schemes from Relations*, 2019): caches of [`GroupCounts`],
//!   interned [`GroupIds`] and set-semantic projections keyed by
//!   [`AttrSet`], guarded by [`parking_lot::RwLock`] so concurrent analysis
//!   threads (see `ajd-core`'s `BatchAnalyzer`) share one context.  Reads of
//!   already-memoized entries do not contend, and a raced miss at worst
//!   recomputes a deterministic value.

use crate::attr::AttrSet;
use crate::error::Result;
use crate::hash::FxHashMap;
use crate::relation::{GroupCounts, GroupIds, Relation};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The grouping capability every measure is written against.
///
/// Functions in `ajd-info`, `ajd-jointree` and `ajd-core` are generic over a
/// `GroupSource`, so one implementation serves both the convenience path
/// (`entropy(&r, …)` — compute from scratch) and the shared path
/// (`entropy(&ctx, …)` or `Analyzer` methods — answer from the cache).  This
/// replaces the former `foo` / `foo_ctx` function pairs.
pub trait GroupSource {
    /// The relation the groupings are taken over.
    fn relation(&self) -> &Relation;

    /// Multiplicities of the distinct `attrs`-projections of the relation's
    /// tuples (see [`Relation::group_counts`]).
    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>>;

    /// Interned group keys for `attrs` (see [`GroupIds`]).
    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>>;

    /// Set-semantic projection `Π_attrs(R)`.
    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>>;
}

impl GroupSource for Relation {
    fn relation(&self) -> &Relation {
        self
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        Relation::group_counts(self, attrs).map(Arc::new)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        Relation::group_ids(self, attrs).map(Arc::new)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        Relation::project(self, attrs).map(Arc::new)
    }
}

impl<S: GroupSource + ?Sized> GroupSource for &S {
    fn relation(&self) -> &Relation {
        (**self).relation()
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        (**self).group_counts(attrs)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        (**self).group_ids(attrs)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        (**self).projection(attrs)
    }
}

/// A point-in-time snapshot of a context's cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cache.
    pub hits: u64,
    /// Lookups that had to compute (and then memoize) their value.
    pub misses: u64,
    /// Number of memoized [`GroupCounts`] entries.
    pub group_count_entries: usize,
    /// Number of memoized [`GroupIds`] entries.
    pub group_id_entries: usize,
    /// Number of memoized projection entries.
    pub projection_entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized group counts, interned group ids and projections of one
/// relation — the shared-computation substrate of the measurement stack.
///
/// A context borrows its relation and is cheap to create (empty caches); it
/// pays for itself as soon as two measures — or two candidate join trees —
/// touch the same attribute subset.  It is `Sync`: `ajd-core`'s
/// `BatchAnalyzer` shares one context across `std::thread::scope` workers.
///
/// Most callers never construct one directly: `ajd_core::Analyzer` owns a
/// context and routes every measure through it.
///
/// ```
/// use ajd_relation::{AnalysisContext, AttrId, AttrSet, GroupSource, Relation};
///
/// let r = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[
///     &[0, 0][..], &[0, 1][..], &[1, 0][..],
/// ]).unwrap();
/// let ctx = AnalysisContext::new(&r);
/// let y = AttrSet::singleton(AttrId(0));
/// let first = ctx.group_counts(&y).unwrap();
/// let second = ctx.group_counts(&y).unwrap();      // served from cache
/// assert_eq!(first.num_groups(), second.num_groups());
/// assert_eq!(ctx.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    relation: &'a Relation,
    group_counts: RwLock<FxHashMap<AttrSet, Arc<GroupCounts>>>,
    group_ids: RwLock<FxHashMap<AttrSet, Arc<GroupIds>>>,
    projections: RwLock<FxHashMap<AttrSet, Arc<Relation>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> AnalysisContext<'a> {
    /// Creates an empty context over `r`.
    pub fn new(r: &'a Relation) -> Self {
        AnalysisContext {
            relation: r,
            group_counts: RwLock::new(FxHashMap::default()),
            group_ids: RwLock::new(FxHashMap::default()),
            projections: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The relation this context memoizes computations over.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Memoized [`Relation::group_counts`]: multiplicities of the distinct
    /// `attrs`-projections of the relation's tuples.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        self.memoized(&self.group_counts, attrs, |r, a| {
            r.group_counts(a).map(Arc::new)
        })
    }

    /// Memoized interned group keys (see [`GroupIds`]) for `attrs`.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        self.memoized(&self.group_ids, attrs, |r, a| r.group_ids(a).map(Arc::new))
    }

    /// Memoized set-semantic projection `Π_attrs(R)`.
    pub fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        self.memoized(&self.projections, attrs, |r, a| r.project(a).map(Arc::new))
    }

    /// Snapshot of cache sizes and hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            group_count_entries: self.group_counts.read().len(),
            group_id_entries: self.group_ids.read().len(),
            projection_entries: self.projections.read().len(),
        }
    }

    /// Generic read-mostly memoization: serve from the cache under a read
    /// lock; on a miss, compute outside any lock and insert under a write
    /// lock.  A raced miss recomputes a deterministic value and keeps the
    /// first insertion, so all callers observe the same `Arc`.
    fn memoized<T>(
        &self,
        cache: &RwLock<FxHashMap<AttrSet, Arc<T>>>,
        attrs: &AttrSet,
        compute: impl FnOnce(&Relation, &AttrSet) -> Result<Arc<T>>,
    ) -> Result<Arc<T>> {
        if let Some(hit) = cache.read().get(attrs) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let value = compute(self.relation, attrs)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = cache.write();
        let entry = guard.entry(attrs.clone()).or_insert(value);
        Ok(Arc::clone(entry))
    }
}

impl GroupSource for AnalysisContext<'_> {
    fn relation(&self) -> &Relation {
        self.relation
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        AnalysisContext::group_counts(self, attrs)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        AnalysisContext::group_ids(self, attrs)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        AnalysisContext::projection(self, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::relation::Value;

    fn sample() -> Relation {
        Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[
                &[0, 0, 0][..],
                &[0, 1, 0][..],
                &[1, 0, 1][..],
                &[1, 1, 1][..],
                &[0, 0, 0][..], // duplicate row: multiset
            ],
        )
        .unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn group_counts_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[0, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let cached = ctx.group_counts(&attrs).unwrap();
            let direct = r.group_counts(&attrs).unwrap();
            assert_eq!(cached.total, direct.total);
            assert_eq!(cached.num_groups(), direct.num_groups());
            for (key, count) in direct.iter() {
                assert_eq!(cached.count_of(key), count);
            }
        }
    }

    #[test]
    fn group_ids_agree_with_group_counts() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[1, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let ids = ctx.group_ids(&attrs).unwrap();
            let counts = ctx.group_counts(&attrs).unwrap();
            assert_eq!(ids.num_groups(), counts.num_groups());
            assert_eq!(ids.total(), counts.total);
            assert_eq!(ids.row_ids().len(), r.len());
            assert_eq!(ids.counts().iter().sum::<u64>(), r.len() as u64);
            // Rows with equal projections share an id; the id's count matches.
            for (row, &id) in r.iter_rows().zip(ids.row_ids()) {
                let positions = r.attr_positions(&attrs).unwrap();
                let key: Vec<Value> = positions.iter().map(|&p| row[p]).collect();
                assert_eq!(ids.counts()[id as usize], counts.count_of(&key));
            }
        }
    }

    #[test]
    fn map_to_recovers_coarser_groups() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let fine = ctx.group_ids(&bag(&[0, 1, 2])).unwrap();
        for coarse_attrs in [bag(&[0]), bag(&[1, 2]), AttrSet::empty()] {
            let coarse = ctx.group_ids(&coarse_attrs).unwrap();
            let map = fine.map_to(&coarse);
            assert_eq!(map.len(), fine.num_groups());
            // Per row: mapping the fine id must land on the row's coarse id.
            for (&f, &c) in fine.row_ids().iter().zip(coarse.row_ids()) {
                assert_eq!(map[f as usize], c);
            }
        }
    }

    #[test]
    fn projections_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1]);
        let cached = ctx.projection(&attrs).unwrap();
        let direct = r.project(&attrs).unwrap();
        assert!(cached.set_eq(&direct));
        assert_eq!(cached.len(), direct.len());
    }

    #[test]
    fn caches_are_shared_and_counted() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let a = ctx.group_counts(&bag(&[0])).unwrap();
        let b = ctx.group_counts(&bag(&[0])).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = ctx.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.group_count_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_is_not_cached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        assert!(ctx.group_counts(&bag(&[9])).is_err());
        assert!(ctx.group_ids(&bag(&[9])).is_err());
        assert!(ctx.projection(&bag(&[9])).is_err());
        assert_eq!(ctx.stats().group_count_entries, 0);
    }

    #[test]
    fn group_source_is_object_agnostic() {
        // The same generic function body works over a Relation (fresh
        // computation) and a context (memoized), with identical results.
        fn groups_via<S: GroupSource>(src: &S, attrs: &AttrSet) -> usize {
            src.group_counts(attrs).unwrap().num_groups()
        }
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1]);
        assert_eq!(groups_via(&r, &attrs), groups_via(&ctx, &attrs));
        // Blanket impl: references to sources are sources too.
        assert_eq!(groups_via(&&r, &attrs), groups_via(&&ctx, &attrs));
        assert_eq!(GroupSource::relation(&ctx).len(), r.len());
    }

    #[test]
    fn concurrent_readers_converge() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let sets: Vec<AttrSet> = vec![bag(&[0]), bag(&[1]), bag(&[0, 1]), bag(&[0, 1, 2])];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for attrs in &sets {
                        let c = ctx.group_counts(attrs).unwrap();
                        assert_eq!(c.total, r.len() as u64);
                        let ids = ctx.group_ids(attrs).unwrap();
                        assert_eq!(ids.num_groups(), c.num_groups());
                    }
                });
            }
        });
        assert_eq!(ctx.stats().group_count_entries, sets.len());
        assert_eq!(ctx.stats().group_id_entries, sets.len());
    }

    #[test]
    fn empty_relation_contexts_work() {
        let r = Relation::new(vec![AttrId(0)]).unwrap();
        let ctx = AnalysisContext::new(&r);
        let ids = ctx.group_ids(&bag(&[0])).unwrap();
        assert_eq!(ids.num_groups(), 0);
        assert_eq!(ids.total(), 0);
        assert_eq!(ctx.projection(&bag(&[0])).unwrap().len(), 0);
    }
}
