//! End-to-end tests over a real TCP socket on an ephemeral port:
//! single-flight deduplication observed through the wire, admission
//! behaviour under a mine burst, and the never-close-on-error guarantee.

use ajd_relation::ReadOptions;
use ajd_server::{Client, Json, RelationStore, Server, ServerConfig, ShutdownToken};
use std::net::{SocketAddr, TcpListener};
use std::sync::Barrier;

/// A relation with enough rows that a cold grouping is real work, and a
/// lossless 2-bag schema (`a` determines `b`) plus lossy alternatives.
fn demo_csv(rows: usize) -> String {
    let mut text = String::from("a,b,c\n");
    for i in 0..rows {
        text.push_str(&format!("{},{},{}\n", i % 7, (i % 7) * 2, i % 5));
    }
    text
}

fn demo_stores() -> Vec<RelationStore> {
    vec![RelationStore::from_delimited("demo", &demo_csv(500), ReadOptions::default()).unwrap()]
}

/// Runs `body` against a server listening on an ephemeral port; shuts the
/// server down cleanly afterwards.
fn with_server<F>(stores: &[RelationStore], config: ServerConfig, body: F)
where
    F: FnOnce(SocketAddr),
{
    let server = Server::new(stores, config).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = ShutdownToken::new();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve(listener, &shutdown));
        body(addr);
        shutdown.signal(addr);
        handle.join().unwrap();
    });
}

fn misses(client: &mut Client, relation: &str) -> u64 {
    let frame = client
        .request_line(&format!(r#"{{"op":"stats","relation":"{relation}"}}"#))
        .unwrap();
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
    frame.get("relations").and_then(Json::as_arr).unwrap()[0]
        .get("cache")
        .unwrap()
        .get("misses")
        .and_then(Json::as_u64)
        .unwrap()
}

const COLD_LOSS: &str = r#"{"op":"loss","relation":"demo","schema":[["a","b"],["a","c"]]}"#;

/// The single-flight cache over the wire: N concurrent clients issuing the
/// same cold query must produce exactly as many cache misses as ONE client
/// issuing it once — racing cold lookups coalesce into one computation.
#[test]
fn concurrent_cold_queries_dedup_to_one_computation() {
    // Baseline: one client, one cold query.
    let baseline_stores = demo_stores();
    let mut baseline = 0;
    with_server(&baseline_stores, ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        let frame = client.request_line(COLD_LOSS).unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(frame.get("rho").and_then(Json::as_f64), Some(0.0));
        baseline = misses(&mut client, "demo");
    });
    assert!(baseline > 0, "a cold loss query must miss at least once");

    // Burst: 8 concurrent clients, same cold query, fresh server.
    let burst_stores = demo_stores();
    with_server(&burst_stores, ServerConfig::default(), |addr| {
        const CLIENTS: usize = 8;
        let barrier = Barrier::new(CLIENTS);
        std::thread::scope(|scope| {
            let barrier = &barrier;
            for _ in 0..CLIENTS {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let frame = client.request_line(COLD_LOSS).unwrap();
                    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
                    assert_eq!(frame.get("rho").and_then(Json::as_f64), Some(0.0));
                });
            }
        });
        let mut client = Client::connect(addr).unwrap();
        let burst_misses = misses(&mut client, "demo");
        assert_eq!(
            burst_misses, baseline,
            "{CLIENTS} racing cold clients must coalesce to the 1-client miss count"
        );
    });
}

/// A mine burst saturating its own pool must neither overrun `mine_slots`
/// (peak_in_flight proves it) nor starve point queries (their pool rejects
/// nothing and every answer is ok).
#[test]
fn mine_burst_does_not_starve_point_queries() {
    let stores = demo_stores();
    let mut config = ServerConfig::default();
    config.admission.mine_slots = 1;
    config.admission.point_slots = 4;
    config.admission.queue_depth = 64;
    with_server(&stores, config, |addr| {
        const MINERS: usize = 4;
        const POINTS: usize = 4;
        let barrier = Barrier::new(MINERS + POINTS);
        std::thread::scope(|scope| {
            let barrier = &barrier;
            for _ in 0..MINERS {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let frame = client
                        .request_line(r#"{"op":"mine","relation":"demo","max_bag_size":2}"#)
                        .unwrap();
                    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
                });
            }
            for i in 0..POINTS {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    for _ in 0..3 {
                        let frame = client
                            .request_line(&format!(
                                r#"{{"id":{i},"op":"entropy","relation":"demo","attrs":["a"]}}"#
                            ))
                            .unwrap();
                        assert_eq!(
                            frame.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "point queries must keep working during a mine burst: {frame}"
                        );
                    }
                });
            }
        });
        let mut client = Client::connect(addr).unwrap();
        let frame = client.request_line(r#"{"op":"stats"}"#).unwrap();
        let admission = frame.get("admission").unwrap();
        let mine = admission.get("mine").unwrap();
        let point = admission.get("point").unwrap();
        assert_eq!(
            mine.get("peak_in_flight").and_then(Json::as_u64),
            Some(1),
            "mine burst overran mine_slots"
        );
        assert_eq!(
            mine.get("admitted").and_then(Json::as_u64),
            Some(MINERS as u64)
        );
        assert_eq!(point.get("rejected").and_then(Json::as_u64), Some(0));
        assert_eq!(
            point.get("admitted").and_then(Json::as_u64),
            Some((POINTS * 3) as u64)
        );
    });
}

/// An overloaded pool with no queue answers `busy` instead of hanging or
/// closing the connection.
#[test]
fn saturated_pool_answers_busy() {
    let stores = demo_stores();
    let mut config = ServerConfig::default();
    config.admission.mine_slots = 1;
    config.admission.queue_depth = 0;
    with_server(&stores, config, |addr| {
        // Hold the only mine slot by issuing a long mine from one client
        // while a second client races in. Deterministic alternative:
        // saturate via the admission API is unit-tested; over the wire we
        // only assert the busy frame shape using a queue_depth of 0 and a
        // slot held by a concurrent miner. To avoid timing flakiness, we
        // instead check that `busy` is a well-formed error by forcing
        // rejection through a zero-depth queue under contention.
        let barrier = Barrier::new(2);
        let mut saw_busy = false;
        std::thread::scope(|scope| {
            let barrier = &barrier;
            let fast = scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut frames = Vec::new();
                for _ in 0..10 {
                    frames.push(
                        client
                            .request_line(r#"{"op":"mine","relation":"demo"}"#)
                            .unwrap(),
                    );
                }
                frames
            });
            let slow = scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut frames = Vec::new();
                for _ in 0..10 {
                    frames.push(
                        client
                            .request_line(r#"{"op":"mine","relation":"demo"}"#)
                            .unwrap(),
                    );
                }
                frames
            });
            for frame in fast.join().unwrap().into_iter().chain(slow.join().unwrap()) {
                match frame.get("ok").and_then(Json::as_bool) {
                    Some(true) => {}
                    Some(false) => {
                        let error = frame.get("error").unwrap();
                        assert_eq!(error.get("code").and_then(Json::as_str), Some("busy"));
                        saw_busy = true;
                    }
                    None => panic!("frame without ok: {frame}"),
                }
            }
        });
        // Whether busy occurs depends on interleaving; the invariant under
        // either outcome: the connection survived all 20 requests and
        // every frame was well-formed. When contention did happen, the
        // error had the documented shape (asserted above).
        let _ = saw_busy;
        let mut client = Client::connect(addr).unwrap();
        let frame = client.request_line(r#"{"op":"catalog"}"#).unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
    });
}

/// Protocol errors — including lines that are not JSON at all — are
/// answered with error frames on the same connection, which stays usable.
#[test]
fn errors_never_close_the_connection() {
    let stores = demo_stores();
    with_server(&stores, ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        let bad_lines = [
            "this is not json",
            "{\"op\":",
            r#"{"op":"teleport"}"#,
            r#"{"v":3,"op":"catalog"}"#,
            r#"{"op":"loss","relation":"demo"}"#,
            r#"{"op":"loss","relation":"ghost","schema":[["a"]]}"#,
            r#"{"op":"entropy","relation":"demo","attrs":["zzz"]}"#,
            r#"{"op":"loss","relation":"demo","schema":[["a","b"]]}"#,
            "[1,2,3]",
            // Parser edge cases: the truncated-literal, leading-zero and
            // unterminated-string paths must answer a parse-error frame,
            // never panic the connection thread.
            "tru",
            "nul",
            r#"{"op":007}"#,
            r#"{"op":"catalog""#,
            "\"unterminated",
            "-",
        ];
        for line in bad_lines {
            let frame = client.request_line(line).unwrap();
            assert_eq!(
                frame.get("ok").and_then(Json::as_bool),
                Some(false),
                "line {line:?} must produce an error frame"
            );
            assert!(
                frame.get("error").is_some(),
                "error envelope missing for {line:?}"
            );
        }
        // The same connection still answers real queries.
        let frame = client.request_line(COLD_LOSS).unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(frame.get("rho").and_then(Json::as_f64), Some(0.0));
    });
}

/// Request ids of any JSON type are echoed verbatim, and pipelined
/// requests are answered in order.
#[test]
fn ids_echo_and_pipelining_preserves_order() {
    let stores = demo_stores();
    with_server(&stores, ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        for (id_json, line) in [
            ("7", r#"{"id":7,"op":"catalog"}"#),
            (r#""q-42""#, r#"{"id":"q-42","op":"stats"}"#),
            (r#"{"tag":[1,2]}"#, r#"{"id":{"tag":[1,2]},"op":"catalog"}"#),
        ] {
            let frame = client.request_line(line).unwrap();
            assert_eq!(frame.get("id").unwrap().to_string(), id_json);
        }
        // Sequential requests on one connection come back in issue order
        // (checked via distinct ids).
        for i in 0..20 {
            let frame = client
                .request_line(&format!(
                    r#"{{"id":{i},"op":"entropy","relation":"demo","attrs":["b"]}}"#
                ))
                .unwrap();
            assert_eq!(frame.get("id").and_then(Json::as_u64), Some(i));
        }
    });
}

/// A sharded store answers bit-identically to a flat one over the wire.
#[test]
fn sharded_entry_matches_flat_over_the_wire() {
    let text = demo_csv(200);
    let flat = RelationStore::from_delimited("flat", &text, ReadOptions::default()).unwrap();
    let (catalog, relation) =
        ajd_relation::io::read_delimited(&text, ReadOptions::default()).unwrap();
    let sharded =
        RelationStore::sharded("sharded", catalog, relation.into_shards(4).unwrap()).unwrap();
    let stores = vec![flat, sharded];
    with_server(&stores, ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr).unwrap();
        let ask = |client: &mut Client, name: &str| {
            let frame = client
                .request_line(&format!(
                    r#"{{"op":"analyze","relation":"{name}","schema":[["a","b"],["b","c"]]}}"#
                ))
                .unwrap();
            assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
            frame.get("report").unwrap().to_string()
        };
        let flat_report = ask(&mut client, "flat");
        let sharded_report = ask(&mut client, "sharded");
        assert_eq!(flat_report, sharded_report);
    });
}
