//! # ajd-random
//!
//! The **random relation model** of *"Quantifying the Loss of Acyclic Join
//! Dependencies"* (Kenig & Weinberger, PODS 2023), Definition 5.2, plus the
//! structured relation generators used by the paper's examples and by our
//! experiments.
//!
//! In the random relation model a relation of size `N` over attributes with
//! domains `[d₁],…,[d_n]` is drawn **uniformly at random, without
//! replacement**, from the product domain `[d₁]×⋯×[d_n]`.  The empirical
//! distribution of such a relation is uniform over its `N` tuples; the
//! paper's Theorem 5.1 and 5.2 describe the concentration of its entropies
//! and mutual informations.
//!
//! * [`ProductDomain`] — mixed-radix encoding of the product domain.
//! * [`sampling`] — uniform sampling of `N` distinct indices from a range,
//!   with three strategies depending on the density `N / |domain|`.
//! * [`RandomRelationModel`] — Definition 5.2: sampling relation instances.
//! * [`generators`] — structured families: the bijection relation of
//!   Example 4.1, lossless tree-factorised relations, noisy approximate-AJD
//!   relations, and the Figure 1 workload.
//!
//! All sampling is driven by a caller-provided [`rand::Rng`], so experiments
//! are reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod model;
pub mod planted;
pub mod product;
pub mod sampling;

pub use model::RandomRelationModel;
pub use planted::{PlantedRelation, PlantedTreeRelation};
pub use product::ProductDomain;
pub use sampling::{sample_distinct, SamplingStrategy};
