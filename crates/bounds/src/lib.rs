//! # ajd-bounds
//!
//! The quantitative bounds of *"Quantifying the Loss of Acyclic Join
//! Dependencies"* (Kenig & Weinberger, PODS 2023), as plain numeric
//! functions.  The crate is independent of the relational machinery — it
//! maps numbers (domain sizes, relation sizes, information measures,
//! confidence levels) to bounds — so it can be unit-tested exhaustively and
//! reused by the analysis crate, the experiments and the property tests.
//!
//! All information-measure arguments and results are in **nats**, matching
//! `ajd-info`; the bound formulas are base-consistent, so using nats
//! throughout is equivalent to the paper's statements.
//!
//! | Module | Paper result |
//! |--------|--------------|
//! | [`lower`]     | Lemma 4.1: `J(T) ≤ log(1+ρ)`, i.e. `ρ ≥ e^J − 1` |
//! | [`thm52`]     | Theorem 5.2 / Proposition 5.4 / Corollary 5.2.1: entropy and MI confidence bounds under the random relation model |
//! | [`thm51`]     | Theorem 5.1: `log(1+ρ(R,φ)) ≤ I(A;B|C) + ε*(φ,N,δ)` w.h.p. |
//! | [`schema`]    | Proposition 5.1 and 5.3: lifting per-MVD bounds to a full acyclic schema |
//! | [`auxiliary`] | `C(d)`, `h(t)`, functional entropy, Serfling / Chernoff tails (Appendix D) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auxiliary;
pub mod lower;
pub mod planning;
pub mod schema;
pub mod thm51;
pub mod thm52;

pub use auxiliary::{c_of_d, functional_entropy, h_of_t, poisson_tail_bound, serfling_tail_bound};
pub use lower::{j_lower_bound_on_loss, lemma41_holds, loss_to_log1p, max_j_for_loss};
pub use planning::{
    entropy_mcdiarmid_epsilon, guaranteed_spurious_tuples, j_budget_for_loss,
    required_n_for_epsilon, sample_size_for_entropy_epsilon,
};
pub use schema::{loss_upper_bound_from_j, prop51_j_bound, prop53_schema_bound, Prop53Bound};
pub use thm51::{
    epsilon_star, thm51_minimum_n, thm51_qualifying_condition, thm51_upper_bound, Thm51Params,
};
pub use thm52::{
    cor521_mi_lower_bound, expected_entropy_lower_bound, thm52_entropy_deviation,
    thm52_entropy_lower_bound, thm52_qualifying_condition,
};
