//! GYO (Graham / Yu–Özsoyoğlu) reduction.
//!
//! A schema is acyclic exactly when repeated *ear removal* eliminates all of
//! its bags: a bag `E` is an ear if there exists another bag `W` (its
//! *witness*) such that every attribute of `E` is either exclusive to `E`
//! (appears in no other remaining bag) or contained in `W`.  Removing ears
//! until a single bag remains both decides acyclicity and yields a join
//! tree: each removed ear is attached to its witness.

use crate::tree::JoinTree;
use ajd_relation::AttrSet;

/// Result of running GYO reduction on a set of bags.
#[derive(Debug, Clone)]
pub enum GyoOutcome {
    /// The schema is acyclic; a witnessing join tree is returned.
    Acyclic(JoinTree),
    /// The schema is cyclic; the irreducible residual bags are returned
    /// (useful for diagnostics).
    Cyclic {
        /// Bags that remained when no further ear could be removed.
        residual: Vec<AttrSet>,
    },
}

impl GyoOutcome {
    /// `true` if the schema was found acyclic.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, GyoOutcome::Acyclic(_))
    }

    /// Extracts the join tree, if acyclic.
    pub fn into_tree(self) -> Option<JoinTree> {
        match self {
            GyoOutcome::Acyclic(t) => Some(t),
            GyoOutcome::Cyclic { .. } => None,
        }
    }
}

/// Runs GYO ear removal on `bags`.
///
/// Bags that are duplicates or subsets of other bags are handled naturally
/// (they are ears).  The returned join tree has exactly one node per input
/// bag, in the input order.
pub fn gyo_reduction(bags: &[AttrSet]) -> GyoOutcome {
    let n = bags.len();
    if n == 0 {
        return GyoOutcome::Cyclic { residual: vec![] };
    }
    if n == 1 {
        return GyoOutcome::Acyclic(
            JoinTree::new(bags.to_vec(), vec![]).expect("single-bag tree is always valid"),
        );
    }

    let mut active: Vec<bool> = vec![true; n];
    let mut remaining = n;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n - 1);

    while remaining > 1 {
        let mut removed_this_round = false;
        'scan: for e in 0..n {
            if !active[e] {
                continue;
            }
            // Attributes of `e` that also appear in some other active bag.
            let mut shared = AttrSet::empty();
            for a in bags[e].iter() {
                let appears_elsewhere = (0..n).any(|j| j != e && active[j] && bags[j].contains(a));
                if appears_elsewhere {
                    shared.insert(a);
                }
            }
            // `e` is an ear if some other active bag contains all its shared
            // attributes.
            for w in 0..n {
                if w == e || !active[w] {
                    continue;
                }
                if shared.is_subset_of(&bags[w]) {
                    active[e] = false;
                    remaining -= 1;
                    edges.push((e, w));
                    removed_this_round = true;
                    break 'scan;
                }
            }
        }
        if !removed_this_round {
            let residual = (0..n)
                .filter(|&i| active[i])
                .map(|i| bags[i].clone())
                .collect();
            return GyoOutcome::Cyclic { residual };
        }
    }

    let tree = JoinTree::new(bags.to_vec(), edges)
        .expect("GYO reduction produces a valid join tree by construction");
    GyoOutcome::Acyclic(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn single_bag_is_acyclic() {
        let out = gyo_reduction(&[bag(&[0, 1, 2])]);
        assert!(out.is_acyclic());
        let t = out.into_tree().unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn empty_input_is_reported_cyclic() {
        assert!(!gyo_reduction(&[]).is_acyclic());
    }

    #[test]
    fn path_schema_is_acyclic() {
        let out = gyo_reduction(&[bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]);
        assert!(out.is_acyclic());
        let t = out.into_tree().unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
        assert!(t.check_running_intersection());
    }

    #[test]
    fn star_mvd_schema_is_acyclic() {
        // X ->> U|V|W: bags {XU, XV, XW}.
        let out = gyo_reduction(&[bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]);
        assert!(out.is_acyclic());
        assert!(out.into_tree().unwrap().check_running_intersection());
    }

    #[test]
    fn disjoint_bags_are_acyclic() {
        // {A}, {B}: the cross-product schema of Example 4.1.
        let out = gyo_reduction(&[bag(&[0]), bag(&[1])]);
        assert!(out.is_acyclic());
        let t = out.into_tree().unwrap();
        assert_eq!(t.num_edges(), 1);
        assert!(t.separator(0).is_empty());
    }

    #[test]
    fn triangle_is_cyclic() {
        let out = gyo_reduction(&[bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 0])]);
        match out {
            GyoOutcome::Cyclic { residual } => assert_eq!(residual.len(), 3),
            GyoOutcome::Acyclic(_) => panic!("triangle must be cyclic"),
        }
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let out = gyo_reduction(&[bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3]), bag(&[3, 0])]);
        assert!(!out.is_acyclic());
    }

    #[test]
    fn contained_bags_are_ears() {
        let out = gyo_reduction(&[bag(&[0, 1, 2]), bag(&[0, 1]), bag(&[2, 3])]);
        assert!(out.is_acyclic());
        let t = out.into_tree().unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert!(t.check_running_intersection());
    }

    #[test]
    fn classic_tpc_like_acyclic_schema() {
        // {ABC, BCD, CDE, DEF}: running intersections along a path.
        let out = gyo_reduction(&[
            bag(&[0, 1, 2]),
            bag(&[1, 2, 3]),
            bag(&[2, 3, 4]),
            bag(&[3, 4, 5]),
        ]);
        assert!(out.is_acyclic());
        assert!(out.into_tree().unwrap().check_running_intersection());
    }

    #[test]
    fn cyclic_schema_with_large_bags() {
        // Pairwise overlaps but no witness: {ABD, BCE, CAF} forms a triangle
        // through A, B, C.
        let out = gyo_reduction(&[bag(&[0, 1, 3]), bag(&[1, 2, 4]), bag(&[2, 0, 5])]);
        assert!(!out.is_acyclic());
    }
}
