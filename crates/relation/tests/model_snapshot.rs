//! Model-checked invariants for the incremental sharding layer: per-shard
//! single-flight group tables and the epoch-snapshot append protocol.
//!
//! These tests only compile under `RUSTFLAGS="--cfg ajd_model"`; the CI
//! `model-check` job runs them.  Each body is executed once per explored
//! schedule, so it must be cheap, deterministic, and free of polling loops.
//! See `docs/CONCURRENCY.md` for the memory model and the replay workflow.
#![cfg(ajd_model)]

use ajd_model::Model;
use ajd_relation::{AttrId, AttrSet, Relation, ShardedRelation, ShardedStore, ThreadBudget};

fn shard(rows: &[[u32; 2]]) -> Relation {
    let rows: Vec<&[u32]> = rows.iter().map(|r| &r[..]).collect();
    Relation::from_rows(vec![AttrId(0), AttrId(1)], &rows).unwrap()
}

fn two_shards() -> ShardedRelation {
    let mut rel = ShardedRelation::new(vec![AttrId(0), AttrId(1)]).unwrap();
    rel.append_shard(shard(&[[0, 0], [1, 0]])).unwrap();
    rel.append_shard(shard(&[[0, 1]])).unwrap();
    rel
}

/// Two racers grouping one cold attribute set over two shards: under
/// *every* interleaving each `(shard, attribute-set)` table is computed
/// exactly once — the per-shard single-flight slots dedupe the work, and
/// the loser of each slot race is served from the winner's table.
fn per_shard_single_flight_body() {
    let rel = two_shards();
    let y = AttrSet::singleton(AttrId(0));
    ajd_sync::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                // Serial budget: model bodies must not spawn kernel worker
                // threads the scheduler cannot see.
                let g = rel.group_ids_with(&y, ThreadBudget::serial()).unwrap();
                assert_eq!(g.num_groups(), 2);
            });
        }
    });
    let stats = rel.shard_cache_stats();
    assert_eq!(
        stats.misses, 2,
        "exactly one compute per (shard, attrs), got {stats:?}"
    );
    assert_eq!(stats.hits, 2, "each follower answers from the warm table");
    assert_eq!(stats.entries, 2);
}

#[test]
fn cold_shard_tables_are_computed_exactly_once_under_all_interleavings() {
    let report = Model::new()
        .max_schedules(2_000)
        .preemption_bound(2)
        .explore(per_shard_single_flight_body);
    assert!(
        report.violation.is_none(),
        "per-shard single flight violated: {:?}",
        report.violation
    );
    assert!(
        report.schedules >= 100,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}

/// A writer appending the next epoch races a reader pinning a snapshot:
/// under every interleaving the reader observes either epoch 1 (one
/// shard, two rows) or epoch 2 (two shards, three rows) — never a torn
/// mixture — and grouping the pinned snapshot answers for exactly the
/// rows of that epoch.
fn append_vs_reader_body() {
    let store = ShardedStore::from_initial_shard(shard(&[[0, 0], [1, 0]])).unwrap();
    let y = AttrSet::singleton(AttrId(0));
    ajd_sync::thread::scope(|s| {
        s.spawn(|| {
            store.append_shard(shard(&[[2, 1]])).unwrap();
        });
        s.spawn(|| {
            let snap = store.snapshot();
            let (shards, rows, groups) = match snap.epoch() {
                1 => (1, 2, 2),
                2 => (2, 3, 3),
                torn => panic!("torn epoch {torn}"),
            };
            assert_eq!(snap.num_shards(), shards, "epoch {} torn", snap.epoch());
            assert_eq!(snap.len(), rows, "epoch {} torn", snap.epoch());
            let g = snap.group_ids_with(&y, ThreadBudget::serial()).unwrap();
            assert_eq!(g.num_groups(), groups);
            assert_eq!(g.row_ids().len(), rows);
        });
    });
    // Quiescent state: the append always wins eventually.
    assert_eq!(store.epoch(), 2);
    assert_eq!(store.snapshot().len(), 3);
}

#[test]
fn append_racing_a_reader_never_tears_an_epoch() {
    let report = Model::new()
        .max_schedules(2_000)
        .preemption_bound(2)
        .explore(append_vs_reader_body);
    assert!(
        report.violation.is_none(),
        "snapshot protocol violated: {:?}",
        report.violation
    );
    assert!(
        report.schedules >= 100,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}

/// Two writers appending concurrently: the writer mutex serializes them,
/// so both shards land, epochs advance by exactly one each, and no append
/// is lost regardless of the interleaving.
fn two_writers_body() {
    let store = ShardedStore::from_initial_shard(shard(&[[0, 0]])).unwrap();
    let store = &store;
    ajd_sync::thread::scope(|s| {
        for v in [1u32, 2] {
            s.spawn(move || {
                let snap = store.append_shard(shard(&[[v, v]])).unwrap();
                assert!(snap.epoch() >= 2, "an append must install a new epoch");
            });
        }
    });
    let snap = store.snapshot();
    assert_eq!(snap.epoch(), 3, "two appends, two epoch bumps");
    assert_eq!(snap.num_shards(), 3);
    assert_eq!(snap.len(), 3, "no append may be lost");
}

#[test]
fn concurrent_appends_are_serialized_and_never_lost() {
    let report = Model::new()
        .max_schedules(2_000)
        .preemption_bound(2)
        .explore(two_writers_body);
    assert!(
        report.violation.is_none(),
        "writer serialization violated: {:?}",
        report.violation
    );
    // The writer mutex deliberately collapses most interleavings — that is
    // the property — so the reachable schedule space is small but must
    // still be a genuine exploration, not a single run.
    assert!(
        report.schedules >= 10,
        "expected a real exploration, got {} schedules",
        report.schedules
    );
}
