//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so property tests run on a
//! small deterministic harness with the same source-level surface:
//!
//! * [`proptest!`] — the test-defining macro, including
//!   `#![proptest_config(...)]` headers and `pat in strategy` arguments.
//! * [`strategy::Strategy`] — value generators with `prop_map`; integer and
//!   float ranges are strategies, and `prop::collection::vec` builds vectors.
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from real proptest, deliberately accepted for a shim: no
//! shrinking (failures report the already-small generated input instead) and
//! a fixed deterministic RNG seed per test function, so CI failures always
//! reproduce locally.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{RngExt, SampleUniform};
    use std::ops::Range;

    /// A deterministic generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + PartialOrd + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.start.clone()..self.end.clone())
        }
    }

    /// Sizes accepted by [`super::collection::vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy returned by [`super::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy generating `[S::Value; N]` from `N` independent draws.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_array_fn {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// Generates arrays whose elements all come from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )+};
    }

    uniform_array_fn!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::…` module path used inside `proptest::prelude::*` imports.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

// The seed every property test's RNG derives from. Fixed so CI failures
// reproduce locally; bump to explore a different slice of the input space.
#[doc(hidden)]
pub const BASE_SEED: u64 = 0x005e_ed0f_ac1d;

#[doc(hidden)]
pub use rand as __rand;

/// Fails the current property-test case with `Err(message)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}",
                ::core::stringify!($cond),
                ::core::file!(),
                ::core::line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} at {}:{}",
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!()
            ));
        }
    };
}

/// Equality assertion for property-test cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}` at {}:{}",
                l,
                r,
                ::core::file!(),
                ::core::line!()
            ));
        }
    }};
}

/// Inequality assertion for property-test cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}` at {}:{}",
                l,
                r,
                ::core::file!(),
                ::core::line!()
            ));
        }
    }};
}

/// Discards the current case (counts as a pass) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::
                seed_from_u64($crate::BASE_SEED);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let input_desc = ::std::format!(
                    ::core::concat!($("\n  ", ::core::stringify!($arg), " = {:?}",)+),
                    $(&$arg,)+
                );
                let outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(msg) = outcome {
                    ::core::panic!(
                        "property `{}` failed on case {}/{}: {}\ninputs:{}",
                        ::core::stringify!($name), case + 1, config.cases, msg, input_desc,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_strategy_respects_sizes(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for &e in &v {
                prop_assert!(e < 5);
            }
        }

        #[test]
        fn prop_map_and_assume_compose(
            v in prop::collection::vec(prop::collection::vec(0u64..3, 2), 0..5)
                .prop_map(|rows| rows.len())
        ) {
            prop_assume!(v > 0);
            prop_assert_ne!(v, 0);
            prop_assert_eq!(v, v);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0u8..2) {
                prop_assert!(false, "boom {x}");
            }
        }
        always_fails();
    }
}
