//! The `ajd-lint` CLI.
//!
//! ```text
//! cargo run -p ajd-lint --              # report findings, exit 0
//! cargo run -p ajd-lint -- --deny       # exit 1 on any unwaived finding
//! cargo run -p ajd-lint -- --json       # machine-readable report
//! cargo run -p ajd-lint -- --list-rules # rule catalog
//! cargo run -p ajd-lint -- --root DIR   # lint another workspace root
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: ajd-lint [--deny] [--json] [--list-rules] [--root DIR]\n\
     Lints every workspace .rs file against the determinism & counting rules\n\
     (see docs/LINTS.md). Waive a finding inline with\n\
     `// ajd: allow(rule-id, \"reason\")`."
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in ajd_lint::RULES {
            println!("{:<22} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = root
        .or_else(|| std::env::current_dir().ok().and_then(find_workspace_root))
        .unwrap_or_else(|| PathBuf::from("."));
    let report = match ajd_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "ajd-lint: cannot walk workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
