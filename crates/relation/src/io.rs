//! Ingesting delimited text data into dictionary-encoded relations.
//!
//! Real datasets arrive as CSV/TSV-like text.  [`read_delimited`] parses
//! in-memory text into a [`Catalog`] (attribute names from the header, one
//! value dictionary per attribute) and a [`Relation`] of dictionary codes,
//! which is the representation every analysis in this workspace operates on;
//! [`read_delimited_from`] does the same for a file on disk, **streaming**
//! line by line through a `BufReader` straight into [`Relation::push_row`]
//! so large datasets never need to be slurped into one string first.
//! [`write_delimited`] renders a relation back to text using a catalog, and
//! [`write_delimited_to`] streams it to a file.
//!
//! The parser is deliberately small: one character delimiter, no quoting, no
//! escaping — sufficient for the synthetic and benchmark datasets used here.
//! Anything fancier should be converted externally first.

use crate::catalog::Catalog;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use std::borrow::Cow;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as IoWrite};
use std::path::Path;

/// Options for [`read_delimited`] / [`read_delimited_from`].
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Field delimiter (`,` for CSV, `\t` for TSV).
    pub delimiter: char,
    /// Whether the first non-empty line is a header of attribute names.
    /// Without a header, attributes are named `X0, X1, …`.
    pub has_header: bool,
    /// Whether duplicate rows should be dropped (set semantics).
    pub distinct: bool,
    /// Whether leading/trailing whitespace of each field is trimmed.
    pub trim: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            delimiter: ',',
            has_header: true,
            distinct: false,
            trim: true,
        }
    }
}

/// Converts an I/O error into the crate error type, recording the path.
fn io_error(path: &Path, err: std::io::Error) -> RelationError {
    RelationError::Io {
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

/// Wraps a line iterator so that **only the final line** sheds a single
/// trailing `'\r'`.
///
/// `str::lines` / `BufRead::lines` consume `\r\n` pairs, so an interior
/// line can only end in `'\r'` if that `'\r'` is field data (e.g. the
/// bytes `b"x\r\r\n"` are the field `x\r`) — stripping there would corrupt
/// it.  The one place a *line-ending* `'\r'` survives the line splitters
/// is a CRLF file whose final line hits EOF without a `'\n'`; that is the
/// only line this adapter touches.
fn strip_final_carriage_return<'s, I>(lines: I) -> impl Iterator<Item = Result<Cow<'s, str>>>
where
    I: Iterator<Item = Result<Cow<'s, str>>>,
{
    let mut lines = lines.peekable();
    std::iter::from_fn(move || {
        let line = lines.next()?;
        let is_last = lines.peek().is_none();
        Some(line.map(|l| {
            if is_last && l.ends_with('\r') {
                // '\r' is one byte, so the slice boundary is valid.
                match l {
                    Cow::Borrowed(s) => Cow::Borrowed(&s[..s.len() - 1]),
                    Cow::Owned(mut s) => {
                        s.pop();
                        Cow::Owned(s)
                    }
                }
            } else {
                l
            }
        }))
    })
}

/// The streaming core shared by the in-memory and file-based readers: pulls
/// lines one at a time, builds the catalog from the first non-empty line (or
/// positional names), and pushes every data row straight into the relation.
///
/// Lines arrive as `Cow<str>` so the in-memory reader lends borrowed
/// slices (no per-line copy) while the file reader hands over the owned
/// `String`s its `BufReader` produces.
fn read_lines<'s, I>(lines: I, options: ReadOptions) -> Result<(Catalog, Relation)>
where
    I: Iterator<Item = Result<Cow<'s, str>>>,
{
    let mut lines = strip_final_carriage_return(lines).filter(|l| match l {
        Ok(l) => !l.trim().is_empty(),
        Err(_) => true,
    });

    let split = |line: &str| -> Vec<String> {
        line.split(options.delimiter)
            .map(|f| {
                if options.trim {
                    f.trim().to_owned()
                } else {
                    f.to_owned()
                }
            })
            .collect()
    };

    let first = lines
        .next()
        .transpose()?
        .ok_or(RelationError::EmptyInput("delimited text with no rows"))?;
    let first_fields = split(&first);
    if first_fields.iter().any(String::is_empty) {
        return Err(RelationError::EmptyInput("empty field in first row"));
    }

    let (mut catalog, mut pending_first_row): (Catalog, Option<Vec<String>>) = if options.has_header
    {
        (
            Catalog::with_attributes(first_fields.iter().map(String::as_str))?,
            None,
        )
    } else {
        let names: Vec<String> = (0..first_fields.len()).map(|i| format!("X{i}")).collect();
        (
            Catalog::with_attributes(names.iter().map(String::as_str))?,
            Some(first_fields),
        )
    };

    let arity = catalog.arity();
    let schema: Vec<crate::AttrId> = (0..arity).map(crate::AttrId::from).collect();
    let mut relation = Relation::new(schema)?;
    let push = |catalog: &mut Catalog, relation: &mut Relation, fields: &[String]| -> Result<()> {
        if fields.len() != arity {
            return Err(RelationError::ArityMismatch {
                expected: arity,
                got: fields.len(),
            });
        }
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let row = catalog.encode_row(&refs)?;
        relation.push_row(&row)
    };

    if let Some(fields) = pending_first_row.take() {
        push(&mut catalog, &mut relation, &fields)?;
    }
    for line in lines {
        let fields = split(&line?);
        push(&mut catalog, &mut relation, &fields)?;
    }

    let relation = if options.distinct {
        relation.distinct()
    } else {
        relation
    };
    Ok((catalog, relation))
}

/// Parses delimited text into a catalog and a dictionary-encoded relation.
///
/// Empty lines are skipped.  Every data row must have exactly as many fields
/// as the header (or as the first data row when there is no header).
pub fn read_delimited(text: &str, options: ReadOptions) -> Result<(Catalog, Relation)> {
    read_lines(text.lines().map(|l| Ok(Cow::Borrowed(l))), options)
}

/// Reads a delimited file into a catalog and a dictionary-encoded relation,
/// streaming line by line through a `BufReader` (the file is never held in
/// memory as a whole).
///
/// I/O failures surface as [`RelationError::Io`]; parse failures are the
/// same errors [`read_delimited`] produces.
pub fn read_delimited_from<P: AsRef<Path>>(
    path: P,
    options: ReadOptions,
) -> Result<(Catalog, Relation)> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|e| io_error(path, e))?;
    let reader = BufReader::new(file);
    read_lines(
        reader
            .lines()
            .map(|l| l.map(Cow::Owned).map_err(|e| io_error(path, e))),
        options,
    )
}

/// Renders one row through the catalog, falling back to numeric codes for
/// values without a label.
fn render_row(catalog: &Catalog, relation: &Relation, row: &[u32], delimiter: char) -> String {
    let rendered: Vec<String> = relation
        .schema()
        .iter()
        .zip(row)
        .map(|(&a, &v)| {
            catalog
                .value_label(a, v)
                .map(str::to_owned)
                .unwrap_or_else(|| v.to_string())
        })
        .collect();
    rendered.join(&delimiter.to_string())
}

/// Renders a relation back to delimited text using the catalog's labels.
///
/// Values without a label (codes produced outside the catalog) are rendered
/// as their numeric code.
pub fn write_delimited(catalog: &Catalog, relation: &Relation, delimiter: char) -> Result<String> {
    let mut out = String::new();
    let names: Vec<&str> = relation
        .schema()
        .iter()
        .map(|&a| catalog.name(a))
        .collect::<Result<_>>()?;
    let _ = writeln!(out, "{}", names.join(&delimiter.to_string()));
    for row in relation.iter_rows() {
        let _ = writeln!(out, "{}", render_row(catalog, relation, row, delimiter));
    }
    Ok(out)
}

/// Streams a relation to a delimited file through a `BufWriter`, row by row
/// (the counterpart of [`read_delimited_from`]).
///
/// I/O failures surface as [`RelationError::Io`].
pub fn write_delimited_to<P: AsRef<Path>>(
    path: P,
    catalog: &Catalog,
    relation: &Relation,
    delimiter: char,
) -> Result<()> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| io_error(path, e))?;
    let mut writer = BufWriter::new(file);
    let names: Vec<&str> = relation
        .schema()
        .iter()
        .map(|&a| catalog.name(a))
        .collect::<Result<_>>()?;
    writeln!(writer, "{}", names.join(&delimiter.to_string())).map_err(|e| io_error(path, e))?;
    for row in relation.iter_rows() {
        writeln!(writer, "{}", render_row(catalog, relation, row, delimiter))
            .map_err(|e| io_error(path, e))?;
    }
    writer.flush().map_err(|e| io_error(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrId;

    const SAMPLE: &str = "\
city,country,continent
haifa,israel,asia
seattle,usa,america
haifa,israel,asia
paris,france,europe
";

    /// A scratch file path unique to this process and test.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ajd_io_test_{}_{tag}.csv", std::process::id()))
    }

    #[test]
    fn read_with_header_builds_catalog_and_relation() {
        let (catalog, r) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        assert_eq!(catalog.arity(), 3);
        assert_eq!(catalog.attr("country").unwrap(), AttrId(1));
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
        // haifa row appears twice (no dedup by default).
        assert!(!r.is_set());
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("haifa"));
    }

    #[test]
    fn read_distinct_drops_duplicates() {
        let (_c, r) = read_delimited(
            SAMPLE,
            ReadOptions {
                distinct: true,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.is_set());
    }

    #[test]
    fn read_without_header_names_attributes_positionally() {
        let text = "1\t2\n3\t4\n";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                delimiter: '\t',
                has_header: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog.name(AttrId(0)).unwrap(), "X0");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(read_delimited(text, ReadOptions::default()).is_err());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(read_delimited("", ReadOptions::default()).is_err());
        assert!(read_delimited("\n\n", ReadOptions::default()).is_err());
    }

    #[test]
    fn whitespace_is_trimmed_when_requested() {
        let text = "a,b\n x , y \n";
        let (catalog, _r) = read_delimited(text, ReadOptions::default()).unwrap();
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x"));
        let (catalog2, _r2) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog2.value_label(AttrId(0), 0), Some(" x "));
    }

    #[test]
    fn roundtrip_through_write_delimited() {
        let (catalog, r) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        let text = write_delimited(&catalog, &r, ',').unwrap();
        let (_c2, r2) = read_delimited(&text, ReadOptions::default()).unwrap();
        assert_eq!(r2.len(), r.len());
        assert!(r2.canonicalize().set_eq(&r.canonicalize()));
    }

    #[test]
    fn write_falls_back_to_codes_for_unlabelled_values() {
        let catalog = Catalog::with_attributes(["a"]).unwrap();
        let r = Relation::from_rows(vec![AttrId(0)], &[&[9u32][..]]).unwrap();
        let text = write_delimited(&catalog, &r, ',').unwrap();
        assert!(text.contains('9'));
    }

    #[test]
    fn file_roundtrip_streams_both_ways() {
        let path = temp_path("roundtrip");
        std::fs::write(&path, SAMPLE).unwrap();
        let (catalog, r) = read_delimited_from(&path, ReadOptions::default()).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(catalog.arity(), 3);
        // Streamed read matches the in-memory read exactly.
        let (_c2, r2) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        assert!(r.canonicalize().set_eq(&r2.canonicalize()));

        // Write back out and re-read.
        let out_path = temp_path("roundtrip_out");
        write_delimited_to(&out_path, &catalog, &r, ',').unwrap();
        let (_c3, r3) = read_delimited_from(&out_path, ReadOptions::default()).unwrap();
        assert_eq!(r3.len(), r.len());
        assert!(r3.canonicalize().set_eq(&r.canonicalize()));
        // Streamed write matches the in-memory renderer byte for byte.
        assert_eq!(
            std::fs::read_to_string(&out_path).unwrap(),
            write_delimited(&catalog, &r, ',').unwrap()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn file_read_honours_options() {
        let path = temp_path("options");
        std::fs::write(&path, "1\t2\n3\t4\n1\t2\n").unwrap();
        let (catalog, r) = read_delimited_from(
            &path,
            ReadOptions {
                delimiter: '\t',
                has_header: false,
                distinct: true,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog.name(AttrId(0)).unwrap(), "X0");
        assert_eq!(r.len(), 2);
        assert!(r.is_set());
        let _ = std::fs::remove_file(&path);
    }

    /// Regression (CRLF handling): a file with `\r\n` line endings — and a
    /// final line terminated by a bare `\r` at EOF — parses identically to
    /// its `\n`-only counterpart; no field ever carries a stray `\r`.
    #[test]
    fn crlf_input_parses_like_lf_input() {
        let crlf = "city,country\r\nhaifa,israel\r\nseattle,usa\r";
        let lf = "city,country\nhaifa,israel\nseattle,usa\n";

        // In-memory reader.
        let (cat_a, r_a) = read_delimited(crlf, ReadOptions::default()).unwrap();
        let (cat_b, r_b) = read_delimited(lf, ReadOptions::default()).unwrap();
        assert_eq!(r_a.len(), 2);
        assert!(r_a.canonicalize().set_eq(&r_b.canonicalize()));
        assert_eq!(cat_a.value_label(AttrId(1), 1), Some("usa"));
        assert_eq!(cat_b.value_label(AttrId(1), 1), Some("usa"));

        // Streaming file reader, with trimming off so a stray `\r` would be
        // visible in the label (it must not be).
        let path = temp_path("crlf");
        std::fs::write(&path, crlf).unwrap();
        let (cat_f, r_f) = read_delimited_from(
            &path,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r_f.len(), 2);
        assert_eq!(cat_f.value_label(AttrId(1), 1), Some("usa"));
        assert!(r_f.canonicalize().set_eq(&r_a.canonicalize()));
        let _ = std::fs::remove_file(&path);
    }

    /// A lone trailing `\r` on the **final** line is a line ending;
    /// additional `\r`s are data (the seed's `trim_end_matches('\r')`
    /// silently ate all of them).
    #[test]
    fn only_one_trailing_carriage_return_is_stripped() {
        // Final line ends `\r\r` at EOF: one `\r` is the (half) line
        // ending, the other belongs to the field.
        let text = "a\nx\r\r";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x\r"));
    }

    /// An **interior** CRLF line whose field data ends in `\r` (bytes
    /// `x\r\r\n`) keeps that `\r`: the line splitter already consumed the
    /// `\r\n` terminator, so what remains is data and must not be stripped.
    #[test]
    fn interior_carriage_return_data_is_preserved() {
        let text = "a\nx\r\r\ny\n";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x\r"));
        assert_eq!(catalog.value_label(AttrId(0), 1), Some("y"));
    }

    /// Regression (trailing newline): presence or absence of a final
    /// newline must not change the parse — no phantom empty row, no lost
    /// last row.
    #[test]
    fn trailing_final_newline_is_ignored() {
        for (with_nl, without_nl) in [
            ("a,b\n1,2\n3,4\n", "a,b\n1,2\n3,4"),
            ("a,b\r\n1,2\r\n", "a,b\r\n1,2"),
        ] {
            let (_c1, r1) = read_delimited(with_nl, ReadOptions::default()).unwrap();
            let (_c2, r2) = read_delimited(without_nl, ReadOptions::default()).unwrap();
            assert_eq!(r1.len(), r2.len());
            assert!(r1.canonicalize().set_eq(&r2.canonicalize()));

            let path = temp_path("trailing_nl");
            std::fs::write(&path, without_nl).unwrap();
            let (_c3, r3) = read_delimited_from(&path, ReadOptions::default()).unwrap();
            assert_eq!(r3.len(), r1.len());
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Regression (ragged rows): both too-few and too-many fields surface
    /// as [`RelationError::ArityMismatch`] from the streaming reader — never
    /// a silently truncated or padded tuple.
    #[test]
    fn ragged_file_rows_error_instead_of_misparsing() {
        for (tag, body) in [
            ("short", "a,b\n1,2\n3\n"),
            ("long", "a,b\n1,2\n3,4,5\n"),
            ("crlf_short", "a,b\r\n1,2\r\n3\r\n"),
        ] {
            let path = temp_path(&format!("ragged_{tag}"));
            std::fs::write(&path, body).unwrap();
            let err = read_delimited_from(&path, ReadOptions::default()).unwrap_err();
            assert!(
                matches!(err, RelationError::ArityMismatch { .. }),
                "{tag}: expected ArityMismatch, got {err}"
            );
            let _ = std::fs::remove_file(&path);
            // The in-memory reader agrees.
            assert!(matches!(
                read_delimited(body, ReadOptions::default()).unwrap_err(),
                RelationError::ArityMismatch { .. }
            ));
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err =
            read_delimited_from("/nonexistent/ajd/input.csv", ReadOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Io { .. }), "{err}");
        let catalog = Catalog::with_attributes(["a"]).unwrap();
        let r = Relation::from_rows(vec![AttrId(0)], &[&[1u32][..]]).unwrap();
        let err = write_delimited_to("/nonexistent/ajd/output.csv", &catalog, &r, ',').unwrap_err();
        assert!(matches!(err, RelationError::Io { .. }), "{err}");
    }
}
