//! Machine-readable benchmark output and a tiny timing helper.
//!
//! The bench-smoke CI workflow runs the perf benches on every PR; to track
//! the perf trajectory over time the key comparisons are additionally
//! written to a JSON file (`BENCH_columnar.json` by default, overridable via
//! the `AJD_BENCH_JSON` environment variable).  The file holds one record
//! per benchmark:
//!
//! ```json
//! {"records": [
//!   {"bench": "group_counts/columnar", "median_ns": 1234, "baseline_ns": 5678, "speedup": 4.60}
//! ]}
//! ```
//!
//! Several bench binaries append to the same file: [`BenchJson::emit`]
//! merges by benchmark name (latest wins) using a line-oriented rewrite, so
//! no JSON parser is needed.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One benchmark result destined for the JSON trajectory file.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `"group_counts/columnar_100k"`.
    pub bench: String,
    /// Median wall-clock time per iteration, in nanoseconds.
    pub median_ns: u128,
    /// Median of the baseline being compared against, if any.
    pub baseline_ns: Option<u128>,
}

impl BenchRecord {
    /// `baseline / median` — how many times faster than the baseline.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ns
            .map(|b| b as f64 / self.median_ns.max(1) as f64)
    }

    fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"bench\": \"{}\", \"median_ns\": {}",
            self.bench, self.median_ns
        );
        if let Some(b) = self.baseline_ns {
            let _ = write!(line, ", \"baseline_ns\": {b}");
        }
        if let Some(s) = self.speedup() {
            let _ = write!(line, ", \"speedup\": {s:.3}");
        }
        line.push('}');
        line
    }
}

/// Collects [`BenchRecord`]s and writes them to the trajectory file.
#[derive(Debug, Default)]
pub struct BenchJson {
    records: Vec<BenchRecord>,
}

impl BenchJson {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The output path: `$AJD_BENCH_JSON`, or `BENCH_columnar.json` in the
    /// current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("AJD_BENCH_JSON")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_columnar.json"))
    }

    /// Records a standalone measurement.
    pub fn record(&mut self, bench: &str, median: Duration) {
        self.records.push(BenchRecord {
            bench: bench.to_owned(),
            median_ns: median.as_nanos(),
            baseline_ns: None,
        });
    }

    /// Records a measurement next to the baseline it is compared against.
    pub fn record_vs_baseline(&mut self, bench: &str, median: Duration, baseline: Duration) {
        self.records.push(BenchRecord {
            bench: bench.to_owned(),
            median_ns: median.as_nanos(),
            baseline_ns: Some(baseline.as_nanos()),
        });
    }

    /// The records collected so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes (merging with any records already in `path`: same-name records
    /// are replaced, others are kept).  Errors are reported but deliberately
    /// non-fatal to the caller — a bench run must not fail because CI ran it
    /// in a read-only directory.
    pub fn emit(&self, path: &Path) {
        match self.emit_inner(path) {
            Ok(()) => eprintln!(
                "wrote {} bench record(s) to {}",
                self.records.len(),
                path.display()
            ),
            Err(e) => eprintln!("could not write bench json to {}: {e}", path.display()),
        }
    }

    fn emit_inner(&self, path: &Path) -> std::io::Result<()> {
        // Keep existing records whose names this run does not overwrite.
        // Records are one per line, so a line scan is a sufficient "parser".
        let mut kept: Vec<String> = Vec::new();
        if let Ok(existing) = fs::read_to_string(path) {
            for line in existing.lines() {
                let line = line.trim().trim_end_matches(',');
                if line.starts_with("{\"bench\":")
                    && !self
                        .records
                        .iter()
                        .any(|r| line.contains(&format!("\"{}\"", r.bench)))
                {
                    kept.push(line.to_owned());
                }
            }
        }
        let mut lines = kept;
        lines.extend(self.records.iter().map(BenchRecord::to_json_line));
        let mut out = String::from("{\"records\": [\n");
        for (i, line) in lines.iter().enumerate() {
            let sep = if i + 1 < lines.len() { "," } else { "" };
            let _ = writeln!(out, "  {line}{sep}");
        }
        out.push_str("]}\n");
        fs::write(path, out)
    }
}

/// Times `routine` over repeated batches and returns the median
/// per-iteration duration (same scheme as the criterion shim, exposed so
/// bench binaries can feed [`BenchJson`] without a harness).
pub fn time_median<R, F: FnMut() -> R>(budget: Duration, mut routine: F) -> Duration {
    let warmup = Instant::now();
    std::hint::black_box(routine());
    let first = warmup.elapsed().max(Duration::from_nanos(1));

    const BATCHES: usize = 5;
    let per_batch = budget / BATCHES as u32;
    let iters_per_batch = (per_batch.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<Duration> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            start.elapsed() / iters_per_batch as u32
        })
        .collect();
    samples.sort_unstable();
    samples[BATCHES / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_json(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ajd_bench_json_{}_{tag}.json", std::process::id()))
    }

    #[test]
    fn records_render_speedup() {
        let mut j = BenchJson::new();
        j.record_vs_baseline("x", Duration::from_nanos(100), Duration::from_nanos(250));
        let r = &j.records()[0];
        assert_eq!(r.median_ns, 100);
        assert!((r.speedup().unwrap() - 2.5).abs() < 1e-9);
        assert!(r.to_json_line().contains("\"speedup\": 2.500"));
    }

    #[test]
    fn emit_merges_by_name() {
        let path = temp_json("merge");
        let _ = fs::remove_file(&path);

        let mut a = BenchJson::new();
        a.record("alpha", Duration::from_nanos(10));
        a.record("beta", Duration::from_nanos(20));
        a.emit(&path);

        let mut b = BenchJson::new();
        b.record("beta", Duration::from_nanos(99)); // overwrite
        b.record("gamma", Duration::from_nanos(30));
        b.emit(&path);

        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"alpha\""));
        assert!(text.contains("\"gamma\""));
        assert!(text.contains("\"median_ns\": 99"));
        assert!(!text.contains("\"median_ns\": 20"));
        // Well-formed wrapper.
        assert!(text.starts_with("{\"records\": ["));
        assert!(text.trim_end().ends_with("]}"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn time_median_measures_something() {
        let d = time_median(Duration::from_millis(5), || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(d > Duration::ZERO);
    }
}
