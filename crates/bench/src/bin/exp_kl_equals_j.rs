//! Experiment `thm32_kl` — Theorem 3.2: `J(T) = D_KL(P ‖ P^T)`.
//!
//! The J-measure (eq. 7, a combination of marginal entropies) and the
//! KL-divergence to the tree-factorised distribution `P^T` (eq. 10) are
//! computed by entirely different code paths; Theorem 3.2 says they are the
//! same number.  We report the maximum absolute discrepancy over random
//! relations and several join trees — it should be at floating-point level.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::Summary;
use ajd_bench::table::{f, Table};
use ajd_core::Analyzer;
use ajd_jointree::JoinTree;
use ajd_random::{ProductDomain, RandomRelationModel};
use ajd_relation::{AttrSet, ThreadBudget};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn main() {
    let args = ExperimentArgs::from_env();
    let trees = vec![
        (
            "path",
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
        ),
        (
            "star",
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ),
        (
            "singletons",
            JoinTree::path(vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])]).unwrap(),
        ),
        (
            "coarse",
            JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        ),
    ];
    let sizes: Vec<u64> = if args.quick {
        vec![100]
    } else {
        vec![50, 200, 800]
    };
    let model = RandomRelationModel::new(ProductDomain::new(vec![7, 6, 5, 4]).unwrap());

    let mut table = Table::new(
        "Theorem 3.2: |J - KL| over random relations (nats)",
        &[
            "tree",
            "N",
            "trials",
            "J_mean",
            "abs_err_mean",
            "abs_err_max",
        ],
    );

    for (name, tree) in &trees {
        for &n in &sizes {
            let rows = parallel_trials(args.trials, args.seed ^ (n << 8), |_, rng| {
                let r = model.sample(rng, n).expect("N within domain");
                // One shared analyzer: J and KL need the same bag/separator
                // marginals, so the two "different code paths" of the
                // theorem share their grouping work (not their arithmetic).
                // Trials already own the machine's cores; keep each
                // per-trial analyzer's kernel serial (one coherent budget).
                let analyzer = Analyzer::with_thread_budget(&r, ThreadBudget::serial());
                let j = analyzer.j_measure(tree).expect("j measure");
                let kl = analyzer.kl(tree).expect("kl divergence");
                (j, (j - kl).abs())
            });
            let js: Vec<f64> = rows.iter().map(|(j, _)| *j).collect();
            let errs: Vec<f64> = rows.iter().map(|(_, e)| *e).collect();
            table.push_row(vec![
                name.to_string(),
                n.to_string(),
                rows.len().to_string(),
                f(Summary::of(&js).mean),
                format!("{:.2e}", Summary::of(&errs).mean),
                format!("{:.2e}", Summary::of(&errs).max),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "thm32_kl");
    println!(
        "Paper's shape: the identity is exact; abs_err_max should sit at ~1e-12 (floating point only)."
    );
}
