//! Column-aligned result tables with optional CSV export.
//!
//! The experiment binaries print the same rows/series the paper reports;
//! this tiny table type keeps them readable on a terminal and writes a CSV
//! copy when `--csv DIR` is passed (we deliberately do not pull in a CSV
//! crate — values are simple numbers and identifiers).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple table: a header and rows of stringified cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same number of cells as the header).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as column-aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            line.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header + rows, comma separated; cells are
    /// assumed not to contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV form to `dir/<name>.csv`, creating the directory if
    /// necessary.
    pub fn write_csv(&self, dir: &str, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        fs::write(path, self.to_csv())
    }

    /// Prints the rendered table to stdout and, when a CSV directory is
    /// configured, writes the CSV copy too.
    pub fn emit(&self, csv_dir: Option<&str>, name: &str) {
        print!("{}", self.render());
        println!();
        if let Some(dir) = csv_dir {
            match self.write_csv(dir, name) {
                Ok(()) => println!("[csv written to {dir}/{name}.csv]"),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
    }
}

/// Formats a float with 6 significant decimals (the common cell format).
pub fn f(x: f64) -> String {
    format!("{x:.6}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", &["d", "mi", "ref"]);
        t.push_row(vec!["100".into(), f(0.0945), f(0.0953)]);
        t.push_row(vec!["1000".into(), f(0.0952), f(0.0953)]);
        t
    }

    #[test]
    fn render_contains_all_cells_and_title() {
        let r = sample_table().render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("0.094500"));
        assert!(r.contains("1000"));
        assert!(r.contains("ref"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "d,mi,ref");
        assert!(lines[1].starts_with("100,"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("ajd_bench_table_test");
        let dir_str = dir.to_string_lossy().to_string();
        sample_table().write_csv(&dir_str, "demo").unwrap();
        let contents = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(contents.contains("d,mi,ref"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f(1.0), "1.000000");
        assert_eq!(f3(2.5), "2.500");
    }
}
