//! The random relation model (Definition 5.2).
//!
//! A [`RandomRelationModel`] over a [`ProductDomain`] draws relation
//! instances of a given size `N` uniformly at random from all size-`N`
//! subsets of the product domain.  The attribute ids of the sampled relation
//! are `X₀,…,X_{n−1}` in the order of the domain's dimensions; the paper's
//! MVD setting `C ↠ A | B` uses `A = X₀`, `B = X₁`, `C = X₂`
//! (see [`RandomRelationModel::for_mvd`]).

use crate::product::ProductDomain;
use crate::sampling::sample_distinct;
use ajd_relation::{AttrId, Relation, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The random relation model of Definition 5.2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomRelationModel {
    domain: ProductDomain,
}

impl RandomRelationModel {
    /// Creates a model over the given product domain.
    pub fn new(domain: ProductDomain) -> Self {
        RandomRelationModel { domain }
    }

    /// Creates the three-attribute model used throughout Section 5:
    /// attributes `A, B, C` (ids 0, 1, 2) with domain sizes `d_A, d_B, d_C`.
    pub fn for_mvd(d_a: u64, d_b: u64, d_c: u64) -> Result<Self> {
        Ok(RandomRelationModel::new(ProductDomain::for_mvd(
            d_a, d_b, d_c,
        )?))
    }

    /// Creates the degenerate (`d_C = 1`) two-attribute model of Section 5.1
    /// / Figure 1: attributes `A, B` (ids 0, 1) with domain sizes `d_A, d_B`.
    pub fn degenerate(d_a: u64, d_b: u64) -> Result<Self> {
        Ok(RandomRelationModel::new(ProductDomain::new(vec![
            d_a, d_b,
        ])?))
    }

    /// The underlying product domain.
    pub fn domain(&self) -> &ProductDomain {
        &self.domain
    }

    /// Maximum number of tuples a sampled relation can have.
    pub fn capacity(&self) -> u64 {
        self.domain.size()
    }

    /// Draws a relation with exactly `n` distinct tuples, uniformly at
    /// random from all such relations.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: u64) -> Result<Relation> {
        let indices = sample_distinct(rng, self.domain.size(), n)?;
        let schema: Vec<AttrId> = (0..self.domain.arity()).map(AttrId::from).collect();
        let mut rel = Relation::with_capacity(schema, n as usize)?;
        let mut buf = vec![0u32; self.domain.arity()];
        for idx in indices {
            self.domain.decode_into(idx, &mut buf);
            rel.push_row(&buf)?;
        }
        Ok(rel)
    }

    /// Draws a relation whose size is chosen so that the *maximal* relative
    /// spurious-tuple count `ρ̄ = |domain|/N − 1` equals `rho_bar`
    /// (the Figure 1 parametrisation: `N = Π dᵢ / (1 + ρ̄)`).
    pub fn sample_with_rho_bar<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        rho_bar: f64,
    ) -> Result<Relation> {
        let n = (self.domain.size() as f64 / (1.0 + rho_bar)).round() as u64;
        self.sample(rng, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_relation_has_requested_size_and_distinct_tuples() {
        let model = RandomRelationModel::for_mvd(10, 8, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = model.sample(&mut rng, 100).unwrap();
        assert_eq!(r.len(), 100);
        assert_eq!(r.arity(), 3);
        assert!(r.is_set());
    }

    #[test]
    fn sampled_values_respect_domains() {
        let model = RandomRelationModel::for_mvd(4, 6, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let r = model.sample(&mut rng, 48).unwrap(); // the full domain
        assert_eq!(r.len(), 48);
        for row in r.iter_rows() {
            assert!(row[0] < 4);
            assert!(row[1] < 6);
            assert!(row[2] < 2);
        }
    }

    #[test]
    fn oversampling_is_rejected() {
        let model = RandomRelationModel::degenerate(3, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model.sample(&mut rng, 10).is_err());
        assert_eq!(model.capacity(), 9);
    }

    #[test]
    fn sampling_is_reproducible() {
        let model = RandomRelationModel::degenerate(50, 50).unwrap();
        let a = model.sample(&mut StdRng::seed_from_u64(7), 200).unwrap();
        let b = model.sample(&mut StdRng::seed_from_u64(7), 200).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn rho_bar_parametrisation_matches_figure_1() {
        // N = d_A d_B / (1 + rho).
        let model = RandomRelationModel::degenerate(100, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let r = model.sample_with_rho_bar(&mut rng, 0.1).unwrap();
        let expected = (100.0 * 100.0 / 1.1f64).round() as usize;
        assert_eq!(r.len(), expected);
    }

    #[test]
    fn marginal_counts_are_roughly_balanced_for_dense_samples() {
        // When N = d_A * d_B / 2, each A-value should appear ~d_B/2 times.
        let d = 32u64;
        let model = RandomRelationModel::degenerate(d, d).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let r = model.sample(&mut rng, d * d / 2).unwrap();
        let counts = r
            .group_counts(&ajd_relation::AttrSet::singleton(AttrId(0)))
            .unwrap();
        assert_eq!(counts.num_groups(), d as usize);
        for (_, c) in counts.iter() {
            // Hypergeometric concentration: extremely unlikely to deviate by
            // more than half the mean for these sizes.
            assert!(c as f64 > d as f64 / 4.0);
            assert!((c as f64) < d as f64);
        }
    }
}
