//! Experiment `thm51_ub` — Theorem 5.1: the high-probability upper bound
//! `log(1 + ρ(R,φ)) ≤ I(A;B|C) + ε*(φ,N,δ)` for a single MVD under the
//! random relation model.
//!
//! For each configuration `(d_A = d_B = d, d_C)` we draw relations at two
//! sizes — one meeting the qualifying condition (37) and one deliberately
//! below it — and compare the measured `log(1+ρ)` against the measured
//! conditional mutual information, with and without the `ε*` slack.  The
//! interesting empirical observation (consistent with Figure 1) is that for
//! dense random relations `I(A;B|C)` sits *just below* `log(1+ρ)` — the gap
//! is the vanishing entropy deficit of Theorem 5.2 — which is exactly why
//! Theorem 5.1 needs the additive `ε*` term, and why the ε-inflated bound
//! always holds.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::{fraction_where, Summary};
use ajd_bench::table::{f, Table};
use ajd_bounds::{epsilon_star, thm51_minimum_n, thm51_qualifying_condition, Thm51Params};
use ajd_info::conditional_mutual_information;
use ajd_jointree::Mvd;
use ajd_random::RandomRelationModel;
use ajd_relation::AttrSet;

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn main() {
    let args = ExperimentArgs::from_env();
    let delta = 0.1f64;
    let configs: Vec<(u64, u64)> = if args.quick {
        vec![(16, 1), (16, 2)]
    } else {
        vec![(16, 1), (16, 2), (16, 4), (32, 1), (32, 2)]
    };

    let mvd = Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).expect("C ->> A|B");

    let mut table = Table::new(
        "Theorem 5.1: log(1+rho(phi)) vs I(A;B|C) + eps* (nats)",
        &[
            "d",
            "d_C",
            "N",
            "qualified",
            "log1p_rho",
            "cmi",
            "gap",
            "eps*",
            "raw_viol",
            "bound_viol",
        ],
    );

    for &(d, d_c) in &configs {
        // The qualifying N of condition (37) usually exceeds the domain at
        // these sizes; cap at 90% of the domain so the relation stays lossy.
        let n_qualifying = thm51_minimum_n(d, d, d_c, delta).min(d * d * d_c * 9 / 10);
        let n_small = (d * d * d_c) / 2;
        for &n in &[n_small, n_qualifying] {
            if n == 0 {
                continue;
            }
            let rows = parallel_trials(
                args.trials,
                args.seed ^ (d * 131 + d_c * 7 + n),
                |_, rng| {
                    let model = RandomRelationModel::for_mvd(d, d, d_c).expect("domain");
                    let r = model.sample(rng, n).expect("N within domain");
                    let rho = mvd.loss(&r).expect("mvd loss");
                    let cmi =
                        conditional_mutual_information(&r, &bag(&[0]), &bag(&[1]), &bag(&[2]))
                            .expect("cmi");
                    (rho.ln_1p(), cmi)
                },
            );
            let params = Thm51Params::new(d, d, d_c, n, delta);
            let eps = epsilon_star(&params);
            let qualified = thm51_qualifying_condition(&params);
            let log1ps: Vec<f64> = rows.iter().map(|(l, _)| *l).collect();
            let cmis: Vec<f64> = rows.iter().map(|(_, c)| *c).collect();
            let gaps: Vec<f64> = rows.iter().map(|(l, c)| l - c).collect();
            let raw_viol = fraction_where(&rows, |(l, c)| *l > *c + 1e-9);
            let bound_viol = fraction_where(&rows, |(l, c)| *l > *c + eps);
            table.push_row(vec![
                d.to_string(),
                d_c.to_string(),
                n.to_string(),
                qualified.to_string(),
                f(Summary::of(&log1ps).mean),
                f(Summary::of(&cmis).mean),
                f(Summary::of(&gaps).mean),
                f(eps),
                format!("{raw_viol:.3}"),
                format!("{bound_viol:.3}"),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "thm51_ub");
    println!(
        "Paper's shape: bound_viol must be 0.000 (the eps*-inflated bound of Theorem 5.1 holds);\n\
         the gap column (log(1+rho) - CMI) is small and positive for dense random relations and\n\
         shrinks as N grows - the bare CMI is usually exceeded by a hair (raw_viol near 1.000),\n\
         which is precisely why the theorem needs the additive eps* term. eps* itself is a very\n\
         conservative constant that only vanishes for astronomically large N."
    );
}
