//! Approximate acyclic-schema discovery.
//!
//! The paper is motivated by the schema-discovery problem of Kenig et al.
//! (SIGMOD 2020, reference \[14\]): given a dataset, find an acyclic schema
//! whose J-measure is small, because (by the results reproduced here) a
//! small J-measure certifies a small lower bound on the loss and — under the
//! random relation model — also an upper bound.  This module implements a
//! practical miner:
//!
//! 1. **Chow–Liu tree** ([`SchemaMiner::chow_liu_tree`]): compute the pairwise
//!    mutual information of every attribute pair and take a maximum spanning
//!    tree.  The bags `{Xᵢ, Xⱼ}` of its edges form an acyclic schema whose
//!    J-measure equals `H(Ω) − Σ_nodes H(Xᵢ) ... ` — more usefully, among all
//!    schemas with two-attribute bags structured as a tree it minimises `J`.
//! 2. **Greedy coarsening** ([`SchemaMiner::mine`]): while the J-measure is
//!    above the configured threshold, contract the join-tree edge whose
//!    contraction reduces `J` the most (subject to a bag-size cap).
//!    Contracting edges only ever lowers `J` (the fully-merged single-bag
//!    schema has `J = 0`), so the procedure terminates.
//! 3. **Exhaustive best-MVD search** ([`SchemaMiner::best_mvd`]) for small
//!    arities: enumerate conditioning sets of bounded size and bipartitions
//!    of the remaining attributes, returning the MVD with the smallest
//!    conditional mutual information.

use crate::batch::BatchAnalyzer;
use crate::engine::LossEngine;
use ajd_bounds::j_lower_bound_on_loss;
use ajd_info::{conditional_mutual_information, mutual_information};
use ajd_jointree::{JoinTree, Mvd};
use ajd_relation::{
    AnalysisContext, AttrId, AttrSet, GroupSource, Relation, RelationError, Result,
};
use serde::{Deserialize, Serialize};

/// Configuration of the schema miner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Stop coarsening once `J ≤ j_threshold` (nats).
    pub j_threshold: f64,
    /// Never produce a bag with more than this many attributes
    /// (`usize::MAX` disables the cap).
    pub max_bag_size: usize,
    /// Maximum number of attributes for which [`SchemaMiner::best_mvd`] will
    /// run its exhaustive search.
    pub max_attrs_exhaustive: usize,
    /// Maximum size of the conditioning set explored by
    /// [`SchemaMiner::best_mvd`].
    pub max_lhs_size: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            j_threshold: 1e-9,
            max_bag_size: usize::MAX,
            max_attrs_exhaustive: 14,
            max_lhs_size: 2,
        }
    }
}

/// The result of mining: a join tree, its J-measure, and the loss lower
/// bound that J certifies (Lemma 4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinedSchema {
    /// The discovered join tree.
    pub tree: JoinTree,
    /// Its J-measure with respect to the mined relation, in nats.
    pub j_measure: f64,
    /// The Lemma 4.1 lower bound on the loss implied by that J-measure.
    pub rho_lower_bound: f64,
}

impl MinedSchema {
    /// The bags of the discovered schema.
    pub fn bags(&self) -> &[AttrSet] {
        self.tree.bags()
    }
}

/// Approximate acyclic-schema miner.
#[derive(Debug, Clone, Default)]
pub struct SchemaMiner {
    config: DiscoveryConfig,
}

impl SchemaMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: DiscoveryConfig) -> Self {
        SchemaMiner { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &DiscoveryConfig {
        &self.config
    }

    /// Builds the Chow–Liu join tree of `r`: bags are the attribute pairs of
    /// a maximum-spanning tree of the pairwise mutual-information graph.
    ///
    /// For a single-attribute relation the tree is the single bag `{X}`.
    pub fn chow_liu_tree(&self, r: &Relation) -> Result<JoinTree> {
        // A throwaway context so each singleton marginal is grouped once
        // instead of `n − 1` times across the O(n²) pairwise MIs.
        self.chow_liu_tree_with(&AnalysisContext::new(r))
    }

    /// The Chow–Liu construction over any [`GroupSource`].
    fn chow_liu_tree_with<S: GroupSource>(&self, src: &S) -> Result<JoinTree> {
        if src.is_empty() {
            return Err(RelationError::EmptyInput("relation for schema discovery"));
        }
        let attrs: Vec<AttrId> = src.attrs().iter().collect();
        chow_liu_from_pairwise(&attrs, |x, y| {
            mutual_information(src, &AttrSet::singleton(x), &AttrSet::singleton(y))
        })
    }
    /// Mines an acyclic schema: Chow–Liu tree followed by greedy edge
    /// contraction until the J-measure drops below the configured threshold
    /// (or no admissible contraction remains).
    ///
    /// All candidate scoring runs through one [`BatchAnalyzer`] cache: the
    /// candidate trees of every contraction round share almost all of their
    /// bags and separators, so their J-measures are answered mostly from
    /// cache.  Scoring fans out over the batch's default
    /// [`ThreadBudget`](ajd_relation::ThreadBudget)
    /// (the machine's available parallelism); callers that already
    /// parallelise at a coarser grain — e.g. mining many relations at once —
    /// should pass a `BatchAnalyzer::with_threads(1)` to
    /// [`SchemaMiner::mine_with`] instead of stacking thread pools.
    ///
    /// (A previous revision hardwired `with_threads(1)` here, silently
    /// serialising every mine; the regression test below pins the default
    /// budget to [`BatchAnalyzer::new`]'s.)
    pub fn mine(&self, r: &Relation) -> Result<MinedSchema> {
        self.mine_with(&BatchAnalyzer::new(r))
    }

    /// [`SchemaMiner::mine`] over a caller-supplied [`BatchAnalyzer`],
    /// sharing its cache (and its thread budget) with any other analysis of
    /// the same source — flat or sharded.
    pub fn mine_with<S: ajd_relation::GroupKernel>(
        &self,
        batch: &BatchAnalyzer<S>,
    ) -> Result<MinedSchema> {
        // `BatchAnalyzer`'s engine routes every score through the same
        // context and free functions this method used to call directly, so
        // delegating is bit-identical (the regression test below pins it).
        self.mine_engine(batch)
    }

    /// [`SchemaMiner::mine`] over any [`LossEngine`] — the same Chow–Liu +
    /// greedy-contraction pipeline, scored through the engine's
    /// [`Estimate`](crate::Estimate)-returning measures.
    ///
    /// Passing an exact engine ([`Analyzer`](crate::Analyzer) or
    /// [`BatchAnalyzer`]) reproduces [`SchemaMiner::mine`] bit-for-bit;
    /// passing an [`EstimatedAnalyzer`](crate::EstimatedAnalyzer) mines on
    /// its seeded row sample, trading exactness for sublinear scoring on
    /// large relations (deterministic for a fixed seed).  The mined
    /// `j_measure` / `rho_lower_bound` are then point values of whatever
    /// tier the engine answers from.
    pub fn mine_engine<E: LossEngine>(&self, engine: &E) -> Result<MinedSchema> {
        if engine.relation_is_empty() {
            return Err(RelationError::EmptyInput("relation for schema discovery"));
        }
        let attrs: Vec<AttrId> = engine.relation_attrs().iter().collect();
        let mut tree = chow_liu_from_pairwise(&attrs, |x, y| {
            Ok(engine
                .mutual_information_estimate(&AttrSet::singleton(x), &AttrSet::singleton(y))?
                .value)
        })?;
        let mut j = engine.j_measure_estimate(&tree)?.value;

        while j > self.config.j_threshold && tree.num_edges() > 0 {
            // Score every admissible contraction and keep the one with the
            // smallest resulting J (in parallel when the engine fans out).
            let mut candidates: Vec<JoinTree> = Vec::with_capacity(tree.num_edges());
            for e in 0..tree.num_edges() {
                let (u, v) = tree.edges()[e];
                let merged_size = tree.bag(u).union(tree.bag(v)).len();
                if merged_size > self.config.max_bag_size {
                    continue;
                }
                candidates.push(tree.contract_edge(e)?);
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, cj) in engine
                .j_measures_estimate(&candidates)
                .into_iter()
                .enumerate()
            {
                let cj = cj?.value;
                if best.is_none_or(|(_, bj)| cj < bj) {
                    best = Some((i, cj));
                }
            }
            match best {
                Some((best_idx, next_j)) => {
                    let next_tree = candidates.swap_remove(best_idx);
                    // Contracting can only reduce (or keep) J; guard against
                    // pathological floating-point stalls.
                    if next_j >= j - 1e-15 && next_j > self.config.j_threshold {
                        tree = next_tree;
                        j = next_j;
                        // No improvement is possible below threshold; continue
                        // contracting (J is monotone under contraction) until
                        // edges run out.
                        continue;
                    }
                    tree = next_tree;
                    j = next_j;
                }
                None => break, // every contraction exceeds the bag cap
            }
        }

        Ok(MinedSchema {
            j_measure: j,
            rho_lower_bound: j_lower_bound_on_loss(j.max(0.0)),
            tree,
        })
    }

    /// Exhaustively searches for the MVD `C ↠ A | B` with the smallest
    /// conditional mutual information `I(A;B|C)`.
    ///
    /// The conditioning set ranges over all subsets of size at most
    /// `max_lhs_size`; for each, all bipartitions of the remaining
    /// attributes are scored.  Returns `None` for relations with fewer than
    /// two attributes.  Errors if the relation has more attributes than
    /// `max_attrs_exhaustive`.
    pub fn best_mvd(&self, r: &Relation) -> Result<Option<(Mvd, f64)>> {
        if r.is_empty() {
            return Err(RelationError::EmptyInput("relation for best-MVD search"));
        }
        // One context for the whole search: the four entropy terms of each
        // candidate's CMI recur across bipartitions and conditioning sets,
        // so almost every candidate after the first is pure cache hits.
        let ctx = AnalysisContext::new(r);
        let attrs: Vec<AttrId> = r.attrs().iter().collect();
        let n = attrs.len();
        if n < 2 {
            return Ok(None);
        }
        if n > self.config.max_attrs_exhaustive {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "exhaustive MVD search limited to {} attributes, relation has {n}",
                    self.config.max_attrs_exhaustive
                ),
            });
        }

        let mut best: Option<(Mvd, f64)> = None;
        // Enumerate conditioning sets as bitmasks.
        for lhs_mask in 0u32..(1 << n) {
            let lhs_size = lhs_mask.count_ones() as usize;
            if lhs_size > self.config.max_lhs_size || n - lhs_size < 2 {
                continue;
            }
            let lhs: AttrSet = (0..n)
                .filter(|i| lhs_mask >> i & 1 == 1)
                .map(|i| attrs[i])
                .collect();
            let rest: Vec<AttrId> = (0..n)
                .filter(|i| lhs_mask >> i & 1 == 0)
                .map(|i| attrs[i])
                .collect();
            let k = rest.len();
            // Bipartitions of `rest`: fix rest[0] on the left to avoid the
            // mirror duplicates, then enumerate membership of the others.
            for split in 0u32..(1 << (k - 1)) {
                let mut left = vec![rest[0]];
                let mut right = Vec::new();
                for (bit, &attr) in rest[1..].iter().enumerate() {
                    if split >> bit & 1 == 1 {
                        left.push(attr);
                    } else {
                        right.push(attr);
                    }
                }
                if right.is_empty() {
                    continue;
                }
                let a = AttrSet::from_slice(&left);
                let b = AttrSet::from_slice(&right);
                let cmi = conditional_mutual_information(&ctx, &a, &b, &lhs)?;
                if best.as_ref().is_none_or(|(_, c)| cmi < *c) {
                    best = Some((Mvd::new(lhs.clone(), a, b)?, cmi));
                }
            }
        }
        Ok(best)
    }
}

/// Maximum-spanning-tree (Kruskal) Chow–Liu construction over a caller-
/// supplied pairwise mutual-information oracle.  Shared by the exact
/// [`GroupSource`] path and the [`LossEngine`]-generic miner so both build
/// the identical tree from identical scores.
fn chow_liu_from_pairwise(
    attrs: &[AttrId],
    mut mi: impl FnMut(AttrId, AttrId) -> Result<f64>,
) -> Result<JoinTree> {
    let n = attrs.len();
    if n == 1 {
        return JoinTree::new(vec![AttrSet::singleton(attrs[0])], vec![]);
    }

    // All pairwise mutual informations.
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((mi(attrs[i], attrs[j])?, i, j));
        }
    }
    // Maximum spanning tree (Kruskal with a tiny union-find).
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(n - 1);
    for (_w, i, j) in edges {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
            chosen.push((i, j));
            if chosen.len() == n - 1 {
                break;
            }
        }
    }
    debug_assert_eq!(chosen.len(), n - 1);

    // Bags are the chosen attribute pairs; the schema of a tree of pairs
    // is acyclic, so GYO yields its join tree.
    let bags: Vec<AttrSet> = chosen
        .iter()
        .map(|&(i, j)| AttrSet::from_slice(&[attrs[i], attrs[j]]))
        .collect();
    JoinTree::from_acyclic_schema(&bags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_info::jmeasure::j_measure;
    use ajd_random::generators::{conditional_product_relation, markov_chain_relation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn chow_liu_tree_is_a_valid_join_tree_over_all_attributes() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(1), 5, 6, 400, 0.2, false).unwrap();
        let miner = SchemaMiner::default();
        let t = miner.chow_liu_tree(&r).unwrap();
        assert_eq!(t.attributes(), r.attrs());
        assert!(t.check_running_intersection());
        assert_eq!(t.num_nodes(), 4); // n-1 pair bags
        for b in t.bags() {
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn chow_liu_recovers_markov_chain_structure() {
        // With low noise, consecutive attributes have the highest MI, so the
        // spanning tree should be exactly the path {X0X1, X1X2, X2X3}.
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(5), 4, 8, 2000, 0.05, false).unwrap();
        let miner = SchemaMiner::default();
        let t = miner.chow_liu_tree(&r).unwrap();
        let expected: Vec<AttrSet> = vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])];
        for e in &expected {
            assert!(
                t.bags().contains(e),
                "expected bag {e} in Chow-Liu tree, got {:?}",
                t.bags()
            );
        }
    }

    #[test]
    fn chow_liu_on_single_attribute_relation() {
        let r = Relation::from_rows(vec![AttrId(0)], &[&[0u32][..], &[1][..], &[2][..]]).unwrap();
        let t = SchemaMiner::default().chow_liu_tree(&r).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.bag(0), &AttrSet::singleton(AttrId(0)));
    }

    #[test]
    fn mine_reaches_zero_j_on_lossless_data() {
        // The conditional product satisfies C ->> A|B, so the miner should
        // find a schema with essentially zero J without merging everything.
        let r = conditional_product_relation(5, 4, 3);
        let miner = SchemaMiner::new(DiscoveryConfig {
            j_threshold: 1e-9,
            ..DiscoveryConfig::default()
        });
        let mined = miner.mine(&r).unwrap();
        assert!(mined.j_measure <= 1e-9);
        assert!(mined.rho_lower_bound <= 1e-9);
        assert_eq!(mined.tree.attributes(), r.attrs());
    }

    #[test]
    fn mine_respects_bag_size_cap() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(2), 5, 4, 300, 0.4, false).unwrap();
        let miner = SchemaMiner::new(DiscoveryConfig {
            j_threshold: 0.0,
            max_bag_size: 3,
            ..DiscoveryConfig::default()
        });
        let mined = miner.mine(&r).unwrap();
        for b in mined.bags() {
            assert!(b.len() <= 3, "bag {b} exceeds the cap");
        }
        assert!(mined.tree.check_running_intersection());
    }

    #[test]
    fn mining_decreases_j_relative_to_chow_liu_start() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(9), 5, 5, 500, 0.3, false).unwrap();
        let miner = SchemaMiner::new(DiscoveryConfig {
            j_threshold: 0.05,
            ..DiscoveryConfig::default()
        });
        let start = j_measure(&r, &miner.chow_liu_tree(&r).unwrap()).unwrap();
        let mined = miner.mine(&r).unwrap();
        assert!(mined.j_measure <= start + 1e-12);
    }

    #[test]
    fn best_mvd_finds_the_planted_dependency() {
        // C ->> A | B holds exactly, so the best MVD must have (near-)zero CMI.
        let r = conditional_product_relation(4, 3, 3);
        let miner = SchemaMiner::default();
        let (mvd, cmi) = miner.best_mvd(&r).unwrap().unwrap();
        assert!(cmi.abs() < 1e-9);
        // The planted MVD conditions on C = X2 (or finds another exact one).
        assert!(mvd.attributes() == r.attrs());
    }

    #[test]
    fn best_mvd_handles_edge_cases() {
        let miner = SchemaMiner::default();
        // Single attribute: no MVD exists.
        let r1 = Relation::from_rows(vec![AttrId(0)], &[&[0u32][..], &[1][..]]).unwrap();
        assert!(miner.best_mvd(&r1).unwrap().is_none());
        // Empty relation: error.
        let r0 = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        assert!(miner.best_mvd(&r0).is_err());
        // Too many attributes for the exhaustive search: error.
        let limited = SchemaMiner::new(DiscoveryConfig {
            max_attrs_exhaustive: 2,
            ..DiscoveryConfig::default()
        });
        let r3 = conditional_product_relation(2, 2, 2);
        assert!(limited.best_mvd(&r3).is_err());
    }

    /// Satellite regression: `mine` used to hardwire `with_threads(1)`,
    /// silently serialising candidate scoring.  It must now (a) agree
    /// exactly with an explicitly-constructed default `BatchAnalyzer`, and
    /// (b) inherit that analyzer's default budget, which on a multi-core
    /// host is > 1.
    #[test]
    fn mine_uses_the_default_batch_thread_budget() {
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(13), 5, 5, 600, 0.3, false).unwrap();
        let miner = SchemaMiner::new(DiscoveryConfig {
            j_threshold: 0.1,
            ..DiscoveryConfig::default()
        });

        let batch = BatchAnalyzer::new(&r);
        // The default budget is the machine's available parallelism —
        // strictly greater than one on any multi-core host.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(batch.threads(), cores);
        if cores > 1 {
            assert!(batch.threads() > 1, "multi-core default budget must be > 1");
        }

        // `mine` and `mine_with(default batch)` are the same computation —
        // identical tree, bit-identical J (determinism is independent of
        // the thread budget).
        let via_mine = miner.mine(&r).unwrap();
        let via_batch = miner.mine_with(&batch).unwrap();
        assert_eq!(via_mine.tree.bags(), via_batch.tree.bags());
        assert_eq!(via_mine.tree.edges(), via_batch.tree.edges());
        assert_eq!(via_mine.j_measure.to_bits(), via_batch.j_measure.to_bits());
        assert_eq!(
            via_mine.rho_lower_bound.to_bits(),
            via_batch.rho_lower_bound.to_bits()
        );

        // And both agree with a deliberately serial mine.
        let serial = miner
            .mine_with(&BatchAnalyzer::new(&r).with_threads(1))
            .unwrap();
        assert_eq!(via_mine.tree.bags(), serial.tree.bags());
        assert_eq!(via_mine.j_measure.to_bits(), serial.j_measure.to_bits());
    }

    #[test]
    fn mined_schema_j_certifies_actual_loss_lower_bound() {
        // Whatever schema the miner returns, Lemma 4.1 must hold against the
        // actual loss of that schema.
        let r =
            markov_chain_relation(&mut StdRng::seed_from_u64(21), 4, 6, 400, 0.25, true).unwrap();
        let miner = SchemaMiner::new(DiscoveryConfig {
            j_threshold: 0.2,
            ..DiscoveryConfig::default()
        });
        let mined = miner.mine(&r).unwrap();
        let rho = ajd_jointree::loss_acyclic(&r, &mined.tree).unwrap();
        assert!(mined.rho_lower_bound <= rho + 1e-6);
    }
}
