//! # ajd-relation
//!
//! Relational substrate for the reproduction of *"Quantifying the Loss of
//! Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! The paper works with relation instances `R` over an attribute set
//! `Ω = {X₁,…,Xₙ}`, their projections `R[Y]` for `Y ⊆ Ω`, and the natural
//! join of those projections.  This crate provides exactly that machinery,
//! tuned for the workloads of the paper (dense, dictionary-encoded domains,
//! relations from thousands to millions of tuples):
//!
//! * [`AttrId`] / [`AttrSet`] — attributes and sorted attribute sets with the
//!   usual set algebra (union, intersection, difference).
//! * [`Catalog`] — optional human-readable attribute names and per-attribute
//!   label dictionaries for ingesting labelled data.
//! * [`Relation`] — a **columnar, dictionary-encoded** relation store: each
//!   attribute owns a per-column dictionary (raw value → dense `u32` code)
//!   and a flat code column, while a row-major decoded mirror keeps the
//!   familiar tuple API.  Projection, grouping, deduplication and joins all
//!   run on the integer codes (dense mixed-radix counting or packed-`u64`
//!   hashing — never a heap-allocated key per row).
//! * [`GroupCounts`] / [`GroupIds`] — the two views of a grouping: decoded
//!   multiplicity tables and dense interned ids with per-row labels.
//! * [`join`] — natural joins, semijoins and join-size counting over
//!   remapped dictionary codes.
//! * [`GroupSource`] — the capability trait the measure stack is generic
//!   over: a plain [`Relation`] computes groupings fresh, an
//!   [`AnalysisContext`] memoizes them, and both run the same kernel so the
//!   results are bit-identical.
//! * [`ThreadBudget`] — the single parallelism knob: the grouping kernel
//!   ([`Relation::group_ids_with`]) shards its row scan across a thread
//!   budget and merges chunk results in chunk order, so parallel groupings
//!   are **bit-identical** to serial ones; [`AnalysisContext`] computes its
//!   cache misses under the same budget with per-key single-flight (at most
//!   one thread ever computes a given attribute set).
//! * [`ShardedRelation`] — an ordered list of self-contained
//!   [`RelationShard`]s (each a columnar [`Relation`] with its own
//!   dictionaries) that groups shard-locally and merges per-shard group
//!   tables in shard order, so every grouping — and therefore every measure
//!   in the workspace — is **bit-identical** to the flat relation at any
//!   shard count and any thread budget.  Shards are `Arc`-shared and carry
//!   per-shard group-table caches, so appends are incremental: only the new
//!   shard is ever regrouped.
//! * [`ShardedStore`] — an epoch-snapshot handle over a [`ShardedRelation`]:
//!   readers pin immutable snapshots at one epoch while a writer installs
//!   the next one (copy-on-append, built on `ajd-sync` primitives).
//! * [`hash`] — a small Fx-style hasher used for all residual hashing (the
//!   default SipHash is needlessly slow for short integer keys).
//!
//! Everything is deterministic: group ids follow first-appearance order
//! (regardless of the thread budget) and iteration orders that can affect
//! results (e.g. canonical forms) are explicitly sorted.
//!
//! ## Example
//!
//! ```
//! use ajd_relation::{AttrId, AttrSet, Relation};
//!
//! // R(A,B,C) with three tuples.
//! let a = AttrId(0); let b = AttrId(1); let c = AttrId(2);
//! let r = Relation::from_rows(vec![a, b, c], &[
//!     &[0, 0, 1][..],
//!     &[0, 1, 1][..],
//!     &[1, 0, 0][..],
//! ]).unwrap();
//!
//! // Project onto {A,B} and join back with the projection onto {B,C}.
//! let rab = r.project(&AttrSet::from_slice(&[a, b])).unwrap();
//! let rbc = r.project(&AttrSet::from_slice(&[b, c])).unwrap();
//! let joined = ajd_relation::join::natural_join(&rab, &rbc).unwrap();
//! assert!(joined.len() >= r.len());            // the join may add spurious tuples
//! assert!(r.is_subset_of(&joined));            // but never loses any
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attr;
pub mod catalog;
pub mod context;
pub mod error;
pub mod hash;
pub mod io;
pub mod join;
pub mod parallel;
pub mod relation;
pub mod shard;
pub mod sketch;
pub mod snapshot;

pub use attr::{AttrId, AttrSet};
pub use catalog::{Catalog, ValueDict};
pub use context::{AnalysisContext, CacheStats, GroupKernel, GroupSource};
pub use error::{RelationError, Result};
pub use io::{
    read_delimited, read_delimited_from, read_delimited_sharded, write_delimited,
    write_delimited_to, ReadOptions, ShardPolicy,
};
pub use parallel::ThreadBudget;
pub use relation::{GroupCounts, GroupIds, Relation, RowIter, Value};
pub use shard::{RelationShard, ShardCacheStats, ShardedRelation};
pub use sketch::KmvSketch;
pub use snapshot::ShardedStore;
