//! Shared-computation analysis context.
//!
//! Every information measure in the paper (the entropies of eq. 4, the
//! J-measure of eq. 7, the KL-divergence of Theorem 3.2, the per-MVD
//! conditional mutual informations and losses of eq. 28) reduces to *group
//! counts* of the same relation `R` on various attribute subsets `Y ⊆ Ω`,
//! and every loss computation reduces to *projections* of `R` onto bags.
//! Evaluating many measures — or many candidate join trees, as schema
//! discovery does — therefore recomputes the same groupings over and over.
//!
//! [`AnalysisContext`] is the memoization layer that eliminates that
//! redundancy, in the spirit of the lattice-level entropy caching of Kenig
//! et al. (*Mining Approximate Acyclic Schemes from Relations*, 2019):
//!
//! * a [`GroupCounts`] cache keyed by [`AttrSet`] (marginal multiplicities,
//!   the basis of every entropy);
//! * a [`GroupIds`] cache of **interned group keys**: every distinct
//!   `Y`-projection of a tuple is assigned a dense `u32` id, and every row
//!   of `R` is labelled with its group id.  Downstream algorithms (join-size
//!   message passing, two-way join counting) can then work with dense
//!   integer ids and flat vectors instead of hashing boxed key tuples;
//! * a set-semantic projection cache (`Π_Y(R)` as [`Relation`]s).
//!
//! All three caches are guarded by [`parking_lot::RwLock`], so concurrent
//! analysis threads (see `ajd-core`'s `BatchAnalyzer`) share one context:
//! reads of already-memoized entries do not contend, and a raced miss at
//! worst recomputes a deterministic value.
//!
//! Cached values are produced by exactly the same code paths as the
//! uncached operations on [`Relation`], so every measure computed through a
//! context is **bit-identical** to its uncached counterpart — a property
//! the workspace's tests assert.

use crate::attr::AttrSet;
use crate::error::Result;
use crate::hash::{map_with_capacity, FxHashMap};
use crate::relation::{GroupCounts, Relation, Value};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Interned group keys: a dense renaming of the distinct `Y`-projections of
/// a relation's tuples.
///
/// For a relation `R` with `N` rows and an attribute set `Y`, the distinct
/// projections `Π_Y(R)` are numbered `0..g` in order of first appearance;
/// [`GroupIds::row_ids`] labels every row of `R` with its group id and
/// [`GroupIds::counts`] holds the multiplicity of each group.  This is the
/// same information as [`GroupCounts`], laid out for algorithms that want
/// dense integer ids (vector-indexed messages, per-row co-grouping) instead
/// of hash lookups on boxed key tuples.
#[derive(Debug, Clone)]
pub struct GroupIds {
    attrs: AttrSet,
    row_ids: Vec<u32>,
    counts: Vec<u64>,
}

impl GroupIds {
    fn build(r: &Relation, attrs: &AttrSet) -> Result<Self> {
        let positions = r.attr_positions(attrs)?;
        let mut intern: FxHashMap<Box<[Value]>, u32> = map_with_capacity(r.len().min(1 << 20));
        let mut row_ids = Vec::with_capacity(r.len());
        let mut counts: Vec<u64> = Vec::new();
        let mut buf: Vec<Value> = vec![0; positions.len()];
        for row in r.iter_rows() {
            for (k, &p) in positions.iter().enumerate() {
                buf[k] = row[p];
            }
            // Ids are dense u32s; beyond u32::MAX distinct groups a wrapped
            // id would silently alias unrelated groups, so fail instead.
            let next = u32::try_from(counts.len()).map_err(|_| {
                crate::error::RelationError::CountOverflow(
                    "number of distinct groups exceeds the u32 intern id space",
                )
            })?;
            let id = *intern.entry(buf.clone().into_boxed_slice()).or_insert(next);
            if id == next {
                counts.push(0);
            }
            counts[id as usize] += 1;
            row_ids.push(id);
        }
        Ok(GroupIds {
            attrs: attrs.clone(),
            row_ids,
            counts,
        })
    }

    /// The attribute set the rows are grouped by.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of distinct groups `g = |Π_Y(R)|`.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// The interned group id of every row of the source relation, in row
    /// order (ids are assigned in order of first appearance).
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// Multiplicity of each group, indexed by group id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of grouped rows (the `N` of the relation).
    pub fn total(&self) -> u64 {
        self.row_ids.len() as u64
    }

    /// Maps every group id of this (finer) grouping to the id of the group
    /// it belongs to in a *coarser* grouping of the same relation
    /// (`coarser.attrs() ⊆ self.attrs()`).
    ///
    /// Rows with equal projections onto `self.attrs()` agree on any subset
    /// of those attributes, so any representative row determines the coarse
    /// group; the map is recovered in one linear pass over the two per-row
    /// id vectors.  This is the co-grouping primitive behind the interned
    /// join-size algorithms in `ajd-jointree`.
    ///
    /// Panics if `coarser` does not group by a subset of this grouping's
    /// attributes, or if the two groupings come from relations of different
    /// sizes (programming errors — a silently wrong map would corrupt every
    /// count derived from it).
    pub fn map_to(&self, coarser: &GroupIds) -> Vec<u32> {
        assert!(
            coarser.attrs.is_subset_of(&self.attrs),
            "map_to target must group by a subset of this grouping's attributes"
        );
        assert_eq!(
            self.row_ids.len(),
            coarser.row_ids.len(),
            "map_to requires groupings of the same relation"
        );
        let mut map = vec![0u32; self.num_groups()];
        for (&fine, &coarse) in self.row_ids.iter().zip(&coarser.row_ids) {
            map[fine as usize] = coarse;
        }
        map
    }
}

/// A point-in-time snapshot of a context's cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cache.
    pub hits: u64,
    /// Lookups that had to compute (and then memoize) their value.
    pub misses: u64,
    /// Number of memoized [`GroupCounts`] entries.
    pub group_count_entries: usize,
    /// Number of memoized [`GroupIds`] entries.
    pub group_id_entries: usize,
    /// Number of memoized projection entries.
    pub projection_entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized group counts, interned group ids and projections of one
/// relation — the shared-computation substrate of the measurement stack.
///
/// A context borrows its relation and is cheap to create (empty caches); it
/// pays for itself as soon as two measures — or two candidate join trees —
/// touch the same attribute subset.  It is `Sync`: `ajd-core`'s
/// `BatchAnalyzer` shares one context across `std::thread::scope` workers.
///
/// ```
/// use ajd_relation::{AnalysisContext, AttrId, AttrSet, Relation};
///
/// let r = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[
///     &[0, 0][..], &[0, 1][..], &[1, 0][..],
/// ]).unwrap();
/// let ctx = AnalysisContext::new(&r);
/// let y = AttrSet::singleton(AttrId(0));
/// let first = ctx.group_counts(&y).unwrap();
/// let second = ctx.group_counts(&y).unwrap();      // served from cache
/// assert_eq!(first.num_groups(), second.num_groups());
/// assert_eq!(ctx.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    relation: &'a Relation,
    group_counts: RwLock<FxHashMap<AttrSet, Arc<GroupCounts>>>,
    group_ids: RwLock<FxHashMap<AttrSet, Arc<GroupIds>>>,
    projections: RwLock<FxHashMap<AttrSet, Arc<Relation>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> AnalysisContext<'a> {
    /// Creates an empty context over `r`.
    pub fn new(r: &'a Relation) -> Self {
        AnalysisContext {
            relation: r,
            group_counts: RwLock::new(FxHashMap::default()),
            group_ids: RwLock::new(FxHashMap::default()),
            projections: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The relation this context memoizes computations over.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// Memoized [`Relation::group_counts`]: multiplicities of the distinct
    /// `attrs`-projections of the relation's tuples.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        self.memoized(&self.group_counts, attrs, |r, a| {
            r.group_counts(a).map(Arc::new)
        })
    }

    /// Memoized interned group keys (see [`GroupIds`]) for `attrs`.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        self.memoized(&self.group_ids, attrs, |r, a| {
            GroupIds::build(r, a).map(Arc::new)
        })
    }

    /// Memoized set-semantic projection `Π_attrs(R)`.
    pub fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        self.memoized(&self.projections, attrs, |r, a| {
            r.try_project(a).map(Arc::new)
        })
    }

    /// Snapshot of cache sizes and hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            group_count_entries: self.group_counts.read().len(),
            group_id_entries: self.group_ids.read().len(),
            projection_entries: self.projections.read().len(),
        }
    }

    /// Generic read-mostly memoization: serve from the cache under a read
    /// lock; on a miss, compute outside any lock and insert under a write
    /// lock.  A raced miss recomputes a deterministic value and keeps the
    /// first insertion, so all callers observe the same `Arc`.
    fn memoized<T>(
        &self,
        cache: &RwLock<FxHashMap<AttrSet, Arc<T>>>,
        attrs: &AttrSet,
        compute: impl FnOnce(&Relation, &AttrSet) -> Result<Arc<T>>,
    ) -> Result<Arc<T>> {
        if let Some(hit) = cache.read().get(attrs) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let value = compute(self.relation, attrs)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = cache.write();
        let entry = guard.entry(attrs.clone()).or_insert(value);
        Ok(Arc::clone(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;

    fn sample() -> Relation {
        Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[
                &[0, 0, 0][..],
                &[0, 1, 0][..],
                &[1, 0, 1][..],
                &[1, 1, 1][..],
                &[0, 0, 0][..], // duplicate row: multiset
            ],
        )
        .unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn group_counts_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[0, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let cached = ctx.group_counts(&attrs).unwrap();
            let direct = r.group_counts(&attrs).unwrap();
            assert_eq!(cached.total, direct.total);
            assert_eq!(cached.num_groups(), direct.num_groups());
            for (key, count) in direct.iter() {
                assert_eq!(cached.count_of(key), count);
            }
        }
    }

    #[test]
    fn group_ids_agree_with_group_counts() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[1, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let ids = ctx.group_ids(&attrs).unwrap();
            let counts = ctx.group_counts(&attrs).unwrap();
            assert_eq!(ids.num_groups(), counts.num_groups());
            assert_eq!(ids.total(), counts.total);
            assert_eq!(ids.row_ids().len(), r.len());
            assert_eq!(ids.counts().iter().sum::<u64>(), r.len() as u64);
            // Rows with equal projections share an id; the id's count matches.
            for (row, &id) in r.iter_rows().zip(ids.row_ids()) {
                let positions = r.attr_positions(&attrs).unwrap();
                let key: Vec<Value> = positions.iter().map(|&p| row[p]).collect();
                assert_eq!(ids.counts()[id as usize], counts.count_of(&key));
            }
        }
    }

    #[test]
    fn map_to_recovers_coarser_groups() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let fine = ctx.group_ids(&bag(&[0, 1, 2])).unwrap();
        for coarse_attrs in [bag(&[0]), bag(&[1, 2]), AttrSet::empty()] {
            let coarse = ctx.group_ids(&coarse_attrs).unwrap();
            let map = fine.map_to(&coarse);
            assert_eq!(map.len(), fine.num_groups());
            // Per row: mapping the fine id must land on the row's coarse id.
            for (&f, &c) in fine.row_ids().iter().zip(coarse.row_ids()) {
                assert_eq!(map[f as usize], c);
            }
        }
    }

    #[test]
    fn projections_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1]);
        let cached = ctx.projection(&attrs).unwrap();
        let direct = r.try_project(&attrs).unwrap();
        assert!(cached.set_eq(&direct));
        assert_eq!(cached.len(), direct.len());
    }

    #[test]
    fn caches_are_shared_and_counted() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let a = ctx.group_counts(&bag(&[0])).unwrap();
        let b = ctx.group_counts(&bag(&[0])).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = ctx.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.group_count_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_is_not_cached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        assert!(ctx.group_counts(&bag(&[9])).is_err());
        assert!(ctx.group_ids(&bag(&[9])).is_err());
        assert!(ctx.projection(&bag(&[9])).is_err());
        assert_eq!(ctx.stats().group_count_entries, 0);
    }

    #[test]
    fn concurrent_readers_converge() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let sets: Vec<AttrSet> = vec![bag(&[0]), bag(&[1]), bag(&[0, 1]), bag(&[0, 1, 2])];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for attrs in &sets {
                        let c = ctx.group_counts(attrs).unwrap();
                        assert_eq!(c.total, r.len() as u64);
                        let ids = ctx.group_ids(attrs).unwrap();
                        assert_eq!(ids.num_groups(), c.num_groups());
                    }
                });
            }
        });
        assert_eq!(ctx.stats().group_count_entries, sets.len());
        assert_eq!(ctx.stats().group_id_entries, sets.len());
    }

    #[test]
    fn empty_relation_contexts_work() {
        let r = Relation::new(vec![AttrId(0)]).unwrap();
        let ctx = AnalysisContext::new(&r);
        let ids = ctx.group_ids(&bag(&[0])).unwrap();
        assert_eq!(ids.num_groups(), 0);
        assert_eq!(ids.total(), 0);
        assert_eq!(ctx.projection(&bag(&[0])).unwrap().len(), 0);
    }
}
