//! A minimal blocking client for the line-delimited JSON protocol.
//!
//! [`Client`] wraps one TCP connection: [`Client::request`] writes one
//! frame and reads one response line, in order.  It is deliberately thin —
//! the protocol is plain enough to speak with `nc` — but having a typed
//! client keeps the integration tests and the example honest about what a
//! third-party implementation needs: a socket, a line buffer, and a JSON
//! parser.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to an `ajd-server`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request frame and blocks for its response frame.
    ///
    /// The server answers every line with exactly one line (even protocol
    /// errors come back as error frames), so request/response pairing is
    /// positional.
    pub fn request(&mut self, frame: &Json) -> io::Result<Json> {
        self.request_line(&frame.to_string())
    }

    /// Sends one raw request line (no trailing newline) and blocks for the
    /// response frame.  Useful for testing how the server answers
    /// deliberately malformed lines.
    pub fn request_line(&mut self, line: &str) -> io::Result<Json> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server sent invalid JSON: {e}"),
            )
        })
    }
}
