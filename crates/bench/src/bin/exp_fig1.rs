//! Experiment `fig1` — reproduces **Figure 1** of the paper.
//!
//! Setup (caption of Figure 1): the degenerate random relation model with
//! `d_C = 1`, `d_A = d_B = d`, a fixed target loss `ρ`, and
//! `N = d_A·d_B / (1 + ρ)` tuples drawn uniformly without replacement.  For
//! each `d` we sample relations and plot the resulting mutual information
//! `I(A_S; B_S)` against the reference line `log(1 + ρ)`.  The paper's
//! observation: as the database grows the mutual information approaches
//! `log(1 + ρ)`.
//!
//! Run with `--trials K --seed S --csv DIR --quick`.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::Summary;
use ajd_bench::table::{f, Table};
use ajd_info::mutual_information;
use ajd_random::RandomRelationModel;
use ajd_relation::{AttrId, AttrSet};

fn main() {
    let args = ExperimentArgs::from_env();
    let rho = 0.1f64;
    let reference = rho.ln_1p();
    let ds: Vec<u64> = if args.quick {
        vec![100, 300, 600]
    } else {
        vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    };

    let mut table = Table::new(
        &format!("Figure 1: I(A;B) vs log(1+rho), rho = {rho}, d_C = 1 (values in nats)"),
        &[
            "d",
            "N",
            "trials",
            "mi_mean",
            "mi_std",
            "mi_min",
            "mi_max",
            "log1p_rho",
            "gap_mean",
        ],
    );

    for &d in &ds {
        let n = (d as f64 * d as f64 / (1.0 + rho)).round() as u64;
        let mis = parallel_trials(args.trials, args.seed ^ d, |_, rng| {
            let model = RandomRelationModel::degenerate(d, d).expect("valid domain");
            let r = model.sample(rng, n).expect("N <= d^2");
            mutual_information(
                &r,
                &AttrSet::singleton(AttrId(0)),
                &AttrSet::singleton(AttrId(1)),
            )
            .expect("attributes exist")
        });
        let s = Summary::of(&mis);
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            s.n.to_string(),
            f(s.mean),
            f(s.std),
            f(s.min),
            f(s.max),
            f(reference),
            f(reference - s.mean),
        ]);
    }

    table.emit(args.csv_dir.as_deref(), "fig1");
    println!(
        "Paper's shape: the mutual information concentrates on log(1+rho) = {:.6} as d grows;\n\
         the gap column should shrink towards 0 and the spread (std) should tighten.",
        reference
    );
}
