//! Auxiliary quantities and tail bounds (Section 5.2 and Appendix D).
//!
//! These are the scalar helpers the paper's proofs are built from.  They are
//! exposed publicly because the experiments plot several of them (e.g. the
//! vanishing term `C(d)`), and because having them as named functions makes
//! the bound implementations read like the paper.

/// The vanishing term `C(d) = 2·log(d)/√d` of eq. (45), in nats.
///
/// Proposition 5.4 shows `0 ≤ log d_A − E[H(A_S)] ≤ C(d_B)`.
pub fn c_of_d(d: f64) -> f64 {
    assert!(d >= 1.0, "C(d) is defined for d >= 1");
    2.0 * d.ln() / d.sqrt()
}

/// The rate function `h(t) = t·log(1+t)` of eq. (57).
pub fn h_of_t(t: f64) -> f64 {
    assert!(t >= 0.0, "h(t) is defined for t >= 0");
    t * (1.0 + t).ln()
}

/// The function `g(t) = −t·log t` (continuously extended with `g(0)=0`),
/// used throughout Section 5.2.
pub fn g_of_t(t: f64) -> f64 {
    assert!(t >= 0.0, "g(t) is defined for t >= 0");
    if t == 0.0 {
        0.0
    } else {
        -t * t.ln()
    }
}

/// The functional entropy `Ent(X) = E[X log X] − E[X]·log E[X]` (eq. 53)
/// of an empirical sample of a non-negative random variable.
///
/// Returns 0 for an empty sample or a sample with zero mean.
pub fn functional_entropy(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let e_xlogx = samples
        .iter()
        .map(|&x| {
            assert!(x >= 0.0, "functional entropy requires non-negative samples");
            if x == 0.0 {
                0.0
            } else {
                x * x.ln()
            }
        })
        .sum::<f64>()
        / n;
    e_xlogx - mean * mean.ln()
}

/// Serfling's tail bound (Lemma D.7, simplified form): for a hypergeometric
/// variable with `draws` draws, `P[Y − E[Y] ≥ ε] ≤ exp(−2ε²/draws)`.
pub fn serfling_tail_bound(epsilon: f64, draws: f64) -> f64 {
    assert!(epsilon >= 0.0 && draws > 0.0);
    (-2.0 * epsilon * epsilon / draws).exp().min(1.0)
}

/// Chernoff bound for a Poisson variable (Lemma D.3):
/// `P[X ≥ α·E[X]] ≤ exp(−α·λ)` for `α > 3e`.
///
/// For `α ≤ 3e` the bound is vacuous and 1.0 is returned.
pub fn poisson_tail_bound(alpha: f64, lambda: f64) -> f64 {
    assert!(lambda >= 0.0);
    if alpha <= 3.0 * std::f64::consts::E {
        1.0
    } else {
        (-alpha * lambda).exp().min(1.0)
    }
}

/// Relative Chernoff bound for a binomial mean (Lemma D.2, eq. 342):
/// `P[|mean − p| ≥ ξ·p] ≤ 2·exp(−ξ²·p·n/3)`.
pub fn binomial_relative_chernoff(xi: f64, p: f64, n: f64) -> f64 {
    assert!((0.0..=1.0).contains(&xi));
    assert!((0.0..=1.0).contains(&p));
    assert!(n >= 0.0);
    (2.0 * (-xi * xi * p * n / 3.0).exp()).min(1.0)
}

/// The conclusion predicate of Lemma D.6: `x / log x ≥ y`.
///
/// The paper states the premise as `x ≥ y·log y`; with natural logarithms
/// that premise is not quite sufficient (e.g. `y = 100`, `x = y·ln y` gives
/// `x/ln x ≈ 75 < y`), but the slightly stronger premise `x ≥ 2·y·log y`
/// is, and is what our tests exercise.  The qualifying conditions that rely
/// on this lemma (eq. 40, eq. 37) carry large constant factors, so the
/// distinction does not affect any downstream bound.
pub fn lemma_d6_conclusion(x: f64, y: f64) -> bool {
    assert!(x > 1.0 && y >= std::f64::consts::E);
    x / x.ln() >= y
}

/// The log-sum inequality (Lemma D.8):
/// `Σ aᵢ log(Σaᵢ/Σbᵢ) ≤ Σ aᵢ log(aᵢ/bᵢ)` for non-negative `aᵢ`, positive `bᵢ`.
/// Returns the pair (left-hand side, right-hand side); exposed for tests.
pub fn log_sum_inequality_sides(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len());
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    let lhs = if sa > 0.0 { sa * (sa / sb).ln() } else { 0.0 };
    let rhs = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| {
            assert!(ai >= 0.0 && bi > 0.0);
            if ai > 0.0 {
                ai * (ai / bi).ln()
            } else {
                0.0
            }
        })
        .sum();
    (lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_of_d_is_positive_decreasing_and_vanishing() {
        assert!(c_of_d(4.0) > c_of_d(100.0));
        assert!(c_of_d(100.0) > c_of_d(10_000.0));
        assert!(c_of_d(1e8) < 0.004);
        assert_eq!(c_of_d(1.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn c_of_d_rejects_small_d() {
        c_of_d(0.5);
    }

    #[test]
    fn h_and_g_basic_values() {
        assert_eq!(h_of_t(0.0), 0.0);
        assert!((h_of_t(1.0) - (2.0f64).ln()).abs() < 1e-12);
        assert!(h_of_t(2.0) > h_of_t(1.0));
        assert_eq!(g_of_t(0.0), 0.0);
        assert_eq!(g_of_t(1.0), 0.0);
        assert!(g_of_t(0.5) > 0.0);
        // g is maximised at 1/e.
        let at_max = g_of_t(1.0 / std::f64::consts::E);
        assert!(g_of_t(0.2) < at_max && g_of_t(0.5) < at_max);
    }

    #[test]
    fn functional_entropy_zero_for_constant_samples() {
        assert!(functional_entropy(&[2.0, 2.0, 2.0]).abs() < 1e-12);
        assert_eq!(functional_entropy(&[]), 0.0);
        assert_eq!(functional_entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn functional_entropy_nonnegative_and_grows_with_spread() {
        let tight = functional_entropy(&[0.9, 1.0, 1.1]);
        let wide = functional_entropy(&[0.1, 1.0, 1.9]);
        assert!(tight >= 0.0);
        assert!(wide > tight);
    }

    #[test]
    fn functional_entropy_matches_hand_computation() {
        // samples {1, 3}: E[XlnX] = (0 + 3 ln 3)/2, E[X]=2, Ent = 1.5 ln3 - 2 ln2.
        let e = functional_entropy(&[1.0, 3.0]);
        let expected = 1.5 * (3.0f64).ln() - 2.0 * (2.0f64).ln();
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn serfling_bound_behaviour() {
        assert!((serfling_tail_bound(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!(serfling_tail_bound(10.0, 10.0) < 1e-8);
        assert!(serfling_tail_bound(1.0, 100.0) > serfling_tail_bound(1.0, 10.0));
    }

    #[test]
    fn poisson_tail_bound_behaviour() {
        assert_eq!(poisson_tail_bound(2.0, 10.0), 1.0); // below 3e: vacuous
        assert!(poisson_tail_bound(10.0, 5.0) < 1e-20);
        assert!(poisson_tail_bound(9.0, 1.0) < poisson_tail_bound(9.0, 0.1));
    }

    #[test]
    fn binomial_chernoff_behaviour() {
        assert_eq!(binomial_relative_chernoff(0.0, 0.5, 100.0), 1.0);
        assert!(binomial_relative_chernoff(0.5, 0.5, 1000.0) < 1e-8);
    }

    #[test]
    fn lemma_d6_holds_on_the_strengthened_premise() {
        for y in [3.0f64, 10.0, 100.0, 1e4, 1e8] {
            let x = 2.0 * y * y.ln();
            assert!(lemma_d6_conclusion(x, y));
            assert!(lemma_d6_conclusion(x * 10.0, y));
        }
    }

    #[test]
    fn log_sum_inequality_holds() {
        let a = [0.2, 0.5, 0.3];
        let b = [0.3, 0.3, 0.4];
        let (lhs, rhs) = log_sum_inequality_sides(&a, &b);
        assert!(lhs <= rhs + 1e-12);
        // Equality when a and b are proportional.
        let (l2, r2) = log_sum_inequality_sides(&[0.2, 0.4], &[0.1, 0.2]);
        assert!((l2 - r2).abs() < 1e-12);
        // Zero entries in a are fine.
        let (l3, r3) = log_sum_inequality_sides(&[0.0, 1.0], &[0.5, 0.5]);
        assert!(l3 <= r3 + 1e-12);
    }
}
