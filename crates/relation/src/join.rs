//! Natural joins, semijoins and join cardinality.
//!
//! The paper's central combinatorial quantity is the size of the acyclic
//! join `|⋈ᵢ R[Ωᵢ]|`, from which the relative number of spurious tuples
//! `ρ(R,S) = (|⋈ᵢ R[Ωᵢ]| − |R|)/|R|` (eq. 1) is computed.  This module
//! provides the generic relational operators:
//!
//! * [`natural_join`] — classic build/probe hash join of two relations on
//!   their shared attributes.
//! * [`natural_join_all`] — left-to-right multiway join (used as the
//!   *materialising baseline* in benchmarks and tests).
//! * [`semijoin`] — `R ⋉ S`, used by Yannakakis-style processing.
//! * [`count_natural_join`] — cardinality of a two-way join without
//!   materialising the output.
//!
//! The asymptotically better way to compute the size of an *acyclic* join is
//! message passing over the join tree; that lives in `ajd-jointree`
//! (`count_acyclic_join`) because it needs the join-tree type, and is
//! validated against [`natural_join_all`] in tests.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap};
use crate::relation::{Relation, Value};

/// Computes the natural join `left ⋈ right` on their shared attributes.
///
/// If the relations share no attribute the result is the Cartesian product.
/// The output schema is `left`'s columns followed by `right`'s non-shared
/// columns.  Output rows are **not** deduplicated (joining two sets always
/// yields a set, so no deduplication is needed in that case).
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_key_pos = left.attr_positions(&shared)?;
    let right_key_pos = right.attr_positions(&shared)?;

    // Probe the smaller side? We always build on `right` for output-order
    // stability; the paper's workloads have similarly-sized projections.
    let right_extra: Vec<AttrId> = right
        .schema()
        .iter()
        .copied()
        .filter(|a| !shared.contains(*a))
        .collect();
    let right_extra_pos: Vec<usize> = right_extra
        .iter()
        .map(|&a| right.attr_pos(a).expect("attribute from own schema"))
        .collect();

    let mut out_schema: Vec<AttrId> = left.schema().to_vec();
    out_schema.extend_from_slice(&right_extra);
    let mut out = Relation::new(out_schema)?;

    // Build: shared-key → indices of matching right rows.
    let mut build: FxHashMap<Box<[Value]>, Vec<u32>> = map_with_capacity(right.len());
    let mut key = vec![0u32; shared.len()];
    for (i, row) in right.iter_rows().enumerate() {
        for (k, &p) in right_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        build
            .entry(key.clone().into_boxed_slice())
            .or_default()
            .push(i as u32);
    }

    // Probe.
    let mut out_row = vec![0u32; left.arity() + right_extra.len()];
    for lrow in left.iter_rows() {
        for (k, &p) in left_key_pos.iter().enumerate() {
            key[k] = lrow[p];
        }
        if let Some(matches) = build.get(key.as_slice()) {
            out_row[..left.arity()].copy_from_slice(lrow);
            for &ri in matches {
                let rrow = right.row(ri as usize);
                for (k, &p) in right_extra_pos.iter().enumerate() {
                    out_row[left.arity() + k] = rrow[p];
                }
                out.push_row(&out_row)?;
            }
        }
    }
    Ok(out)
}

/// Counts `|left ⋈ right|` without materialising the join output.
pub fn count_natural_join(left: &Relation, right: &Relation) -> Result<u64> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_key_pos = left.attr_positions(&shared)?;
    let right_key_pos = right.attr_positions(&shared)?;

    let mut build: FxHashMap<Box<[Value]>, u64> = map_with_capacity(right.len());
    let mut key = vec![0u32; shared.len()];
    for row in right.iter_rows() {
        for (k, &p) in right_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        *build.entry(key.clone().into_boxed_slice()).or_insert(0) += 1;
    }
    let mut total: u64 = 0;
    for row in left.iter_rows() {
        for (k, &p) in left_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        if let Some(&c) = build.get(key.as_slice()) {
            total += c;
        }
    }
    Ok(total)
}

/// Joins a sequence of relations left to right: `r₁ ⋈ r₂ ⋈ … ⋈ r_k`.
///
/// This is the *materialising baseline* used to validate the join-tree based
/// counting; for cyclic join orders intermediate results can explode, which
/// is exactly the behaviour the ablation benchmark demonstrates.
pub fn natural_join_all(relations: &[Relation]) -> Result<Relation> {
    let mut iter = relations.iter();
    let first = iter.next().ok_or(RelationError::EmptyInput(
        "natural_join_all of zero relations",
    ))?;
    let mut acc = first.clone();
    for r in iter {
        acc = natural_join(&acc, r)?;
    }
    Ok(acc)
}

/// Computes the semijoin `left ⋉ right`: the tuples of `left` that agree
/// with at least one tuple of `right` on their shared attributes.
pub fn semijoin(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_key_pos = left.attr_positions(&shared)?;
    let right_key_pos = right.attr_positions(&shared)?;

    let mut keys = set_with_capacity(right.len());
    let mut key = vec![0u32; shared.len()];
    for row in right.iter_rows() {
        for (k, &p) in right_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        keys.insert(key.clone().into_boxed_slice());
    }

    let mut out = Relation::new(left.schema().to_vec())?;
    for row in left.iter_rows() {
        for (k, &p) in left_key_pos.iter().enumerate() {
            key[k] = row[p];
        }
        if keys.contains(key.as_slice()) {
            out.push_row(row)?;
        }
    }
    Ok(out)
}

/// Decomposes `r` onto a database schema: returns `[Π_{Ω₁}(R), …, Π_{Ω_m}(R)]`.
pub fn decompose(r: &Relation, schema: &[AttrSet]) -> Result<Vec<Relation>> {
    schema.iter().map(|bag| r.try_project(bag)).collect()
}

/// Computes the *loss* of a database schema with respect to `r`:
/// `(|⋈ᵢ Π_{Ωᵢ}(R)| − |R|) / |R|` — eq. (1) of the paper — by fully
/// materialising the join.  Prefer the join-tree counting in `ajd-jointree`
/// for acyclic schemas; this function is the reference implementation.
pub fn loss_materialized(r: &Relation, schema: &[AttrSet]) -> Result<f64> {
    if r.is_empty() {
        return Err(RelationError::EmptyInput("relation for loss computation"));
    }
    let projections = decompose(r, schema)?;
    let joined = natural_join_all(&projections)?;
    Ok((joined.len() as f64 - r.len() as f64) / r.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[Value]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    #[test]
    fn join_on_shared_attribute() {
        // R(A,B) ⋈ S(B,C)
        let r = rel(&[0, 1], &[&[1, 10], &[2, 10], &[3, 20]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 200], &[30, 300]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.attrs(), AttrSet::from_ids([0, 1, 2]));
        assert_eq!(j.len(), 4); // (1,10)x2 + (2,10)x2
        assert!(j.contains_row(&[1, 10, 100]));
        assert!(j.contains_row(&[2, 10, 200]));
        assert!(!j.contains_row(&[3, 20, 300]));
        assert_eq!(count_natural_join(&r, &s).unwrap(), 4);
    }

    #[test]
    fn join_without_shared_attributes_is_cartesian_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8], &[9]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(count_natural_join(&r, &s).unwrap(), 6);
    }

    #[test]
    fn join_with_identical_schemas_is_intersection() {
        let r = rel(&[0, 1], &[&[1, 1], &[2, 2]]);
        let s = rel(&[0, 1], &[&[2, 2], &[3, 3]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[2, 2]));
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[2, 30]]);
        let s = rel(&[1, 2], &[&[10, 5], &[20, 6], &[20, 7]]);
        let a = natural_join(&r, &s).unwrap();
        let b = natural_join(&s, &r).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn multiway_join_reconstructs_lossless_decomposition() {
        // R(A,B,C) that satisfies the MVD A ->> B | C  (so lossless).
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([0, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(joined.set_eq(&r));
        assert_eq!(loss_materialized(&r, &schema).unwrap(), 0.0);
    }

    #[test]
    fn lossy_decomposition_produces_spurious_tuples() {
        // Example 4.1: a bijection between A and B; schema {{A},{B}}.
        let n = 5u32;
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        let rho = loss_materialized(&r, &schema).unwrap();
        assert!((rho - (n as f64 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn join_always_contains_original_relation() {
        let r = rel(&[0, 1, 2], &[&[0, 1, 2], &[0, 2, 1], &[1, 1, 1]]);
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(r.is_subset_of(&joined));
        assert!(joined.len() >= r.len());
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&[1], &[&[10], &[30]]);
        let sj = semijoin(&r, &s).unwrap();
        assert_eq!(sj.len(), 2);
        assert!(sj.contains_row(&[1, 10]));
        assert!(sj.contains_row(&[3, 30]));
        assert_eq!(sj.schema(), r.schema());
    }

    #[test]
    fn join_all_of_nothing_is_an_error() {
        assert!(natural_join_all(&[]).is_err());
    }

    #[test]
    fn loss_of_empty_relation_is_an_error() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        assert!(loss_materialized(&r, &schema).is_err());
    }

    #[test]
    fn count_matches_materialised_join_size() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]);
        let s = rel(&[1, 2], &[&[1, 9], &[1, 8], &[2, 7], &[4, 6]]);
        assert_eq!(
            count_natural_join(&r, &s).unwrap(),
            natural_join(&r, &s).unwrap().len() as u64
        );
    }
}
