//! Ingesting delimited text data into dictionary-encoded relations.
//!
//! Real datasets arrive as CSV/TSV-like text.  [`read_delimited`] parses
//! in-memory text into a [`Catalog`] (attribute names from the header, one
//! value dictionary per attribute) and a [`Relation`] of dictionary codes,
//! which is the representation every analysis in this workspace operates on;
//! [`read_delimited_from`] does the same for a file on disk, **streaming**
//! line by line through a `BufReader` straight into [`Relation::push_row`]
//! so large datasets never need to be slurped into one string first.
//! [`read_delimited_sharded`] streams the same way but cuts the rows into a
//! [`ShardedRelation`] under a [`ShardPolicy`], so an input larger than one
//! flat buffer should hold lands directly in shard-local storage — no flat
//! row buffer is ever built (`distinct` reads are the one exception: global
//! dedup keeps an in-memory set of the distinct rows, see
//! [`read_delimited_sharded`]).  [`write_delimited`] renders a relation
//! back to text using a catalog, and [`write_delimited_to`] streams it to a
//! file.
//!
//! Degenerate inputs are well-formed, not errors: a header-only input
//! yields the empty relation over the header's schema, and an entirely
//! empty input yields the empty relation over the empty schema — the same
//! answers for the flat and the sharded reader (pinned by regression
//! tests).
//!
//! The parser is deliberately small: one character delimiter, no quoting, no
//! escaping — sufficient for the synthetic and benchmark datasets used here.
//! Anything fancier should be converted externally first.

use crate::catalog::Catalog;
use crate::error::{RelationError, Result};
use crate::hash::FxHashSet;
use crate::relation::{Relation, Value};
use crate::shard::ShardedRelation;
use std::borrow::Cow;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as IoWrite};
use std::path::Path;

/// Options for [`read_delimited`] / [`read_delimited_from`].
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Field delimiter (`,` for CSV, `\t` for TSV).
    pub delimiter: char,
    /// Whether the first non-empty line is a header of attribute names.
    /// Without a header, attributes are named `X0, X1, …`.
    pub has_header: bool,
    /// Whether duplicate rows should be dropped (set semantics).
    pub distinct: bool,
    /// Whether leading/trailing whitespace of each field is trimmed.
    pub trim: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            delimiter: ',',
            has_header: true,
            distinct: false,
            trim: true,
        }
    }
}

/// How [`read_delimited_sharded`] cuts the streamed rows into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Cut a new shard after every `n` ingested rows (clamped to at least
    /// one row per shard; the final shard holds the remainder).  With
    /// `distinct` reads, only *kept* rows count towards the quota.
    RowCount(usize),
}

impl ShardPolicy {
    /// Rows each full shard holds under this policy.
    fn rows_per_shard(self) -> usize {
        match self {
            ShardPolicy::RowCount(n) => n.max(1),
        }
    }
}

/// Where encoded rows land: the flat and sharded readers share the whole
/// line-splitting / catalog-encoding pipeline of [`read_lines`] and differ
/// only in this sink.
trait RowSink {
    /// The finished product ([`Relation`] or [`ShardedRelation`]).
    type Out;

    /// Called exactly once, as soon as the schema (header or positional
    /// names) is known — also for inputs with no data rows, so degenerate
    /// inputs still produce a well-formed empty result.
    fn init(&mut self, schema: Vec<crate::AttrId>) -> Result<()>;

    /// One encoded data row.
    fn push(&mut self, row: &[Value]) -> Result<()>;

    /// Finishes the build (flushing any partial shard).
    fn finish(self) -> Result<Self::Out>;
}

/// Sink of the flat readers: one [`Relation`], optional post-hoc dedup.
struct FlatSink {
    distinct: bool,
    relation: Option<Relation>,
}

impl FlatSink {
    fn new(distinct: bool) -> Self {
        FlatSink {
            distinct,
            relation: None,
        }
    }
}

impl RowSink for FlatSink {
    type Out = Relation;

    fn init(&mut self, schema: Vec<crate::AttrId>) -> Result<()> {
        self.relation = Some(Relation::new(schema)?);
        Ok(())
    }

    fn push(&mut self, row: &[Value]) -> Result<()> {
        self.relation
            .as_mut()
            .expect("init runs before the first row")
            .push_row(row)
    }

    fn finish(self) -> Result<Relation> {
        let relation = self.relation.expect("init runs even for empty input");
        Ok(if self.distinct {
            relation.distinct()
        } else {
            relation
        })
    }
}

/// Sink of the sharded reader: rows accumulate in a current shard that is
/// sealed into the [`ShardedRelation`] whenever the policy quota fills.
/// `distinct` dedups **streaming** (first occurrence kept, like the flat
/// reader's post-hoc dedup) so duplicate rows never inflate a shard.
struct ShardedSink {
    distinct: bool,
    rows_per_shard: usize,
    schema: Vec<crate::AttrId>,
    seen: FxHashSet<Box<[Value]>>,
    current: Option<Relation>,
    out: Option<ShardedRelation>,
}

impl ShardedSink {
    fn new(distinct: bool, policy: ShardPolicy) -> Self {
        ShardedSink {
            distinct,
            rows_per_shard: policy.rows_per_shard(),
            schema: Vec::new(),
            seen: FxHashSet::default(),
            current: None,
            out: None,
        }
    }
}

impl RowSink for ShardedSink {
    type Out = ShardedRelation;

    fn init(&mut self, schema: Vec<crate::AttrId>) -> Result<()> {
        self.out = Some(ShardedRelation::new(schema.clone())?);
        self.schema = schema;
        Ok(())
    }

    fn push(&mut self, row: &[Value]) -> Result<()> {
        if self.distinct {
            // Probe before boxing: a duplicate row (the common case on
            // highly-duplicated streams) must not cost a heap allocation.
            if self.seen.contains(row) {
                return Ok(());
            }
            self.seen.insert(row.to_vec().into_boxed_slice());
        }
        if self.current.is_none() {
            self.current = Some(Relation::with_capacity(
                self.schema.clone(),
                self.rows_per_shard,
            )?);
        }
        let current = self.current.as_mut().expect("just installed above");
        current.push_row(row)?;
        if current.len() >= self.rows_per_shard {
            let full = self.current.take().expect("just pushed into it");
            self.out
                .as_mut()
                .expect("init runs before the first row")
                .append_shard(full)?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<ShardedRelation> {
        let mut out = self.out.expect("init runs even for empty input");
        if let Some(tail) = self.current.take() {
            out.append_shard(tail)?;
        }
        Ok(out)
    }
}

/// Converts an I/O error into the crate error type, recording the path.
fn io_error(path: &Path, err: std::io::Error) -> RelationError {
    RelationError::Io {
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}

/// Wraps a line iterator so that **only the final line** sheds a single
/// trailing `'\r'`.
///
/// `str::lines` / `BufRead::lines` consume `\r\n` pairs, so an interior
/// line can only end in `'\r'` if that `'\r'` is field data (e.g. the
/// bytes `b"x\r\r\n"` are the field `x\r`) — stripping there would corrupt
/// it.  The one place a *line-ending* `'\r'` survives the line splitters
/// is a CRLF file whose final line hits EOF without a `'\n'`; that is the
/// only line this adapter touches.
fn strip_final_carriage_return<'s, I>(lines: I) -> impl Iterator<Item = Result<Cow<'s, str>>>
where
    I: Iterator<Item = Result<Cow<'s, str>>>,
{
    let mut lines = lines.peekable();
    std::iter::from_fn(move || {
        let line = lines.next()?;
        let is_last = lines.peek().is_none();
        Some(line.map(|l| {
            if is_last && l.ends_with('\r') {
                // '\r' is one byte, so the slice boundary is valid.
                match l {
                    Cow::Borrowed(s) => Cow::Borrowed(&s[..s.len() - 1]),
                    Cow::Owned(mut s) => {
                        s.pop();
                        Cow::Owned(s)
                    }
                }
            } else {
                l
            }
        }))
    })
}

/// The streaming core shared by every reader (in-memory, file-based, flat,
/// sharded): pulls lines one at a time, builds the catalog from the first
/// non-empty line (or positional names), and pushes every encoded data row
/// straight into the [`RowSink`].
///
/// Inputs with no data rows are not errors: a header-only input initialises
/// the sink with the header's schema, and an entirely empty input
/// initialises it with the empty schema — either way the sink finishes into
/// a well-formed empty relation.
///
/// Lines arrive as `Cow<str>` so the in-memory reader lends borrowed
/// slices (no per-line copy) while the file reader hands over the owned
/// `String`s its `BufReader` produces.
fn read_lines<'s, I, K>(lines: I, options: ReadOptions, mut sink: K) -> Result<(Catalog, K::Out)>
where
    I: Iterator<Item = Result<Cow<'s, str>>>,
    K: RowSink,
{
    let mut lines = strip_final_carriage_return(lines).filter(|l| match l {
        Ok(l) => !l.trim().is_empty(),
        Err(_) => true,
    });

    let split = |line: &str| -> Vec<String> {
        line.split(options.delimiter)
            .map(|f| {
                if options.trim {
                    f.trim().to_owned()
                } else {
                    f.to_owned()
                }
            })
            .collect()
    };

    let Some(first) = lines.next().transpose()? else {
        // No lines at all: nothing declares a schema, so the well-formed
        // result is the empty relation over the empty schema.
        sink.init(Vec::new())?;
        return Ok((Catalog::new(), sink.finish()?));
    };
    let first_fields = split(&first);
    if first_fields.iter().any(String::is_empty) {
        return Err(RelationError::EmptyInput("empty field in first row"));
    }

    let (mut catalog, mut pending_first_row): (Catalog, Option<Vec<String>>) = if options.has_header
    {
        (
            Catalog::with_attributes(first_fields.iter().map(String::as_str))?,
            None,
        )
    } else {
        let names: Vec<String> = (0..first_fields.len()).map(|i| format!("X{i}")).collect();
        (
            Catalog::with_attributes(names.iter().map(String::as_str))?,
            Some(first_fields),
        )
    };

    let arity = catalog.arity();
    let schema: Vec<crate::AttrId> = (0..arity).map(crate::AttrId::from).collect();
    sink.init(schema)?;
    let push = |catalog: &mut Catalog, sink: &mut K, fields: &[String]| -> Result<()> {
        if fields.len() != arity {
            return Err(RelationError::ArityMismatch {
                expected: arity,
                got: fields.len(),
            });
        }
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        let row = catalog.encode_row(&refs)?;
        sink.push(&row)
    };

    if let Some(fields) = pending_first_row.take() {
        push(&mut catalog, &mut sink, &fields)?;
    }
    for line in lines {
        let fields = split(&line?);
        push(&mut catalog, &mut sink, &fields)?;
    }

    Ok((catalog, sink.finish()?))
}

/// Parses delimited text into a catalog and a dictionary-encoded relation.
///
/// Empty lines are skipped.  Every data row must have exactly as many fields
/// as the header (or as the first data row when there is no header).  A
/// header-only input yields the empty relation over the header's schema; an
/// entirely empty input yields the empty relation over the empty schema.
pub fn read_delimited(text: &str, options: ReadOptions) -> Result<(Catalog, Relation)> {
    read_lines(
        text.lines().map(|l| Ok(Cow::Borrowed(l))),
        options,
        FlatSink::new(options.distinct),
    )
}

/// Reads a delimited file into a catalog and a dictionary-encoded relation,
/// streaming line by line through a `BufReader` (the file is never held in
/// memory as a whole).
///
/// I/O failures surface as [`RelationError::Io`]; parse failures are the
/// same errors [`read_delimited`] produces, and degenerate inputs (empty
/// file, header-only file) yield the same well-formed empty relations.
pub fn read_delimited_from<P: AsRef<Path>>(
    path: P,
    options: ReadOptions,
) -> Result<(Catalog, Relation)> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|e| io_error(path, e))?;
    let reader = BufReader::new(file);
    read_lines(
        reader
            .lines()
            .map(|l| l.map(Cow::Owned).map_err(|e| io_error(path, e))),
        options,
        FlatSink::new(options.distinct),
    )
}

/// Reads a delimited file straight into a [`ShardedRelation`], streaming
/// line by line and cutting shards under the given [`ShardPolicy`] — the
/// ingestion path for inputs that should never be materialised as one flat
/// buffer.
///
/// The result is row-for-row (and dictionary-for-dictionary) equivalent to
/// [`read_delimited_from`] followed by [`Relation::into_shards`]: collecting
/// the shards reproduces the flat read exactly, and every grouping over the
/// sharded relation is bit-identical to the flat one.
///
/// `options.distinct` dedups during the stream (first occurrence kept), so
/// only kept rows count towards the shard quota.  Global dedup is
/// inherently global state: the reader keeps one in-memory set of the
/// distinct rows seen so far (O(distinct rows × arity)).  For streams whose
/// *distinct* tuples exceed memory, read with `distinct: false` and dedup
/// analytically instead ([`crate::ShardedRelation::distinct`], or grouping,
/// which never materialises duplicate rows).
pub fn read_delimited_sharded<P: AsRef<Path>>(
    path: P,
    options: ReadOptions,
    policy: ShardPolicy,
) -> Result<(Catalog, ShardedRelation)> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|e| io_error(path, e))?;
    let reader = BufReader::new(file);
    read_lines(
        reader
            .lines()
            .map(|l| l.map(Cow::Owned).map_err(|e| io_error(path, e))),
        options,
        ShardedSink::new(options.distinct, policy),
    )
}

/// Renders one row through the catalog, falling back to numeric codes for
/// values without a label.
fn render_row(catalog: &Catalog, relation: &Relation, row: &[u32], delimiter: char) -> String {
    let rendered: Vec<String> = relation
        .schema()
        .iter()
        .zip(row)
        .map(|(&a, &v)| {
            catalog
                .value_label(a, v)
                .map(str::to_owned)
                .unwrap_or_else(|| v.to_string())
        })
        .collect();
    rendered.join(&delimiter.to_string())
}

/// Renders a relation back to delimited text using the catalog's labels.
///
/// Values without a label (codes produced outside the catalog) are rendered
/// as their numeric code.
pub fn write_delimited(catalog: &Catalog, relation: &Relation, delimiter: char) -> Result<String> {
    let mut out = String::new();
    let names: Vec<&str> = relation
        .schema()
        .iter()
        .map(|&a| catalog.name(a))
        .collect::<Result<_>>()?;
    let _ = writeln!(out, "{}", names.join(&delimiter.to_string()));
    for row in relation.iter_rows() {
        let _ = writeln!(out, "{}", render_row(catalog, relation, row, delimiter));
    }
    Ok(out)
}

/// Streams a relation to a delimited file through a `BufWriter`, row by row
/// (the counterpart of [`read_delimited_from`]).
///
/// I/O failures surface as [`RelationError::Io`].
pub fn write_delimited_to<P: AsRef<Path>>(
    path: P,
    catalog: &Catalog,
    relation: &Relation,
    delimiter: char,
) -> Result<()> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|e| io_error(path, e))?;
    let mut writer = BufWriter::new(file);
    let names: Vec<&str> = relation
        .schema()
        .iter()
        .map(|&a| catalog.name(a))
        .collect::<Result<_>>()?;
    writeln!(writer, "{}", names.join(&delimiter.to_string())).map_err(|e| io_error(path, e))?;
    for row in relation.iter_rows() {
        writeln!(writer, "{}", render_row(catalog, relation, row, delimiter))
            .map_err(|e| io_error(path, e))?;
    }
    writer.flush().map_err(|e| io_error(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrId;

    const SAMPLE: &str = "\
city,country,continent
haifa,israel,asia
seattle,usa,america
haifa,israel,asia
paris,france,europe
";

    /// A scratch file path unique to this process and test.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ajd_io_test_{}_{tag}.csv", std::process::id()))
    }

    #[test]
    fn read_with_header_builds_catalog_and_relation() {
        let (catalog, r) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        assert_eq!(catalog.arity(), 3);
        assert_eq!(catalog.attr("country").unwrap(), AttrId(1));
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
        // haifa row appears twice (no dedup by default).
        assert!(!r.is_set());
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("haifa"));
    }

    #[test]
    fn read_distinct_drops_duplicates() {
        let (_c, r) = read_delimited(
            SAMPLE,
            ReadOptions {
                distinct: true,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.is_set());
    }

    #[test]
    fn read_without_header_names_attributes_positionally() {
        let text = "1\t2\n3\t4\n";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                delimiter: '\t',
                has_header: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog.name(AttrId(0)).unwrap(), "X0");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let text = "a,b\n1,2\n3\n";
        assert!(read_delimited(text, ReadOptions::default()).is_err());
    }

    /// Regression (degenerate inputs): an entirely empty input — no header,
    /// no rows — is a well-formed empty relation over the empty schema, not
    /// an error, for the in-memory, file and sharded readers alike.
    #[test]
    fn empty_input_yields_empty_relation() {
        for text in ["", "\n\n", "   \n"] {
            let (catalog, r) = read_delimited(text, ReadOptions::default()).unwrap();
            assert_eq!(catalog.arity(), 0);
            assert_eq!(r.arity(), 0);
            assert!(r.is_empty());

            let path = temp_path("empty_input");
            std::fs::write(&path, text).unwrap();
            let (catalog_f, r_f) = read_delimited_from(&path, ReadOptions::default()).unwrap();
            assert_eq!(catalog_f.arity(), 0);
            assert!(r_f.is_empty());
            let (catalog_s, s) =
                read_delimited_sharded(&path, ReadOptions::default(), ShardPolicy::RowCount(2))
                    .unwrap();
            assert_eq!(catalog_s.arity(), 0);
            assert!(s.is_empty());
            assert_eq!(s.num_shards(), 0);
            assert!(s.collect().unwrap().is_empty());
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Regression (degenerate inputs): a header-only input declares a schema
    /// and yields the empty relation **over that schema** — again for all
    /// three readers, with or without `distinct`.
    #[test]
    fn header_only_input_yields_empty_relation_over_the_declared_schema() {
        for text in ["city,country\n", "city,country", "city,country\r\n\n"] {
            for distinct in [false, true] {
                let options = ReadOptions {
                    distinct,
                    ..ReadOptions::default()
                };
                let (catalog, r) = read_delimited(text, options).unwrap();
                assert_eq!(catalog.arity(), 2);
                assert_eq!(catalog.attr("country").unwrap(), AttrId(1));
                assert_eq!(r.arity(), 2);
                assert!(r.is_empty());

                let path = temp_path("header_only");
                std::fs::write(&path, text).unwrap();
                let (catalog_f, r_f) = read_delimited_from(&path, options).unwrap();
                assert_eq!(catalog_f.arity(), 2);
                assert!(r_f.is_empty());
                assert_eq!(r_f.arity(), 2);
                let (catalog_s, s) =
                    read_delimited_sharded(&path, options, ShardPolicy::RowCount(3)).unwrap();
                assert_eq!(catalog_s.arity(), 2);
                assert!(s.is_empty());
                assert_eq!(s.arity(), 2);
                assert_eq!(s.num_shards(), 0);
                let back = s.collect().unwrap();
                assert!(back.is_empty());
                assert_eq!(back.schema(), r_f.schema());
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// The sharded reader is equivalent to the flat reader: collecting the
    /// shards reproduces the flat read byte for byte (rows, schema and
    /// dictionary code columns), at every shard size.
    #[test]
    fn sharded_reader_matches_flat_reader() {
        let path = temp_path("sharded_reader");
        std::fs::write(&path, SAMPLE).unwrap();
        let (flat_catalog, flat) = read_delimited_from(&path, ReadOptions::default()).unwrap();
        for rows_per_shard in [1usize, 2, 3, 100] {
            let (catalog, sharded) = read_delimited_sharded(
                &path,
                ReadOptions::default(),
                ShardPolicy::RowCount(rows_per_shard),
            )
            .unwrap();
            assert_eq!(catalog.arity(), flat_catalog.arity());
            assert_eq!(sharded.len(), flat.len());
            assert_eq!(sharded.num_shards(), flat.len().div_ceil(rows_per_shard));
            let back = sharded.collect().unwrap();
            assert_eq!(back.schema(), flat.schema());
            for (a, b) in back.iter_rows().zip(flat.iter_rows()) {
                assert_eq!(a, b);
            }
            for &attr in flat.schema() {
                assert_eq!(
                    back.column_codes(attr).unwrap(),
                    flat.column_codes(attr).unwrap()
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// `distinct` reads dedup identically in the flat and sharded readers
    /// (first occurrence kept), and only kept rows fill shard quotas.
    #[test]
    fn sharded_distinct_read_matches_flat_distinct_read() {
        let path = temp_path("sharded_distinct");
        std::fs::write(&path, SAMPLE).unwrap();
        let options = ReadOptions {
            distinct: true,
            ..ReadOptions::default()
        };
        let (_c, flat) = read_delimited_from(&path, options).unwrap();
        assert_eq!(flat.len(), 3);
        let (_c2, sharded) =
            read_delimited_sharded(&path, options, ShardPolicy::RowCount(2)).unwrap();
        assert_eq!(sharded.len(), 3);
        assert!(sharded.is_set());
        // 3 kept rows at 2 rows/shard → 2 shards, not 2 full ones.
        assert_eq!(sharded.num_shards(), 2);
        let back = sharded.collect().unwrap();
        for (a, b) in back.iter_rows().zip(flat.iter_rows()) {
            assert_eq!(a, b);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A zero-row shard quota is clamped to one row per shard instead of
    /// looping forever or panicking.
    #[test]
    fn zero_row_shard_policy_is_clamped() {
        let path = temp_path("zero_policy");
        std::fs::write(&path, SAMPLE).unwrap();
        let (_c, sharded) =
            read_delimited_sharded(&path, ReadOptions::default(), ShardPolicy::RowCount(0))
                .unwrap();
        assert_eq!(sharded.len(), 4);
        assert_eq!(sharded.num_shards(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn whitespace_is_trimmed_when_requested() {
        let text = "a,b\n x , y \n";
        let (catalog, _r) = read_delimited(text, ReadOptions::default()).unwrap();
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x"));
        let (catalog2, _r2) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog2.value_label(AttrId(0), 0), Some(" x "));
    }

    #[test]
    fn roundtrip_through_write_delimited() {
        let (catalog, r) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        let text = write_delimited(&catalog, &r, ',').unwrap();
        let (_c2, r2) = read_delimited(&text, ReadOptions::default()).unwrap();
        assert_eq!(r2.len(), r.len());
        assert!(r2.canonicalize().set_eq(&r.canonicalize()));
    }

    #[test]
    fn write_falls_back_to_codes_for_unlabelled_values() {
        let catalog = Catalog::with_attributes(["a"]).unwrap();
        let r = Relation::from_rows(vec![AttrId(0)], &[&[9u32][..]]).unwrap();
        let text = write_delimited(&catalog, &r, ',').unwrap();
        assert!(text.contains('9'));
    }

    #[test]
    fn file_roundtrip_streams_both_ways() {
        let path = temp_path("roundtrip");
        std::fs::write(&path, SAMPLE).unwrap();
        let (catalog, r) = read_delimited_from(&path, ReadOptions::default()).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(catalog.arity(), 3);
        // Streamed read matches the in-memory read exactly.
        let (_c2, r2) = read_delimited(SAMPLE, ReadOptions::default()).unwrap();
        assert!(r.canonicalize().set_eq(&r2.canonicalize()));

        // Write back out and re-read.
        let out_path = temp_path("roundtrip_out");
        write_delimited_to(&out_path, &catalog, &r, ',').unwrap();
        let (_c3, r3) = read_delimited_from(&out_path, ReadOptions::default()).unwrap();
        assert_eq!(r3.len(), r.len());
        assert!(r3.canonicalize().set_eq(&r.canonicalize()));
        // Streamed write matches the in-memory renderer byte for byte.
        assert_eq!(
            std::fs::read_to_string(&out_path).unwrap(),
            write_delimited(&catalog, &r, ',').unwrap()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn file_read_honours_options() {
        let path = temp_path("options");
        std::fs::write(&path, "1\t2\n3\t4\n1\t2\n").unwrap();
        let (catalog, r) = read_delimited_from(
            &path,
            ReadOptions {
                delimiter: '\t',
                has_header: false,
                distinct: true,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(catalog.name(AttrId(0)).unwrap(), "X0");
        assert_eq!(r.len(), 2);
        assert!(r.is_set());
        let _ = std::fs::remove_file(&path);
    }

    /// Regression (CRLF handling): a file with `\r\n` line endings — and a
    /// final line terminated by a bare `\r` at EOF — parses identically to
    /// its `\n`-only counterpart; no field ever carries a stray `\r`.
    #[test]
    fn crlf_input_parses_like_lf_input() {
        let crlf = "city,country\r\nhaifa,israel\r\nseattle,usa\r";
        let lf = "city,country\nhaifa,israel\nseattle,usa\n";

        // In-memory reader.
        let (cat_a, r_a) = read_delimited(crlf, ReadOptions::default()).unwrap();
        let (cat_b, r_b) = read_delimited(lf, ReadOptions::default()).unwrap();
        assert_eq!(r_a.len(), 2);
        assert!(r_a.canonicalize().set_eq(&r_b.canonicalize()));
        assert_eq!(cat_a.value_label(AttrId(1), 1), Some("usa"));
        assert_eq!(cat_b.value_label(AttrId(1), 1), Some("usa"));

        // Streaming file reader, with trimming off so a stray `\r` would be
        // visible in the label (it must not be).
        let path = temp_path("crlf");
        std::fs::write(&path, crlf).unwrap();
        let (cat_f, r_f) = read_delimited_from(
            &path,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r_f.len(), 2);
        assert_eq!(cat_f.value_label(AttrId(1), 1), Some("usa"));
        assert!(r_f.canonicalize().set_eq(&r_a.canonicalize()));
        let _ = std::fs::remove_file(&path);
    }

    /// A lone trailing `\r` on the **final** line is a line ending;
    /// additional `\r`s are data (the seed's `trim_end_matches('\r')`
    /// silently ate all of them).
    #[test]
    fn only_one_trailing_carriage_return_is_stripped() {
        // Final line ends `\r\r` at EOF: one `\r` is the (half) line
        // ending, the other belongs to the field.
        let text = "a\nx\r\r";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x\r"));
    }

    /// An **interior** CRLF line whose field data ends in `\r` (bytes
    /// `x\r\r\n`) keeps that `\r`: the line splitter already consumed the
    /// `\r\n` terminator, so what remains is data and must not be stripped.
    #[test]
    fn interior_carriage_return_data_is_preserved() {
        let text = "a\nx\r\r\ny\n";
        let (catalog, r) = read_delimited(
            text,
            ReadOptions {
                trim: false,
                ..ReadOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(catalog.value_label(AttrId(0), 0), Some("x\r"));
        assert_eq!(catalog.value_label(AttrId(0), 1), Some("y"));
    }

    /// Regression (trailing newline): presence or absence of a final
    /// newline must not change the parse — no phantom empty row, no lost
    /// last row.
    #[test]
    fn trailing_final_newline_is_ignored() {
        for (with_nl, without_nl) in [
            ("a,b\n1,2\n3,4\n", "a,b\n1,2\n3,4"),
            ("a,b\r\n1,2\r\n", "a,b\r\n1,2"),
        ] {
            let (_c1, r1) = read_delimited(with_nl, ReadOptions::default()).unwrap();
            let (_c2, r2) = read_delimited(without_nl, ReadOptions::default()).unwrap();
            assert_eq!(r1.len(), r2.len());
            assert!(r1.canonicalize().set_eq(&r2.canonicalize()));

            let path = temp_path("trailing_nl");
            std::fs::write(&path, without_nl).unwrap();
            let (_c3, r3) = read_delimited_from(&path, ReadOptions::default()).unwrap();
            assert_eq!(r3.len(), r1.len());
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Regression (ragged rows): both too-few and too-many fields surface
    /// as [`RelationError::ArityMismatch`] from the streaming reader — never
    /// a silently truncated or padded tuple.
    #[test]
    fn ragged_file_rows_error_instead_of_misparsing() {
        for (tag, body) in [
            ("short", "a,b\n1,2\n3\n"),
            ("long", "a,b\n1,2\n3,4,5\n"),
            ("crlf_short", "a,b\r\n1,2\r\n3\r\n"),
        ] {
            let path = temp_path(&format!("ragged_{tag}"));
            std::fs::write(&path, body).unwrap();
            let err = read_delimited_from(&path, ReadOptions::default()).unwrap_err();
            assert!(
                matches!(err, RelationError::ArityMismatch { .. }),
                "{tag}: expected ArityMismatch, got {err}"
            );
            let _ = std::fs::remove_file(&path);
            // The in-memory reader agrees.
            assert!(matches!(
                read_delimited(body, ReadOptions::default()).unwrap_err(),
                RelationError::ArityMismatch { .. }
            ));
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err =
            read_delimited_from("/nonexistent/ajd/input.csv", ReadOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Io { .. }), "{err}");
        let catalog = Catalog::with_attributes(["a"]).unwrap();
        let r = Relation::from_rows(vec![AttrId(0)], &[&[1u32][..]]).unwrap();
        let err = write_delimited_to("/nonexistent/ajd/output.csv", &catalog, &r, ',').unwrap_err();
        assert!(matches!(err, RelationError::Io { .. }), "{err}");
    }
}
