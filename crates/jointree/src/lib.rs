//! # ajd-jointree
//!
//! Acyclic-schema machinery for the reproduction of *"Quantifying the Loss
//! of Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! The paper's objects of study are **acyclic schemas**
//! `S = {Ω₁,…,Ω_m}` and the **join trees** (junction trees) `(T, χ)` that
//! witness their acyclicity (Definition 2.1).  This crate provides:
//!
//! * [`Schema`] — a database schema (set of attribute bags) with reduction
//!   (removal of contained bags) and acyclicity testing.
//! * [`gyo`] — the GYO ear-removal algorithm: decides acyclicity and, when
//!   acyclic, constructs a join tree.
//! * [`JoinTree`] — a validated join tree: bags, edges, the running
//!   intersection property, rooted depth-first orderings with separators
//!   `Δᵢ = χ(parent(uᵢ)) ∩ χ(uᵢ)`, and standard constructions
//!   (path/star trees, trees from MVDs; Chow–Liu style trees live in
//!   `ajd-core`).
//! * [`Mvd`] and the **support** of a join tree (Section 2.3, eq. 9): the
//!   `m − 1` multivalued dependencies `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}` associated
//!   with its edges.
//! * [`count_acyclic_join`] — the size of `⋈ᵢ R[Ωᵢ]` by bottom-up message
//!   passing over the join tree, without materialising the join, from which
//!   the loss `ρ(R,S)` (eq. 1) is computed exactly.  Like every measure in
//!   the workspace it is generic over [`ajd_relation::GroupSource`]: pass a
//!   `&Relation` for a one-shot count or a shared source (an
//!   `AnalysisContext`, via `ajd_core::Analyzer`) for memoized groupings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod gyo;
pub mod mvd;
pub mod schema;
pub mod tree;

pub use count::{acyclic_join, count_acyclic_join, loss_acyclic};
pub use gyo::{gyo_reduction, GyoOutcome};
pub use mvd::Mvd;
pub use schema::Schema;
pub use tree::{JoinTree, RootedTree};
