//! Entropy and mutual-information confidence bounds under the random
//! relation model (Proposition 5.4, Theorem 5.2, Corollary 5.2.1).
//!
//! Setting: the degenerate model (`d_C = 1`) where a set `S` of `η` tuples
//! is drawn uniformly without replacement from `[d_A] × [d_B]`, with
//! `d_A ≥ d_B` assumed w.l.o.g.  The paper proves:
//!
//! * Proposition 5.4: `0 ≤ log d_A − E[H(A_S)] ≤ C(d_B)`.
//! * Theorem 5.2: with probability `1 − δ`,
//!   `log d_A − 20·√(d_A·log³(η/δ)/η) ≤ H(A_S) ≤ log d_A`,
//!   provided `η ≥ 128·d_A·log(128·d_A/δ)` (eq. 40).
//! * Corollary 5.2.1: with probability `1 − δ`,
//!   `I(A_S;B_S) ≥ log(1+ρ̄) − 40·√(d_A·log³(2η/δ)/η)`
//!   where `ρ̄ = d_A·d_B/η − 1`.

use crate::auxiliary::c_of_d;

/// The qualifying condition (40) of Theorem 5.2:
/// `η ≥ 128·d_A·log(128·d_A/δ)`.
pub fn thm52_qualifying_condition(d_a: f64, eta: f64, delta: f64) -> bool {
    assert!(d_a >= 1.0 && eta >= 0.0 && delta > 0.0 && delta < 1.0);
    eta >= 128.0 * d_a * (128.0 * d_a / delta).ln()
}

/// The deviation term of Theorem 5.2 (eq. 41): `20·√(d_A·log³(η/δ)/η)`.
pub fn thm52_entropy_deviation(d_a: f64, eta: f64, delta: f64) -> f64 {
    assert!(d_a >= 1.0 && eta > 0.0 && delta > 0.0 && delta < 1.0);
    let log_term = (eta / delta).ln();
    20.0 * (d_a * log_term.powi(3) / eta).sqrt()
}

/// The high-probability lower bound of Theorem 5.2 on `H(A_S)`:
/// `log d_A − 20·√(d_A·log³(η/δ)/η)` (clamped at 0).
pub fn thm52_entropy_lower_bound(d_a: f64, eta: f64, delta: f64) -> f64 {
    (d_a.ln() - thm52_entropy_deviation(d_a, eta, delta)).max(0.0)
}

/// The lower bound of Proposition 5.4 on the *expected* entropy:
/// `E[H(A_S)] ≥ log d_A − C(d_B)` (valid for `η ≥ 60·d_A`, `d_A ≥ d_B`).
pub fn expected_entropy_lower_bound(d_a: f64, d_b: f64) -> f64 {
    assert!(d_a >= 1.0 && d_b >= 1.0);
    (d_a.ln() - c_of_d(d_b)).max(0.0)
}

/// The high-probability lower bound of Corollary 5.2.1 on `I(A_S;B_S)` in the
/// degenerate model: `log(1+ρ̄) − 40·√(d_A·log³(2η/δ)/η)` with
/// `ρ̄ = d_A·d_B/η − 1`.  May be negative for small `η` (the bound is then
/// vacuous since mutual information is non-negative).
pub fn cor521_mi_lower_bound(d_a: f64, d_b: f64, eta: f64, delta: f64) -> f64 {
    assert!(d_a >= 1.0 && d_b >= 1.0 && eta > 0.0 && delta > 0.0 && delta < 1.0);
    assert!(
        eta <= d_a * d_b + 0.5,
        "the relation cannot exceed the domain ({eta} > {})",
        d_a * d_b
    );
    let rho_bar = d_a * d_b / eta - 1.0;
    let deviation = 40.0 * (d_a * (2.0 * eta / delta).ln().powi(3) / eta).sqrt();
    rho_bar.ln_1p() - deviation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifying_condition_scales_with_domain() {
        // Larger domains need more tuples.
        assert!(thm52_qualifying_condition(10.0, 1e6, 0.05));
        assert!(!thm52_qualifying_condition(10.0, 1_000.0, 0.05));
        assert!(!thm52_qualifying_condition(1e6, 1e6, 0.05));
        // Smaller delta needs more tuples.
        let eta = 140_000.0;
        assert!(thm52_qualifying_condition(100.0, eta, 0.5));
        assert!(!thm52_qualifying_condition(100.0, eta, 1e-9));
    }

    #[test]
    fn deviation_vanishes_as_eta_grows() {
        let d = 100.0;
        let delta = 0.05;
        let small = thm52_entropy_deviation(d, 1e4, delta);
        let large = thm52_entropy_deviation(d, 1e8, delta);
        let huge = thm52_entropy_deviation(d, 1e12, delta);
        // The constants are large; check the sqrt(log^3/eta) rate instead of
        // absolute smallness.
        assert!(large < small / 5.0);
        assert!(huge < large / 5.0);
    }

    #[test]
    fn deviation_grows_with_domain_and_confidence() {
        let eta = 1e6;
        assert!(
            thm52_entropy_deviation(1000.0, eta, 0.05) > thm52_entropy_deviation(10.0, eta, 0.05)
        );
        assert!(
            thm52_entropy_deviation(100.0, eta, 1e-6) > thm52_entropy_deviation(100.0, eta, 0.1)
        );
    }

    #[test]
    fn entropy_lower_bound_is_at_most_log_d() {
        for (d, eta) in [(50.0, 1e5), (200.0, 1e6), (1000.0, 1e9)] {
            let lb = thm52_entropy_lower_bound(d, eta, 0.05);
            assert!(lb <= d.ln() + 1e-12);
            assert!(lb >= 0.0);
        }
    }

    #[test]
    fn entropy_lower_bound_clamped_at_zero_when_vacuous() {
        assert_eq!(thm52_entropy_lower_bound(1000.0, 10.0, 0.05), 0.0);
    }

    #[test]
    fn expected_entropy_bound_close_to_log_d_for_large_domains() {
        let d = 1e6;
        let lb = expected_entropy_lower_bound(d, d);
        assert!(d.ln() - lb < 0.03);
        assert!(lb < d.ln());
    }

    #[test]
    fn cor521_bound_approaches_log1p_rho_for_large_domains() {
        // With d_A = d_B = d and eta = d^2 / (1 + rho), the deviation term is
        // O(sqrt(log^3(d)/d)) -> 0, so the bound approaches ln(1 + rho).
        let rho = 0.1f64;
        let mut gaps = Vec::new();
        for d in [100.0f64, 1_000.0, 10_000.0, 100_000.0] {
            let eta = d * d / (1.0 + rho);
            let bound = cor521_mi_lower_bound(d, d, eta, 0.05);
            let gap = rho.ln_1p() - bound;
            assert!(gap > 0.0, "deviation term must be positive");
            if let Some(&prev) = gaps.last() {
                assert!(gap < prev, "gap must shrink as d grows");
            }
            gaps.push(gap);
        }
        // Over three decades of d the O~(1/sqrt(d)) deviation shrinks by
        // roughly an order of magnitude.
        assert!(gaps.last().unwrap() < &(gaps[0] / 4.0));
    }

    #[test]
    fn cor521_rejects_impossible_eta() {
        let result = std::panic::catch_unwind(|| cor521_mi_lower_bound(10.0, 10.0, 200.0, 0.05));
        assert!(result.is_err());
    }

    #[test]
    fn cor521_can_be_vacuous_for_small_relations() {
        // Small eta: the deviation dwarfs log(1+rho); the bound is negative
        // (vacuous) but well-defined.
        let b = cor521_mi_lower_bound(100.0, 100.0, 500.0, 0.05);
        assert!(b < 0.0);
    }
}
