//! Shared-computation benchmark: the `AnalysisContext`/`BatchAnalyzer`
//! cache against the uncached per-tree path.
//!
//! Workload: a discovery-style sweep — one relation, many candidate join
//! trees (a pair-bag path plus all of its single and double edge
//! contractions, the exact shapes a greedy miner scores).  The candidates
//! share most bags and separators, so the shared cache answers most group
//! counts from memory; the uncached baseline re-projects and re-groups the
//! relation for every tree.  Before timing anything, the bench asserts the
//! cached reports are bit-identical to the uncached ones.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_core::{Analyzer, BatchAnalyzer};
use ajd_jointree::JoinTree;
use ajd_random::generators::markov_chain_relation;
use ajd_relation::{AttrSet, Relation};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// The candidate trees a greedy discovery pass would score over 5
/// attributes: the Chow–Liu-style pair-bag path, every single edge
/// contraction, and every double contraction.
fn sweep_trees() -> Vec<JoinTree> {
    let base =
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3]), bag(&[3, 4])]).unwrap();
    let mut trees = vec![base.clone()];
    for e in 0..base.num_edges() {
        let once = base.contract_edge(e).unwrap();
        for e2 in 0..once.num_edges() {
            trees.push(once.contract_edge(e2).unwrap());
        }
        trees.push(once);
    }
    trees.push(
        JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3]), bag(&[0, 4])]).unwrap(),
    );
    trees
}

fn workload() -> Relation {
    markov_chain_relation(&mut StdRng::seed_from_u64(42), 5, 10, 10_000, 0.25, false).unwrap()
}

/// Panics if the shared-cache reports differ from the per-tree reports in
/// any bit — the correctness contract of the cache, checked on the exact
/// workload being timed.
fn assert_cached_matches_uncached(r: &Relation, trees: &[JoinTree]) {
    let batch = BatchAnalyzer::new(r);
    for (tree, cached) in trees.iter().zip(batch.analyze_all(trees)) {
        let cached = cached.expect("batch analysis succeeds");
        let fresh = Analyzer::new(r).analyze(tree).unwrap();
        assert_eq!(fresh.join_size, cached.join_size);
        assert_eq!(fresh.rho.to_bits(), cached.rho.to_bits());
        assert_eq!(fresh.j_measure.to_bits(), cached.j_measure.to_bits());
        assert_eq!(fresh.kl_nats.to_bits(), cached.kl_nats.to_bits());
    }
}

fn bench_discovery_sweep(c: &mut Criterion) {
    let r = workload();
    let trees = sweep_trees();
    assert_cached_matches_uncached(&r, &trees);

    let mut group = c.benchmark_group("context/discovery_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trees.len() as u64));
    group.bench_function("uncached_per_tree", |b| {
        b.iter(|| {
            trees
                .iter()
                .map(|t| Analyzer::new(&r).analyze(t).unwrap().j_measure)
                .sum::<f64>()
        })
    });
    group.bench_function("cached_sequential", |b| {
        b.iter(|| {
            let batch = BatchAnalyzer::new(&r).with_threads(1);
            trees
                .iter()
                .map(|t| batch.analyze(t).unwrap().j_measure)
                .sum::<f64>()
        })
    });
    group.bench_function("cached_parallel", |b| {
        b.iter(|| {
            let batch = BatchAnalyzer::new(&r);
            batch
                .analyze_all(&trees)
                .into_iter()
                .map(|rep| rep.unwrap().j_measure)
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_single_tree(c: &mut Criterion) {
    let r = workload();
    let tree =
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3]), bag(&[3, 4])]).unwrap();

    let mut group = c.benchmark_group("context/single_tree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(r.len() as u64));
    // Cold: a fresh analyzer (empty cache) per analysis.
    group.bench_function("cold_context", |b| {
        b.iter(|| Analyzer::new(&r).analyze(&tree).unwrap())
    });
    // Warm: the context has already seen this tree; everything is a hit.
    let batch = BatchAnalyzer::new(&r);
    let _ = batch.analyze(&tree).unwrap();
    group.bench_function("warm_context", |b| b.iter(|| batch.analyze(&tree).unwrap()));
    group.finish();
}

/// Re-times the sweep's headline comparison (shared cache vs per-tree
/// recomputation) with the standalone timer and appends the records to the
/// perf-trajectory JSON (`BENCH_columnar.json`, see `ajd_bench::perf`).
fn record_trajectory(_c: &mut Criterion) {
    use ajd_bench::{time_median, BenchJson};
    use std::time::Duration;

    let r = workload();
    let trees = sweep_trees();
    let budget = Duration::from_millis(400);
    let uncached = time_median(budget, || {
        trees
            .iter()
            .map(|t| Analyzer::new(&r).analyze(t).unwrap().j_measure)
            .sum::<f64>()
    });
    let cached = time_median(budget, || {
        let batch = BatchAnalyzer::new(&r).with_threads(1);
        trees
            .iter()
            .map(|t| batch.analyze(t).unwrap().j_measure)
            .sum::<f64>()
    });
    let mut json = BenchJson::new();
    json.record_vs_baseline("context/discovery_sweep_cached", cached, uncached);
    json.emit(&BenchJson::default_path());
}

criterion_group!(
    benches,
    bench_discovery_sweep,
    bench_single_tree,
    record_trajectory
);
criterion_main!(benches);
