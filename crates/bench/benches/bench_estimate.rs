//! Estimation-tier benchmark: `EstimatedAnalyzer` against the exact
//! `Analyzer` on a large random-model instance.
//!
//! Workload: a seeded Markov-chain relation with one million rows over 3
//! attributes of domain 32 — heavy tuple repetition (joint support ≤ 32³ ≪
//! 10⁶), so every entropy in play is genuinely estimable from a sample.
//! (A Definition 5.2 random relation would be the *wrong* workload here:
//! its rows are distinct by construction, so `H(Ω) = ln N` cannot be
//! recovered from any sublinear sample.)  At the default ε = 0.1 the
//! McDiarmid planner sizes the sample at roughly 10⁵ rows, so the
//! estimator touches ~10% of the relation; the bench times the *whole*
//! estimated path (plan + seeded sample + gather + measure) against the
//! exact measure over all rows.
//!
//! Before timing anything, the bench asserts the correctness contract the
//! timings rest on: on a relation small enough that the planned sample
//! covers it, the estimator must take the fallback path and agree
//! bit-for-bit with the exact analyzer on every measure.
//!
//! Alongside the wall-clock records, `record_trajectory` writes the
//! *observed vs planned* estimation error to the same JSON file: the
//! absolute deviation |estimate − exact| is encoded in nano-nats (1 nat =
//! 10⁹ record units) with the planned ε as the baseline, so the record's
//! `speedup` field reads as the safety margin planned/observed ≥ 1.
//!
//! Read the two wall-clock records together: a *single* entropy query is
//! the estimator's worst case (one grouping pass is also the exact
//! kernel's cheapest query, so the record mostly prices the fixed
//! sample-and-gather cost and sits near or below 1×), while the J-measure
//! — several groupings over the same sample — is where the sublinear tier
//! pulls ahead; compound analyses amortise the sample further.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_core::{Analyzer, EstimateConfig, EstimatedAnalyzer};
use ajd_jointree::JoinTree;
use ajd_random::generators::{markov_chain_relation, random_relation};
use ajd_relation::{AttrSet, Relation};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn tree() -> JoinTree {
    JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap()
}

/// One million Markov-chain rows over 3 attributes of domain 32.
fn workload() -> Relation {
    markov_chain_relation(&mut StdRng::seed_from_u64(7), 3, 32, 1_000_000, 0.25, false).unwrap()
}

/// Panics if the estimator's fallback path differs from the exact analyzer
/// in any bit — the correctness contract underneath the timings: the
/// estimated tier is the exact tier plus a sampling plan, nothing else.
fn assert_fallback_matches_exact() {
    let r = random_relation(&mut StdRng::seed_from_u64(7), &[32, 32, 8], 1_500).unwrap();
    let exact = Analyzer::new(&r);
    let est = EstimatedAnalyzer::new(&r, EstimateConfig::default()).unwrap();
    assert!(
        est.is_fallback(),
        "1.5k rows must be under the default ε = 0.1 sampling plan"
    );
    let t = tree();
    let h = est.entropy(&bag(&[0, 1])).unwrap();
    assert_eq!(
        h.value.to_bits(),
        exact.entropy(&bag(&[0, 1])).unwrap().to_bits()
    );
    assert_eq!(h.epsilon.to_bits(), 0f64.to_bits());
    assert_eq!(
        est.j_measure(&t).unwrap().value.to_bits(),
        exact.j_measure(&t).unwrap().to_bits()
    );
    assert_eq!(
        est.loss(&t).unwrap().value.to_bits(),
        exact.loss(&t).unwrap().to_bits()
    );
}

fn bench_entropy(c: &mut Criterion) {
    assert_fallback_matches_exact();
    let r = workload();
    let attrs = bag(&[0, 1]);
    let cfg = EstimateConfig::default();

    let mut group = c.benchmark_group("estimate/entropy_1m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(r.len() as u64));
    group.bench_function("exact", |b| {
        b.iter(|| Analyzer::new(&r).entropy(&attrs).unwrap())
    });
    group.bench_function("estimated", |b| {
        b.iter(|| {
            EstimatedAnalyzer::new(&r, cfg)
                .unwrap()
                .entropy(&attrs)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_j_measure(c: &mut Criterion) {
    let r = workload();
    let t = tree();
    let cfg = EstimateConfig::default();

    let mut group = c.benchmark_group("estimate/j_measure_1m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(r.len() as u64));
    group.bench_function("exact", |b| {
        b.iter(|| Analyzer::new(&r).j_measure(&t).unwrap())
    });
    group.bench_function("estimated", |b| {
        b.iter(|| {
            EstimatedAnalyzer::new(&r, cfg)
                .unwrap()
                .j_measure(&t)
                .unwrap()
        })
    });
    group.finish();
}

/// Re-times the headline exact-vs-estimated comparisons with the standalone
/// timer and appends the records — plus the observed-vs-planned error — to
/// the perf-trajectory JSON (`BENCH_estimate.json`, see `ajd_bench::perf`).
fn record_trajectory(_c: &mut Criterion) {
    use ajd_bench::{time_median, BenchJson};
    use std::time::Duration;

    assert_fallback_matches_exact();
    let r = workload();
    let attrs = bag(&[0, 1]);
    let t = tree();
    let cfg = EstimateConfig::default();
    let budget = Duration::from_millis(800);

    let exact_entropy = time_median(budget, || Analyzer::new(&r).entropy(&attrs).unwrap());
    let est_entropy = time_median(budget, || {
        EstimatedAnalyzer::new(&r, cfg)
            .unwrap()
            .entropy(&attrs)
            .unwrap()
    });
    let exact_j = time_median(budget, || Analyzer::new(&r).j_measure(&t).unwrap());
    let est_j = time_median(budget, || {
        EstimatedAnalyzer::new(&r, cfg)
            .unwrap()
            .j_measure(&t)
            .unwrap()
    });

    let mut json = BenchJson::new();
    json.record_vs_baseline("estimate/entropy_1m_estimated", est_entropy, exact_entropy);
    json.record_vs_baseline("estimate/j_measure_1m_estimated", est_j, exact_j);

    // Observed vs planned error, encoded in nano-nats so the trajectory file
    // needs no second record shape: `median_ns` is |estimate − exact|·10⁹,
    // `baseline_ns` the planned ε·10⁹; `speedup` = planned/observed margin.
    let est = EstimatedAnalyzer::new(&r, cfg).unwrap();
    let h = est.entropy(&attrs).unwrap();
    let h_err = (h.value - Analyzer::new(&r).entropy(&attrs).unwrap()).abs();
    assert!(
        h_err <= h.epsilon,
        "observed entropy error {h_err} exceeds the planned ε = {}",
        h.epsilon
    );
    json.record_vs_baseline(
        "estimate/entropy_1m_error_nano_nats",
        Duration::from_nanos((h_err * 1e9).round() as u64),
        Duration::from_nanos((h.epsilon * 1e9).round() as u64),
    );
    let j = est.j_measure(&t).unwrap();
    let j_err = (j.value - Analyzer::new(&r).j_measure(&t).unwrap()).abs();
    assert!(
        j_err <= j.epsilon,
        "observed J-measure error {j_err} exceeds the planned ε = {}",
        j.epsilon
    );
    json.record_vs_baseline(
        "estimate/j_measure_1m_error_nano_nats",
        Duration::from_nanos((j_err * 1e9).round() as u64),
        Duration::from_nanos((j.epsilon * 1e9).round() as u64),
    );
    json.emit(&BenchJson::default_path());
}

criterion_group!(benches, bench_entropy, bench_j_measure, record_trajectory);
criterion_main!(benches);
