//! Deterministic end-to-end scenarios spanning all crates.

use ajd::jointree::{loss_acyclic, mvd::support};
use ajd::prelude::*;
use ajd::relation::join::{decompose, natural_join_all};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// Beeri et al. (Theorem 8.8, restated in Section 2.1): a relation satisfies
/// an AJD iff it satisfies every MVD in the support of its join tree.
#[test]
fn ajd_holds_iff_all_support_mvds_hold() {
    // Lossless case: a relation built as a join of two tables.
    let lossless = generators::conditional_product_relation(4, 3, 2);
    let tree = JoinTree::from_acyclic_schema(&[bag(&[0, 2]), bag(&[1, 2])]).unwrap();
    let report = Analyzer::new(&lossless).analyze(&tree).unwrap();
    assert!(report.is_lossless());
    for mvd in support(&tree) {
        assert!(mvd.holds_in(&lossless).unwrap());
    }

    // Lossy case: remove one tuple; the AJD breaks, and so does some MVD.
    let mut rows: Vec<Vec<u32>> = lossless.iter_rows().map(|t| t.to_vec()).collect();
    rows.pop();
    let lossy = Relation::from_rows(
        lossless.schema().to_vec(),
        &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
    )
    .unwrap();
    let lossy_report = Analyzer::new(&lossy).analyze(&tree).unwrap();
    assert!(!lossy_report.is_lossless());
    assert!(support(&tree).iter().any(|m| !m.holds_in(&lossy).unwrap()));
    // Theorem 2.1 (Lee): J > 0 exactly in the lossy case.
    assert!(lossy_report.j_measure > 1e-9);
}

/// The classic "employee skills/languages" MVD example: decomposing on a
/// valid MVD loses nothing; decomposing on an invalid one creates spurious
/// tuples that the J-measure detects.
#[test]
fn employee_skills_languages_scenario() {
    let mut catalog = Catalog::with_attributes(["employee", "skill", "language"]).unwrap();
    let rows_named = [
        ["ann", "sql", "english"],
        ["ann", "sql", "french"],
        ["ann", "rust", "english"],
        ["ann", "rust", "french"],
        ["bob", "sql", "english"],
        ["bob", "c++", "english"],
        // carol breaks the employee ->> skill | language pattern:
        ["carol", "sql", "english"],
        ["carol", "rust", "german"],
    ];
    let mut r = Relation::new(vec![AttrId(0), AttrId(1), AttrId(2)]).unwrap();
    for row in rows_named {
        let encoded = catalog.encode_row(&row).unwrap();
        r.push_row(&encoded).unwrap();
    }

    let employee = catalog.attr("employee").unwrap();
    let skill = catalog.attr("skill").unwrap();
    let language = catalog.attr("language").unwrap();

    let tree = JoinTree::from_acyclic_schema(&[
        AttrSet::from_slice(&[employee, skill]),
        AttrSet::from_slice(&[employee, language]),
    ])
    .unwrap();
    let report = Analyzer::new(&r).analyze(&tree).unwrap();

    // carol's rows are the only violation: joining her (2 skills x 2
    // languages) block adds exactly 2 spurious tuples.
    assert_eq!(report.spurious, 2);
    assert!(report.j_measure > 0.0);
    assert!(report.j_measure <= report.log1p_rho + 1e-12);

    // Restricting to "ann" (value code 0 of the employee dictionary), whose
    // skills and languages are a full product, makes the MVD hold exactly.
    let ann_only = r.select_eq(employee, 0).unwrap();
    assert!(ann_only.len() < r.len());
    let ann_only_report = Analyzer::new(&ann_only).analyze(&tree).unwrap();
    assert!(ann_only_report.is_lossless());
}

/// Decompose-then-join round trip: for a lossless schema the reconstruction
/// is exact; for a lossy one it is a strict superset whose size matches the
/// tree-counting prediction.
#[test]
fn decompose_join_roundtrip_matches_counts() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let r = generators::random_relation(&mut rng, &[5, 5, 5], 40).unwrap();
    let tree = JoinTree::from_acyclic_schema(&[bag(&[0, 1]), bag(&[1, 2])]).unwrap();

    let parts = decompose(&r, &tree.schema()).unwrap();
    let rejoined = natural_join_all(&parts).unwrap();
    let report = Analyzer::new(&r).analyze(&tree).unwrap();

    assert_eq!(rejoined.len() as u128, report.join_size);
    assert!(r.is_subset_of(&rejoined));
    if report.is_lossless() {
        assert!(rejoined.set_eq(&r));
    } else {
        assert!(rejoined.len() > r.len());
    }
}

/// The discovery pipeline end-to-end: mine a schema under a J budget and verify
/// that every certified quantity is consistent with a direct analysis.
#[test]
fn discovery_pipeline_is_consistent_with_analysis() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let r = generators::markov_chain_relation(&mut rng, 5, 6, 1500, 0.2, true).unwrap();

    let miner = SchemaMiner::new(DiscoveryConfig {
        j_threshold: 0.1,
        ..DiscoveryConfig::default()
    });
    let mined = miner.mine(&r).unwrap();

    // The mined tree covers all attributes and is a valid join tree.
    assert_eq!(mined.tree.attributes(), r.attrs());
    assert!(mined.tree.check_running_intersection());

    // Its reported J matches a direct computation, and Lemma 4.1 holds
    // against the realised loss.
    let direct_j = j_measure(&r, &mined.tree).unwrap();
    assert!((direct_j - mined.j_measure).abs() < 1e-9);
    let rho = loss_acyclic(&r, &mined.tree).unwrap();
    assert!(mined.rho_lower_bound <= rho + 1e-6);
}

/// Catalog-labelled data round-trips through an analysis without losing the
/// ability to render attribute names.
#[test]
fn catalog_labels_survive_analysis() {
    let mut catalog = Catalog::with_attributes(["city", "country", "continent"]).unwrap();
    let data = [
        ["haifa", "israel", "asia"],
        ["tel aviv", "israel", "asia"],
        ["seattle", "usa", "america"],
        ["boston", "usa", "america"],
        ["paris", "france", "europe"],
    ];
    let mut r = Relation::new(vec![AttrId(0), AttrId(1), AttrId(2)]).unwrap();
    for row in data {
        let encoded = catalog.encode_row(&row).unwrap();
        r.push_row(&encoded).unwrap();
    }
    let city = catalog.attr("city").unwrap();
    let country = catalog.attr("country").unwrap();
    let continent = catalog.attr("continent").unwrap();
    // country determines continent, and city determines country: the
    // hierarchical schema {city,country} + {country,continent} is lossless.
    let tree = JoinTree::from_acyclic_schema(&[
        AttrSet::from_slice(&[city, country]),
        AttrSet::from_slice(&[country, continent]),
    ])
    .unwrap();
    let report = Analyzer::new(&r).analyze(&tree).unwrap();
    assert!(report.is_lossless());
    assert_eq!(catalog.value_label(city, 0), Some("haifa"));
    assert_eq!(catalog.domain_size(country).unwrap(), 3);
}
