//! Ablation benchmark of the sampling-without-replacement strategies of the
//! random relation model (Definition 5.2): partial Fisher–Yates vs Floyd vs
//! the automatic strategy selection, across density regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_random::sampling::{floyd, partial_shuffle, sample_distinct};
use ajd_random::RandomRelationModel;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/strategies");
    // Sparse regime: tiny sample from a large domain.
    let (domain, n) = (100_000_000u64, 10_000u64);
    group.throughput(Throughput::Elements(n));
    group.bench_with_input(BenchmarkId::new("floyd_sparse", n), &n, |b, _| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| floyd(&mut rng, domain, n))
    });
    // Dense regime: half of a small domain.
    let (small_domain, dense_n) = (1_000_000u64, 500_000u64);
    group.throughput(Throughput::Elements(dense_n));
    group.bench_with_input(
        BenchmarkId::new("partial_shuffle_dense", dense_n),
        &dense_n,
        |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| partial_shuffle(&mut rng, small_domain, dense_n))
        },
    );
    group.bench_with_input(BenchmarkId::new("auto_dense", dense_n), &dense_n, |b, _| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sample_distinct(&mut rng, small_domain, dense_n).unwrap())
    });
    group.finish();
}

fn bench_model_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/random_relation_model");
    // The Figure 1 workload at d = 500: N ~ 227k tuples from a 250k domain.
    let d = 500u64;
    let model = RandomRelationModel::degenerate(d, d).unwrap();
    let n = (d as f64 * d as f64 / 1.1).round() as u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("fig1_point_d500", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| model.sample(&mut rng, n).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_model_sampling);
criterion_main!(benches);
