//! Experiment `discovery` — the motivating application (Kenig et al. \[14\]):
//! mining approximate acyclic schemas guided by the J-measure.
//!
//! Workload: noisy Markov-chain relations (attributes `X₀ → X₁ → ⋯` with a
//! controlled noise level).  The miner builds a Chow–Liu tree over pairwise
//! mutual information and then coarsens it greedily until the J-measure
//! drops below a threshold.  We report the mined schema's J, the loss it
//! actually incurs, and the Lemma 4.1 lower bound that J certifies.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::Summary;
use ajd_bench::table::{f, Table};
use ajd_core::{Analyzer, DiscoveryConfig};
use ajd_random::generators::markov_chain_relation;
use ajd_relation::ThreadBudget;

fn main() {
    let args = ExperimentArgs::from_env();
    let noises: Vec<f64> = if args.quick {
        vec![0.1, 0.3]
    } else {
        vec![0.1, 0.3, 0.5]
    };
    // The J budget controls the granularity/loss trade-off; sweeping it is
    // the interesting axis (a tight budget forces coarse, near-lossless
    // schemas; a loose budget keeps fine-grained but lossier ones).
    let thresholds: Vec<f64> = if args.quick {
        vec![0.1, 1.0]
    } else {
        vec![0.05, 0.2, 0.5, 1.0, 2.0]
    };
    let (num_attrs, domain, n) = (5usize, 12u32, 1500usize);

    let mut table = Table::new(
        "Schema discovery on noisy Markov chains (distinct tuples, 5 attrs, |dom| = 12, N = 1500)",
        &[
            "noise",
            "J_budget",
            "bags_mean",
            "max_bag",
            "J_mean",
            "rho_mean",
            "rho_lb_mean",
            "lb_ok",
        ],
    );

    for &noise in &noises {
        for &j_threshold in &thresholds {
            let rows = parallel_trials(
                args.trials,
                args.seed ^ ((noise * 997.0) as u64),
                |_, rng| {
                    let r = markov_chain_relation(rng, num_attrs, domain, n, noise, true)
                        .expect("generator parameters are valid");
                    // One shared analyzer per trial: candidate scoring during
                    // mining and the final loss evaluation reuse the same
                    // groupings.  The trial loop owns the machine's thread
                    // budget, so each per-trial analyzer runs serially —
                    // one coherent budget, no stacked thread pools.
                    let analyzer = Analyzer::with_thread_budget(&r, ThreadBudget::serial());
                    let mined = analyzer
                        .mine(DiscoveryConfig {
                            j_threshold,
                            ..DiscoveryConfig::default()
                        })
                        .expect("mining succeeds");
                    let rho = analyzer
                        .loss(&mined.tree)
                        .expect("loss of the mined schema");
                    let max_bag = mined.bags().iter().map(|b| b.len()).max().unwrap_or(0);
                    (
                        mined.bags().len() as f64,
                        max_bag as f64,
                        mined.j_measure,
                        rho,
                        mined.rho_lower_bound,
                    )
                },
            );
            let bags: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let max_bag = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
            let js: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let rhos: Vec<f64> = rows.iter().map(|r| r.3).collect();
            let lbs: Vec<f64> = rows.iter().map(|r| r.4).collect();
            let lb_ok = rows.iter().all(|r| r.4 <= r.3 + 1e-6);
            table.push_row(vec![
                format!("{noise:.2}"),
                format!("{j_threshold:.2}"),
                format!("{:.1}", Summary::of(&bags).mean),
                format!("{max_bag:.0}"),
                f(Summary::of(&js).mean),
                f(Summary::of(&rhos).mean),
                f(Summary::of(&lbs).mean),
                lb_ok.to_string(),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "discovery");
    println!(
        "Paper's shape: a tight J budget forces coarse, near-lossless schemas (few bags, J ~ 0);\n\
         a loose budget keeps fine-grained schemas whose J and realised loss grow with the noise\n\
         level, and the certified lower bound e^J - 1 always stays below the realised loss (lb_ok)."
    );
}
