//! Relation instances.
//!
//! A [`Relation`] is the concrete representation of a relation instance `R`
//! over a set of attributes `Ω` (the paper's `R ∈ Rel(Ω)`).  Tuples are
//! stored row-major as dictionary codes (`u32`), giving compact,
//! cache-friendly scans.  A relation may be a *set* (all rows distinct — the
//! common case in the paper) or a *multiset* (duplicates allowed — used for
//! empirical distributions of multisets of tuples); [`Relation::is_set`]
//! distinguishes the two and [`Relation::distinct`] converts.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dictionary-encoded attribute value.
pub type Value = u32;

/// Counts of distinct grouped rows: the multiplicity of every distinct
/// projection of a relation onto some attribute set.
///
/// This is the basic object from which all marginal probabilities and
/// entropies are computed: for `Y ⊆ Ω`, the empirical marginal is
/// `P[Y=y] = count(y) / N`.
#[derive(Debug, Clone, Default)]
pub struct GroupCounts {
    /// Attribute set the rows are grouped by (ascending attribute order).
    pub attrs: AttrSet,
    /// Multiplicity of each distinct grouped row.
    pub counts: FxHashMap<Box<[Value]>, u64>,
    /// Total number of rows that were grouped (the `N` of the relation).
    pub total: u64,
}

impl GroupCounts {
    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// Looks up the multiplicity of a specific grouped row.
    pub fn count_of(&self, key: &[Value]) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(group, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u64)> + '_ {
        self.counts.iter().map(|(k, &v)| (k.as_ref(), v))
    }
}

/// A relation instance: an ordered schema plus row-major tuple storage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relation {
    schema: Vec<AttrId>,
    data: Vec<Value>,
    rows: usize,
}

impl Relation {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an empty relation over the given schema (column order is
    /// preserved as given).
    pub fn new(schema: Vec<AttrId>) -> Result<Self> {
        let mut seen = AttrSet::empty();
        for &a in &schema {
            if !seen.insert(a) {
                return Err(RelationError::DuplicateAttribute(a));
            }
        }
        Ok(Relation {
            schema,
            data: Vec::new(),
            rows: 0,
        })
    }

    /// Creates an empty relation with pre-allocated capacity for `rows`
    /// tuples.
    pub fn with_capacity(schema: Vec<AttrId>, rows: usize) -> Result<Self> {
        let mut r = Self::new(schema)?;
        r.data.reserve(rows * r.arity());
        Ok(r)
    }

    /// Builds a relation from explicit rows.
    pub fn from_rows<R: AsRef<[Value]>>(schema: Vec<AttrId>, rows: &[R]) -> Result<Self> {
        let mut rel = Self::with_capacity(schema, rows.len())?;
        for row in rows {
            rel.push_row(row.as_ref())?;
        }
        Ok(rel)
    }

    /// Appends a tuple.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// The column order of this relation.
    #[inline]
    pub fn schema(&self) -> &[AttrId] {
        &self.schema
    }

    /// The attribute set of this relation (schema as a set).
    pub fn attrs(&self) -> AttrSet {
        AttrSet::from_slice(&self.schema)
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of tuples `N = |R|` (with multiplicity, if this is a multiset).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Returns the `i`-th tuple as a slice of dictionary codes.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter_rows(&self) -> RowIter<'_> {
        RowIter {
            arity: self.arity(),
            data: &self.data,
            pos: 0,
            rows: self.rows,
        }
    }

    /// Position of an attribute in this relation's column order.
    pub fn attr_pos(&self, attr: AttrId) -> Result<usize> {
        self.schema
            .iter()
            .position(|&a| a == attr)
            .ok_or(RelationError::UnknownAttribute(attr))
    }

    /// Positions (column indices) of each attribute of `attrs`, in the order
    /// of `attrs` (ascending attribute id).
    pub fn attr_positions(&self, attrs: &AttrSet) -> Result<Vec<usize>> {
        attrs.iter().map(|a| self.attr_pos(a)).collect()
    }

    /// Size of the active domain of an attribute: the number of distinct
    /// values it takes in this relation (`d_A = |Π_A(R)|` in the paper).
    pub fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        let pos = self.attr_pos(attr)?;
        let mut seen = set_with_capacity(self.rows.min(1 << 16));
        for row in self.iter_rows() {
            seen.insert(row[pos]);
        }
        Ok(seen.len())
    }

    // ------------------------------------------------------------------
    // Set semantics
    // ------------------------------------------------------------------

    /// `true` if all tuples are pairwise distinct (the relation is a set).
    pub fn is_set(&self) -> bool {
        let mut seen = set_with_capacity(self.rows);
        for row in self.iter_rows() {
            if !seen.insert(row.to_vec().into_boxed_slice()) {
                return false;
            }
        }
        true
    }

    /// Returns a copy with duplicate tuples removed.
    pub fn distinct(&self) -> Relation {
        let mut seen = set_with_capacity(self.rows);
        let mut out = Relation {
            schema: self.schema.clone(),
            data: Vec::with_capacity(self.data.len()),
            rows: 0,
        };
        for row in self.iter_rows() {
            if seen.insert(row.to_vec().into_boxed_slice()) {
                out.data.extend_from_slice(row);
                out.rows += 1;
            }
        }
        out
    }

    /// Membership test for a full tuple (given in this relation's column
    /// order).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        if row.len() != self.arity() {
            return false;
        }
        self.iter_rows().any(|r| r == row)
    }

    /// `true` if every tuple of `self` also appears in `other`
    /// (schemas must cover the same attribute set; column order may differ).
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        if self.attrs() != other.attrs() {
            return false;
        }
        // Reorder our rows into other's column order and probe a hash set.
        let perm: Vec<usize> = other
            .schema
            .iter()
            .map(|&a| {
                self.attr_pos(a)
                    .expect("attrs() equality guarantees presence")
            })
            .collect();
        let mut set = set_with_capacity(other.rows);
        for row in other.iter_rows() {
            set.insert(row.to_vec().into_boxed_slice());
        }
        let mut buf = vec![0u32; self.arity()];
        for row in self.iter_rows() {
            for (k, &p) in perm.iter().enumerate() {
                buf[k] = row[p];
            }
            if !set.contains(buf.as_slice()) {
                return false;
            }
        }
        true
    }

    /// Set equality: same attribute set and same set of tuples (duplicates
    /// and column order ignored).
    pub fn set_eq(&self, other: &Relation) -> bool {
        let a = self.distinct();
        let b = other.distinct();
        a.len() == b.len() && a.is_subset_of(&b)
    }

    /// Returns a canonical copy: columns reordered to ascending attribute id
    /// and rows sorted lexicographically.  Useful for snapshot-style tests.
    pub fn canonicalize(&self) -> Relation {
        let attrs = self.attrs();
        let perm = self
            .attr_positions(&attrs)
            .expect("own attributes are always present");
        let mut rows: Vec<Vec<Value>> = self
            .iter_rows()
            .map(|r| perm.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        let mut out = Relation {
            schema: attrs.as_slice().to_vec(),
            data: Vec::with_capacity(self.data.len()),
            rows: 0,
        };
        for r in rows {
            out.data.extend_from_slice(&r);
            out.rows += 1;
        }
        out
    }

    // ------------------------------------------------------------------
    // Projection / selection / grouping
    // ------------------------------------------------------------------

    /// Projection `Π_Y(R)` with set semantics (duplicates removed).
    ///
    /// Panics never; attributes not in the schema yield an error through
    /// [`Relation::try_project`]. This convenience wrapper expects `attrs ⊆
    /// schema` and will panic otherwise (programming error).
    pub fn project(&self, attrs: &AttrSet) -> Relation {
        self.try_project(attrs)
            .expect("projection attributes must be a subset of the relation schema")
    }

    /// Fallible projection `Π_Y(R)` with set semantics.
    pub fn try_project(&self, attrs: &AttrSet) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let arity = positions.len();
        let mut seen = set_with_capacity(self.rows);
        let mut out = Relation {
            schema: attrs.as_slice().to_vec(),
            data: Vec::with_capacity(self.rows * arity),
            rows: 0,
        };
        let mut buf: Vec<Value> = vec![0; arity];
        for row in self.iter_rows() {
            for (k, &p) in positions.iter().enumerate() {
                buf[k] = row[p];
            }
            if seen.insert(buf.clone().into_boxed_slice()) {
                out.data.extend_from_slice(&buf);
                out.rows += 1;
            }
        }
        Ok(out)
    }

    /// Projection with multiset (bag) semantics: keeps one output tuple per
    /// input tuple, duplicates included.
    pub fn project_multiset(&self, attrs: &AttrSet) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let arity = positions.len();
        let mut out = Relation {
            schema: attrs.as_slice().to_vec(),
            data: Vec::with_capacity(self.rows * arity),
            rows: 0,
        };
        for row in self.iter_rows() {
            for &p in &positions {
                out.data.push(row[p]);
            }
            out.rows += 1;
        }
        Ok(out)
    }

    /// Selection `σ_{attr=value}(R)`.
    pub fn select_eq(&self, attr: AttrId, value: Value) -> Result<Relation> {
        let pos = self.attr_pos(attr)?;
        let mut out = Relation {
            schema: self.schema.clone(),
            data: Vec::new(),
            rows: 0,
        };
        for row in self.iter_rows() {
            if row[pos] == value {
                out.data.extend_from_slice(row);
                out.rows += 1;
            }
        }
        Ok(out)
    }

    /// Groups the tuples by their projection onto `attrs`, returning the
    /// multiplicity of every distinct group (`R(Y=y)` cardinalities).
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<GroupCounts> {
        let positions = self.attr_positions(attrs)?;
        let mut counts: FxHashMap<Box<[Value]>, u64> = map_with_capacity(self.rows.min(1 << 20));
        let mut buf: Vec<Value> = vec![0; positions.len()];
        for row in self.iter_rows() {
            for (k, &p) in positions.iter().enumerate() {
                buf[k] = row[p];
            }
            *counts.entry(buf.clone().into_boxed_slice()).or_insert(0) += 1;
        }
        Ok(GroupCounts {
            attrs: attrs.clone(),
            counts,
            total: self.rows as u64,
        })
    }

    /// Reorders the columns of every tuple to the target schema (which must
    /// be a permutation of the current schema).
    pub fn reorder_columns(&self, target: &[AttrId]) -> Result<Relation> {
        if AttrSet::from_slice(target) != self.attrs() || target.len() != self.arity() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "target schema {:?} is not a permutation of {:?}",
                    target, self.schema
                ),
            });
        }
        let perm: Vec<usize> = target
            .iter()
            .map(|&a| self.attr_pos(a).expect("checked above"))
            .collect();
        let mut out = Relation {
            schema: target.to_vec(),
            data: Vec::with_capacity(self.data.len()),
            rows: 0,
        };
        for row in self.iter_rows() {
            for &p in &perm {
                out.data.push(row[p]);
            }
            out.rows += 1;
        }
        Ok(out)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(")?;
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")[{} rows]", self.rows)
    }
}

/// Iterator over the tuples of a [`Relation`], yielding row slices.
///
/// Handles the zero-arity corner case (projections onto the empty attribute
/// set yield rows that are empty slices).
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    arity: usize,
    data: &'a [Value],
    pos: usize,
    rows: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.rows {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        if self.arity == 0 {
            Some(&[])
        } else {
            Some(&self.data[i * self.arity..(i + 1) * self.arity])
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.rows - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (AttrId, AttrId, AttrId) {
        (AttrId(0), AttrId(1), AttrId(2))
    }

    fn sample() -> Relation {
        let (a, b, c) = abc();
        Relation::from_rows(
            vec![a, b, c],
            &[
                &[0, 0, 0][..],
                &[0, 1, 0][..],
                &[1, 0, 1][..],
                &[1, 1, 1][..],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let r = sample();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.row(2), &[1, 0, 1]);
        assert_eq!(r.attrs(), AttrSet::range(3));
        assert_eq!(r.attr_pos(AttrId(1)).unwrap(), 1);
        assert!(r.attr_pos(AttrId(9)).is_err());
    }

    #[test]
    fn duplicate_schema_rejected() {
        assert!(Relation::new(vec![AttrId(0), AttrId(0)]).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        assert!(r.push_row(&[1]).is_err());
        assert!(r.push_row(&[1, 2, 3]).is_err());
        assert!(r.push_row(&[1, 2]).is_ok());
    }

    #[test]
    fn projection_dedups() {
        let r = sample();
        let pa = r.project(&AttrSet::singleton(AttrId(0)));
        assert_eq!(pa.len(), 2);
        let pac = r.project(&AttrSet::from_ids([0, 2]));
        assert_eq!(pac.len(), 2); // (0,0) and (1,1) only
        let pall = r.project(&AttrSet::range(3));
        assert_eq!(pall.len(), 4);
    }

    #[test]
    fn projection_multiset_keeps_duplicates() {
        let r = sample();
        let pa = r.project_multiset(&AttrSet::singleton(AttrId(0))).unwrap();
        assert_eq!(pa.len(), 4);
        assert!(!pa.is_set());
        assert_eq!(pa.distinct().len(), 2);
    }

    #[test]
    fn try_project_unknown_attr_errors() {
        let r = sample();
        assert!(r.try_project(&AttrSet::singleton(AttrId(7))).is_err());
    }

    #[test]
    fn selection_filters_rows() {
        let r = sample();
        let s = r.select_eq(AttrId(0), 1).unwrap();
        assert_eq!(s.len(), 2);
        for row in s.iter_rows() {
            assert_eq!(row[0], 1);
        }
        assert!(r.select_eq(AttrId(5), 0).is_err());
    }

    #[test]
    fn group_counts_match_manual_counts() {
        let r = sample();
        let g = r.group_counts(&AttrSet::singleton(AttrId(1))).unwrap();
        assert_eq!(g.total, 4);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.count_of(&[0]), 2);
        assert_eq!(g.count_of(&[1]), 2);
        assert_eq!(g.count_of(&[9]), 0);
        let g2 = r.group_counts(&AttrSet::range(3)).unwrap();
        assert_eq!(g2.num_groups(), 4);
        assert!(g2.iter().all(|(_, c)| c == 1));
    }

    #[test]
    fn set_semantics_helpers() {
        let r = sample();
        assert!(r.is_set());
        assert!(r.contains_row(&[0, 1, 0]));
        assert!(!r.contains_row(&[9, 9, 9]));
        assert!(!r.contains_row(&[0, 1]));
        let mut dup = r.clone();
        dup.push_row(&[0, 0, 0]).unwrap();
        assert!(!dup.is_set());
        assert_eq!(dup.distinct().len(), 4);
        assert!(dup.set_eq(&r));
        assert!(r.is_subset_of(&dup));
    }

    #[test]
    fn subset_requires_same_attrs() {
        let r = sample();
        let p = r.project(&AttrSet::from_ids([0, 1]));
        assert!(!p.is_subset_of(&r));
    }

    #[test]
    fn canonicalize_sorts_rows_and_columns() {
        let (a, b, _c) = abc();
        let r1 = Relation::from_rows(vec![b, a], &[&[5, 1][..], &[4, 0][..]]).unwrap();
        let r2 = Relation::from_rows(vec![a, b], &[&[0, 4][..], &[1, 5][..]]).unwrap();
        assert_eq!(r1.canonicalize().row(0), r2.canonicalize().row(0));
        assert_eq!(r1.canonicalize().schema(), r2.canonicalize().schema());
        assert!(r1.set_eq(&r2));
    }

    #[test]
    fn reorder_columns_roundtrip() {
        let r = sample();
        let reordered = r
            .reorder_columns(&[AttrId(2), AttrId(0), AttrId(1)])
            .unwrap();
        assert_eq!(reordered.row(0), &[0, 0, 0]);
        assert_eq!(reordered.row(2), &[1, 1, 0]);
        assert!(reordered.set_eq(&r));
        assert!(r.reorder_columns(&[AttrId(0), AttrId(1)]).is_err());
    }

    #[test]
    fn active_domain_size_counts_distinct_values() {
        let r = sample();
        assert_eq!(r.active_domain_size(AttrId(0)).unwrap(), 2);
        assert_eq!(r.active_domain_size(AttrId(2)).unwrap(), 2);
        assert!(r.active_domain_size(AttrId(9)).is_err());
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::new(vec![AttrId(0)]).unwrap();
        assert!(r.is_empty());
        assert!(r.is_set());
        assert_eq!(r.project(&AttrSet::singleton(AttrId(0))).len(), 0);
        assert_eq!(r.iter_rows().count(), 0);
    }

    #[test]
    fn display_mentions_schema_and_size() {
        let r = sample();
        let s = format!("{r}");
        assert!(s.contains("X0"));
        assert!(s.contains("4 rows"));
    }
}
