//! # ajd-relation
//!
//! Relational substrate for the reproduction of *"Quantifying the Loss of
//! Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! The paper works with relation instances `R` over an attribute set
//! `Ω = {X₁,…,Xₙ}`, their projections `R[Y]` for `Y ⊆ Ω`, and the natural
//! join of those projections.  This crate provides exactly that machinery,
//! tuned for the workloads of the paper (dense, dictionary-encoded domains,
//! relations from thousands to millions of tuples):
//!
//! * [`AttrId`] / [`AttrSet`] — attributes and sorted attribute sets with the
//!   usual set algebra (union, intersection, difference).
//! * [`Catalog`] — optional human-readable attribute names and per-attribute
//!   value dictionaries for ingesting labelled data.
//! * [`Relation`] — a set (or multiset) of tuples stored row-major over
//!   `u32` dictionary codes, with projection, selection, grouping,
//!   deduplication and canonicalisation.
//! * [`join`] — hash-based natural joins, semijoins and join-size counting.
//! * [`AnalysisContext`] — a shared-computation layer memoizing group
//!   counts, interned group ids and projections per attribute set, so that
//!   the many measures (and many candidate join trees) evaluated over one
//!   relation never redo the same grouping work.
//! * [`hash`] — a small Fx-style hasher used for all row grouping (the
//!   default SipHash is needlessly slow for short integer rows).
//!
//! Everything is deterministic: iteration orders that can affect results
//! (e.g. canonical forms) are explicitly sorted.
//!
//! ## Example
//!
//! ```
//! use ajd_relation::{AttrId, AttrSet, Relation};
//!
//! // R(A,B,C) with three tuples.
//! let a = AttrId(0); let b = AttrId(1); let c = AttrId(2);
//! let r = Relation::from_rows(vec![a, b, c], &[
//!     &[0, 0, 1][..],
//!     &[0, 1, 1][..],
//!     &[1, 0, 0][..],
//! ]).unwrap();
//!
//! // Project onto {A,B} and join back with the projection onto {B,C}.
//! let rab = r.project(&AttrSet::from_slice(&[a, b]));
//! let rbc = r.project(&AttrSet::from_slice(&[b, c]));
//! let joined = ajd_relation::join::natural_join(&rab, &rbc).unwrap();
//! assert!(joined.len() >= r.len());            // the join may add spurious tuples
//! assert!(r.is_subset_of(&joined));            // but never loses any
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod catalog;
pub mod context;
pub mod error;
pub mod hash;
pub mod io;
pub mod join;
pub mod relation;

pub use attr::{AttrId, AttrSet};
pub use catalog::{Catalog, ValueDict};
pub use context::{AnalysisContext, CacheStats, GroupIds};
pub use error::{RelationError, Result};
pub use io::{read_delimited, write_delimited, ReadOptions};
pub use relation::{GroupCounts, Relation, RowIter, Value};
