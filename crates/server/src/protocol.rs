//! The wire protocol: frame shapes, the error envelope, and request
//! parsing.
//!
//! `ajd-server` speaks **line-delimited JSON**: one request object per
//! line, one response object per line, always in the order requests were
//! received on that connection.  The normative specification — every
//! frame, field, type and error code — lives in
//! [`docs/PROTOCOL.md`](https://example.invalid/ajd) at the repository
//! root, and the spec's own JSON examples are round-trip-tested against a
//! live server in `tests/protocol_spec.rs`.  This module is the
//! implementation: [`Request::parse`] turns a parsed [`Json`] frame into a
//! typed request (or a structured [`ErrorCode`]), and the `*_frame`
//! helpers build the response envelopes.
//!
//! Versioning rule: every response carries `"v": 1`
//! ([`PROTOCOL_VERSION`]).  Requests may carry `"v"`; a request with a
//! version *greater* than the server's is answered with
//! `unsupported_version` (an omitted `"v"` means "the server's version").
//! Within one major version, servers may add response fields but never
//! remove or re-type them, and unknown *request* fields are ignored —
//! clients must tolerate new fields.

use crate::json::Json;
use ajd_relation::RelationError;

/// The protocol version this server speaks (the `"v"` field of every
/// response).
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes of the error envelope.
///
/// An error frame never closes the connection: the client may keep
/// pipelining requests after receiving one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a JSON object, or a required field was missing or
    /// of the wrong type.
    BadRequest,
    /// The request's `"v"` is newer than the server's [`PROTOCOL_VERSION`].
    UnsupportedVersion,
    /// The `"op"` field named no known operation.
    UnknownOp,
    /// The `"relation"` field named no catalog entry.
    UnknownRelation,
    /// An attribute name in `"attrs"` or `"schema"` is not an attribute of
    /// the addressed relation.
    UnknownAttribute,
    /// The `"schema"` field does not describe an acyclic schema covering
    /// exactly the relation's attributes.
    InvalidSchema,
    /// The addressed relation holds no tuples, so the requested measure is
    /// undefined.
    EmptyRelation,
    /// The admission queue for this request class is full; retry later.
    Busy,
    /// The measurement itself failed (e.g. a join-size count overflowing
    /// `u128`).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownRelation => "unknown_relation",
            ErrorCode::UnknownAttribute => "unknown_attribute",
            ErrorCode::InvalidSchema => "invalid_schema",
            ErrorCode::EmptyRelation => "empty_relation",
            ErrorCode::Busy => "busy",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured request failure: code + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail (never required for dispatch).
    pub message: String,
}

impl Failure {
    /// Builds a failure from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Failure {
            code,
            message: message.into(),
        }
    }

    /// Maps a library error onto the wire's error vocabulary.
    pub fn from_relation_error(err: &RelationError) -> Self {
        let code = match err {
            RelationError::UnknownName(_) | RelationError::UnknownAttribute(_) => {
                ErrorCode::UnknownAttribute
            }
            RelationError::SchemaMismatch { .. }
            | RelationError::DuplicateAttribute(_)
            | RelationError::ArityMismatch { .. } => ErrorCode::InvalidSchema,
            RelationError::EmptyInput(_) => ErrorCode::EmptyRelation,
            RelationError::CountOverflow(_)
            | RelationError::InvalidParameter { .. }
            | RelationError::DomainExhausted { .. }
            | RelationError::Io { .. } => ErrorCode::Internal,
        };
        Failure::new(code, err.to_string())
    }
}

/// A parsed request frame: the operation plus the optional `"id"` echo.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The client's correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The operation to perform.
    pub request: Request,
}

/// The operations of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// List the served relations.
    Catalog,
    /// Cache and admission counters, optionally filtered to one relation.
    Stats {
        /// Restrict the per-relation section to this entry.
        relation: Option<String>,
    },
    /// Entropy `H(attrs)` in nats.
    Entropy {
        /// Catalog entry to measure.
        relation: String,
        /// Attribute names (possibly empty: `H(∅) = 0`).
        attrs: Vec<String>,
    },
    /// The exact loss `ρ(R,S)` of an acyclic schema.
    Loss {
        /// Catalog entry to measure.
        relation: String,
        /// Schema bags as arrays of attribute names.
        schema: Vec<Vec<String>>,
    },
    /// The J-measure `J(T)` of an acyclic schema, in nats.
    JMeasure {
        /// Catalog entry to measure.
        relation: String,
        /// Schema bags as arrays of attribute names.
        schema: Vec<Vec<String>>,
    },
    /// The full loss report (loss, J, KL, bounds, per-MVD breakdown).
    Analyze {
        /// Catalog entry to measure.
        relation: String,
        /// Schema bags as arrays of attribute names.
        schema: Vec<Vec<String>>,
    },
    /// Mine an approximate acyclic schema.
    Mine {
        /// Catalog entry to mine.
        relation: String,
        /// Stop coarsening once `J ≤ j_threshold` (nats); server default
        /// when omitted.
        j_threshold: Option<f64>,
        /// Bag-size cap; unlimited when omitted.
        max_bag_size: Option<usize>,
    },
    /// A sampled estimate of a measure with error bars: the answer comes
    /// from a seeded row sample (falling back to the exact kernel when the
    /// planned sample would cover the relation) and carries its (ε, δ,
    /// seed, sample size) and concentration bound.
    Estimate {
        /// Catalog entry to measure.
        relation: String,
        /// Which measure to estimate, plus its resolved operands.
        target: EstimateTarget,
        /// Target half-width ε in nats; server default when omitted.
        epsilon: Option<f64>,
        /// Failure probability δ; server default when omitted.
        delta: Option<f64>,
        /// Sampling seed; `0` when omitted (estimates are deterministic in
        /// the seed).
        seed: Option<u64>,
    },
    /// Append a batch of rows to a **sharded** relation as one new shard,
    /// advancing its epoch.  Exactly one of `rows` / `text` carries the
    /// payload.
    Append {
        /// Catalog entry to append to.
        relation: String,
        /// Inline payload: one array of label strings per row.
        rows: Option<Vec<Vec<String>>>,
        /// Delimited payload: newline-separated rows, fields split on
        /// `delimiter` (no header line).
        text: Option<String>,
        /// Field delimiter for `text`; `,` when omitted.
        delimiter: Option<char>,
    },
}

/// The measure an `estimate` request targets, with its operands already
/// shape-checked (name resolution against the relation's catalog happens
/// at dispatch).
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateTarget {
    /// `H(attrs)`; operand field `"attrs"`.
    Entropy {
        /// Attribute names (possibly empty: `H(∅) = 0`).
        attrs: Vec<String>,
    },
    /// `I(A;B|C)`; operand fields `"a"`, `"b"`, `"c"` (an empty `"c"`
    /// makes it plain mutual information).
    Cmi {
        /// Attribute names of `A`.
        a: Vec<String>,
        /// Attribute names of `B`.
        b: Vec<String>,
        /// Attribute names of the conditioning set `C`.
        c: Vec<String>,
    },
    /// `J(T)`; operand field `"schema"`.
    JMeasure {
        /// Schema bags as arrays of attribute names.
        schema: Vec<Vec<String>>,
    },
    /// `ρ(R,S)` of the sample, with ε on the `log(1+ρ)` scale the
    /// concentration bound lives on; operand field `"schema"`.
    Loss {
        /// Schema bags as arrays of attribute names.
        schema: Vec<Vec<String>>,
    },
}

impl EstimateTarget {
    /// The wire spelling of the `"measure"` field.
    pub fn measure(&self) -> &'static str {
        match self {
            EstimateTarget::Entropy { .. } => "entropy",
            EstimateTarget::Cmi { .. } => "cmi",
            EstimateTarget::JMeasure { .. } => "j",
            EstimateTarget::Loss { .. } => "loss",
        }
    }
}

impl Request {
    /// The `"op"` value naming this request on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Catalog => "catalog",
            Request::Stats { .. } => "stats",
            Request::Entropy { .. } => "entropy",
            Request::Loss { .. } => "loss",
            Request::JMeasure { .. } => "j",
            Request::Analyze { .. } => "analyze",
            Request::Mine { .. } => "mine",
            Request::Estimate { .. } => "estimate",
            Request::Append { .. } => "append",
        }
    }

    /// Parses one request frame.  On failure the error is structured
    /// (`Failure`) and the caller still gets the `"id"` (when one could be
    /// extracted) so the error frame can be correlated.
    pub fn parse(frame: &Json) -> (Option<Json>, Result<Request, Failure>) {
        let Some(_) = frame.as_obj() else {
            return (
                None,
                Err(Failure::new(
                    ErrorCode::BadRequest,
                    "a request frame must be a JSON object",
                )),
            );
        };
        let id = frame.get("id").cloned();
        (id, Self::parse_fields(frame))
    }

    fn parse_fields(frame: &Json) -> Result<Request, Failure> {
        if let Some(v) = frame.get("v") {
            let Some(v) = v.as_u64() else {
                return Err(Failure::new(
                    ErrorCode::BadRequest,
                    "field \"v\" must be a non-negative integer",
                ));
            };
            if v > PROTOCOL_VERSION {
                return Err(Failure::new(
                    ErrorCode::UnsupportedVersion,
                    format!("this server speaks protocol version {PROTOCOL_VERSION}, got {v}"),
                ));
            }
        }
        let Some(op) = frame.get("op") else {
            return Err(Failure::new(
                ErrorCode::BadRequest,
                "missing required field \"op\"",
            ));
        };
        let Some(op) = op.as_str() else {
            return Err(Failure::new(
                ErrorCode::BadRequest,
                "field \"op\" must be a string",
            ));
        };
        match op {
            "catalog" => Ok(Request::Catalog),
            "stats" => Ok(Request::Stats {
                relation: optional_string(frame, "relation")?,
            }),
            "entropy" => Ok(Request::Entropy {
                relation: required_string(frame, "relation")?,
                attrs: string_array(frame, "attrs")?,
            }),
            "loss" => Ok(Request::Loss {
                relation: required_string(frame, "relation")?,
                schema: schema_field(frame)?,
            }),
            "j" => Ok(Request::JMeasure {
                relation: required_string(frame, "relation")?,
                schema: schema_field(frame)?,
            }),
            "analyze" => Ok(Request::Analyze {
                relation: required_string(frame, "relation")?,
                schema: schema_field(frame)?,
            }),
            "mine" => Ok(Request::Mine {
                relation: required_string(frame, "relation")?,
                j_threshold: optional_f64(frame, "j_threshold")?,
                max_bag_size: optional_usize(frame, "max_bag_size")?,
            }),
            "estimate" => {
                let relation = required_string(frame, "relation")?;
                let measure = required_string(frame, "measure")?;
                let target = match measure.as_str() {
                    "entropy" => EstimateTarget::Entropy {
                        attrs: string_array(frame, "attrs")?,
                    },
                    "cmi" => EstimateTarget::Cmi {
                        a: string_array(frame, "a")?,
                        b: string_array(frame, "b")?,
                        c: string_array(frame, "c")?,
                    },
                    "j" => EstimateTarget::JMeasure {
                        schema: schema_field(frame)?,
                    },
                    "loss" => EstimateTarget::Loss {
                        schema: schema_field(frame)?,
                    },
                    other => {
                        return Err(Failure::new(
                            ErrorCode::BadRequest,
                            format!(
                                "unknown estimate measure \"{other}\" \
                                 (expected \"entropy\", \"cmi\", \"j\" or \"loss\")"
                            ),
                        ))
                    }
                };
                // ε and δ gate the sampling plan; reject nonsense here so a
                // bad request never reads as a server-side failure.
                let epsilon = optional_f64(frame, "epsilon")?;
                if let Some(e) = epsilon {
                    if e <= 0.0 {
                        return Err(Failure::new(
                            ErrorCode::BadRequest,
                            "field \"epsilon\" must be positive",
                        ));
                    }
                }
                let delta = optional_f64(frame, "delta")?;
                if let Some(d) = delta {
                    if !(d > 0.0 && d < 1.0) {
                        return Err(Failure::new(
                            ErrorCode::BadRequest,
                            "field \"delta\" must lie strictly between 0 and 1",
                        ));
                    }
                }
                Ok(Request::Estimate {
                    relation,
                    target,
                    epsilon,
                    delta,
                    seed: optional_u64(frame, "seed")?,
                })
            }
            "append" => {
                let relation = required_string(frame, "relation")?;
                let rows = rows_field(frame)?;
                let text = optional_string(frame, "text")?;
                let delimiter = delimiter_field(frame)?;
                if rows.is_some() == text.is_some() {
                    return Err(Failure::new(
                        ErrorCode::BadRequest,
                        "append carries its payload in exactly one of \"rows\" or \"text\"",
                    ));
                }
                Ok(Request::Append {
                    relation,
                    rows,
                    text,
                    delimiter,
                })
            }
            other => Err(Failure::new(
                ErrorCode::UnknownOp,
                format!("unknown op \"{other}\""),
            )),
        }
    }
}

fn required_string(frame: &Json, field: &str) -> Result<String, Failure> {
    match frame.get(field) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(Failure::new(
            ErrorCode::BadRequest,
            format!("field \"{field}\" must be a string"),
        )),
        None => Err(Failure::new(
            ErrorCode::BadRequest,
            format!("missing required field \"{field}\""),
        )),
    }
}

fn optional_string(frame: &Json, field: &str) -> Result<Option<String>, Failure> {
    match frame.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(Failure::new(
            ErrorCode::BadRequest,
            format!("field \"{field}\" must be a string when present"),
        )),
    }
}

fn optional_f64(frame: &Json, field: &str) -> Result<Option<f64>, Failure> {
    match frame.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.is_finite() => Ok(Some(*n)),
        Some(_) => Err(Failure::new(
            ErrorCode::BadRequest,
            format!("field \"{field}\" must be a finite number when present"),
        )),
    }
}

fn optional_u64(frame: &Json, field: &str) -> Result<Option<u64>, Failure> {
    match frame.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(Failure::new(
                ErrorCode::BadRequest,
                format!("field \"{field}\" must be a non-negative integer when present"),
            )),
        },
    }
}

fn optional_usize(frame: &Json, field: &str) -> Result<Option<usize>, Failure> {
    match frame.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n as usize)),
            None => Err(Failure::new(
                ErrorCode::BadRequest,
                format!("field \"{field}\" must be a non-negative integer when present"),
            )),
        },
    }
}

fn string_array(frame: &Json, field: &str) -> Result<Vec<String>, Failure> {
    let Some(value) = frame.get(field) else {
        return Err(Failure::new(
            ErrorCode::BadRequest,
            format!("missing required field \"{field}\""),
        ));
    };
    let Some(items) = value.as_arr() else {
        return Err(Failure::new(
            ErrorCode::BadRequest,
            format!("field \"{field}\" must be an array of strings"),
        ));
    };
    items
        .iter()
        .map(|item| {
            item.as_str().map(str::to_owned).ok_or_else(|| {
                Failure::new(
                    ErrorCode::BadRequest,
                    format!("field \"{field}\" must contain only strings"),
                )
            })
        })
        .collect()
}

fn rows_field(frame: &Json) -> Result<Option<Vec<Vec<String>>>, Failure> {
    let rows = match frame.get("rows") {
        None | Some(Json::Null) => return Ok(None),
        Some(value) => value.as_arr().ok_or_else(|| {
            Failure::new(
                ErrorCode::BadRequest,
                "field \"rows\" must be an array of label-string arrays",
            )
        })?,
    };
    rows.iter()
        .map(|row| {
            let Some(labels) = row.as_arr() else {
                return Err(Failure::new(
                    ErrorCode::BadRequest,
                    "each row must be an array of label strings",
                ));
            };
            labels
                .iter()
                .map(|label| {
                    label.as_str().map(str::to_owned).ok_or_else(|| {
                        Failure::new(ErrorCode::BadRequest, "rows must contain only strings")
                    })
                })
                .collect()
        })
        .collect::<Result<Vec<Vec<String>>, Failure>>()
        .map(Some)
}

fn delimiter_field(frame: &Json) -> Result<Option<char>, Failure> {
    let Some(s) = optional_string(frame, "delimiter")? else {
        return Ok(None);
    };
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Ok(Some(c)),
        _ => Err(Failure::new(
            ErrorCode::BadRequest,
            "field \"delimiter\" must be a single character",
        )),
    }
}

fn schema_field(frame: &Json) -> Result<Vec<Vec<String>>, Failure> {
    let Some(value) = frame.get("schema") else {
        return Err(Failure::new(
            ErrorCode::BadRequest,
            "missing required field \"schema\"",
        ));
    };
    let Some(bags) = value.as_arr() else {
        return Err(Failure::new(
            ErrorCode::BadRequest,
            "field \"schema\" must be an array of attribute-name arrays",
        ));
    };
    if bags.is_empty() {
        return Err(Failure::new(
            ErrorCode::InvalidSchema,
            "a schema needs at least one bag",
        ));
    }
    bags.iter()
        .map(|bag| {
            let Some(names) = bag.as_arr() else {
                return Err(Failure::new(
                    ErrorCode::BadRequest,
                    "each schema bag must be an array of attribute names",
                ));
            };
            if names.is_empty() {
                return Err(Failure::new(
                    ErrorCode::InvalidSchema,
                    "schema bags must be non-empty",
                ));
            }
            names
                .iter()
                .map(|n| {
                    n.as_str().map(str::to_owned).ok_or_else(|| {
                        Failure::new(
                            ErrorCode::BadRequest,
                            "schema bags must contain only strings",
                        )
                    })
                })
                .collect()
        })
        .collect()
}

/// Builds a success frame: `{"v":1,("id":…,)"ok":true,…fields}`.
pub fn ok_frame(id: Option<Json>, fields: Vec<(String, Json)>) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 3);
    pairs.push(("v".to_owned(), Json::Num(PROTOCOL_VERSION as f64)));
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id));
    }
    pairs.push(("ok".to_owned(), Json::Bool(true)));
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// Builds an error frame:
/// `{"v":1,("id":…,)"ok":false,"error":{"code":…,"message":…}}`.
pub fn error_frame(id: Option<Json>, failure: &Failure) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::with_capacity(4);
    pairs.push(("v".to_owned(), Json::Num(PROTOCOL_VERSION as f64)));
    if let Some(id) = id {
        pairs.push(("id".to_owned(), id));
    }
    pairs.push(("ok".to_owned(), Json::Bool(false)));
    pairs.push((
        "error".to_owned(),
        Json::obj([
            ("code", Json::str(failure.code.as_str())),
            ("message", Json::str(failure.message.clone())),
        ]),
    ));
    Json::Obj(pairs)
}

/// Renders a `u128` protocol field (join sizes can exceed `2^53`, the
/// largest integer a JSON number transports exactly) as the decimal string
/// the spec mandates.
pub fn u128_field(value: u128) -> Json {
    Json::str(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Request {
        let frame = Json::parse(line).unwrap();
        let (_, req) = Request::parse(&frame);
        req.unwrap()
    }

    fn parse_err(line: &str) -> Failure {
        let frame = Json::parse(line).unwrap();
        let (_, req) = Request::parse(&frame);
        req.unwrap_err()
    }

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_ok(r#"{"op":"catalog"}"#), Request::Catalog);
        assert_eq!(
            parse_ok(r#"{"op":"stats"}"#),
            Request::Stats { relation: None }
        );
        assert_eq!(
            parse_ok(r#"{"op":"stats","relation":"sales"}"#),
            Request::Stats {
                relation: Some("sales".into())
            }
        );
        assert_eq!(
            parse_ok(r#"{"op":"entropy","relation":"sales","attrs":["city","region"]}"#),
            Request::Entropy {
                relation: "sales".into(),
                attrs: vec!["city".into(), "region".into()],
            }
        );
        assert_eq!(
            parse_ok(r#"{"op":"loss","relation":"sales","schema":[["a","b"],["b","c"]]}"#),
            Request::Loss {
                relation: "sales".into(),
                schema: vec![vec!["a".into(), "b".into()], vec!["b".into(), "c".into()]],
            }
        );
        assert!(matches!(
            parse_ok(r#"{"op":"j","relation":"r","schema":[["a"]]}"#),
            Request::JMeasure { .. }
        ));
        assert!(matches!(
            parse_ok(r#"{"op":"analyze","relation":"r","schema":[["a"]]}"#),
            Request::Analyze { .. }
        ));
        assert_eq!(
            parse_ok(r#"{"op":"mine","relation":"r","j_threshold":0.05,"max_bag_size":3}"#),
            Request::Mine {
                relation: "r".into(),
                j_threshold: Some(0.05),
                max_bag_size: Some(3),
            }
        );
        assert_eq!(
            parse_ok(r#"{"op":"mine","relation":"r"}"#),
            Request::Mine {
                relation: "r".into(),
                j_threshold: None,
                max_bag_size: None,
            }
        );
        assert_eq!(
            parse_ok(
                r#"{"op":"estimate","relation":"r","measure":"entropy","attrs":["a"],"epsilon":0.05,"delta":0.01,"seed":7}"#
            ),
            Request::Estimate {
                relation: "r".into(),
                target: EstimateTarget::Entropy {
                    attrs: vec!["a".into()],
                },
                epsilon: Some(0.05),
                delta: Some(0.01),
                seed: Some(7),
            }
        );
        assert_eq!(
            parse_ok(
                r#"{"op":"estimate","relation":"r","measure":"cmi","a":["x"],"b":["y"],"c":[]}"#
            ),
            Request::Estimate {
                relation: "r".into(),
                target: EstimateTarget::Cmi {
                    a: vec!["x".into()],
                    b: vec!["y".into()],
                    c: vec![],
                },
                epsilon: None,
                delta: None,
                seed: None,
            }
        );
        assert!(matches!(
            parse_ok(r#"{"op":"estimate","relation":"r","measure":"loss","schema":[["a"],["b"]]}"#),
            Request::Estimate {
                target: EstimateTarget::Loss { .. },
                ..
            }
        ));
        assert_eq!(
            parse_ok(r#"{"op":"append","relation":"r","rows":[["a","b"],["c","d"]]}"#),
            Request::Append {
                relation: "r".into(),
                rows: Some(vec![
                    vec!["a".into(), "b".into()],
                    vec!["c".into(), "d".into()],
                ]),
                text: None,
                delimiter: None,
            }
        );
        assert_eq!(
            parse_ok(r#"{"op":"append","relation":"r","text":"a|b\nc|d","delimiter":"|"}"#),
            Request::Append {
                relation: "r".into(),
                rows: None,
                text: Some("a|b\nc|d".into()),
                delimiter: Some('|'),
            }
        );
    }

    #[test]
    fn append_payload_is_exactly_one_of_rows_or_text() {
        assert_eq!(
            parse_err(r#"{"op":"append","relation":"r"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"append","relation":"r","rows":[["a"]],"text":"a"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"append","relation":"r","rows":"a"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"append","relation":"r","rows":[["a",1]]}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"append","relation":"r","text":"a","delimiter":"::"}"#).code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn id_is_extracted_even_from_bad_requests() {
        let frame = Json::parse(r#"{"id":7,"op":"nope"}"#).unwrap();
        let (id, req) = Request::parse(&frame);
        assert_eq!(id, Some(Json::Num(7.0)));
        assert_eq!(req.unwrap_err().code, ErrorCode::UnknownOp);
    }

    #[test]
    fn version_gate() {
        assert!(matches!(
            parse_ok(r#"{"v":1,"op":"catalog"}"#),
            Request::Catalog
        ));
        assert_eq!(
            parse_err(r#"{"v":2,"op":"catalog"}"#).code,
            ErrorCode::UnsupportedVersion
        );
        assert_eq!(
            parse_err(r#"{"v":"one","op":"catalog"}"#).code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn field_type_errors_are_bad_request() {
        assert_eq!(parse_err(r#"{"op":5}"#).code, ErrorCode::BadRequest);
        assert_eq!(
            parse_err(r#"{"nop":"catalog"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"loss","relation":"r"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"loss","relation":"r","schema":"ab"}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"loss","relation":"r","schema":[]}"#).code,
            ErrorCode::InvalidSchema
        );
        assert_eq!(
            parse_err(r#"{"op":"loss","relation":"r","schema":[[]]}"#).code,
            ErrorCode::InvalidSchema
        );
        assert_eq!(
            parse_err(r#"{"op":"entropy","relation":"r","attrs":[1]}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"mine","relation":"r","max_bag_size":-1}"#).code,
            ErrorCode::BadRequest
        );
        // estimate: out-of-range knobs and unknown measures fail at parse,
        // so they can never surface as `internal` from the sampling plan.
        assert_eq!(
            parse_err(
                r#"{"op":"estimate","relation":"r","measure":"entropy","attrs":["a"],"epsilon":0}"#
            )
            .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(
                r#"{"op":"estimate","relation":"r","measure":"entropy","attrs":["a"],"delta":1}"#
            )
            .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(
                r#"{"op":"estimate","relation":"r","measure":"entropy","attrs":["a"],"seed":-3}"#
            )
            .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"estimate","relation":"r","measure":"median","attrs":["a"]}"#).code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            parse_err(r#"{"op":"estimate","relation":"r","measure":"cmi","a":["x"],"b":["y"]}"#)
                .code,
            ErrorCode::BadRequest
        );
        let (_, req) = Request::parse(&Json::Num(4.0));
        assert_eq!(req.unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn frames_have_the_documented_envelope() {
        let ok = ok_frame(
            Some(Json::Num(3.0)),
            vec![("x".to_owned(), Json::Bool(true))],
        );
        assert_eq!(ok.to_string(), r#"{"v":1,"id":3,"ok":true,"x":true}"#);
        let err = error_frame(None, &Failure::new(ErrorCode::Busy, "queue full"));
        assert_eq!(
            err.to_string(),
            r#"{"v":1,"ok":false,"error":{"code":"busy","message":"queue full"}}"#
        );
    }

    #[test]
    fn relation_errors_map_onto_wire_codes() {
        use ajd_relation::AttrId;
        let cases = [
            (
                RelationError::UnknownName("q".into()),
                ErrorCode::UnknownAttribute,
            ),
            (
                RelationError::UnknownAttribute(AttrId(3)),
                ErrorCode::UnknownAttribute,
            ),
            (
                RelationError::SchemaMismatch { detail: "x".into() },
                ErrorCode::InvalidSchema,
            ),
            (RelationError::EmptyInput("r"), ErrorCode::EmptyRelation),
            (RelationError::CountOverflow("join"), ErrorCode::Internal),
        ];
        for (err, code) in cases {
            assert_eq!(Failure::from_relation_error(&err).code, code, "{err}");
        }
    }

    #[test]
    fn u128_fields_are_decimal_strings() {
        assert_eq!(u128_field(0).to_string(), "\"0\"");
        assert_eq!(
            u128_field(u128::MAX).to_string(),
            format!("\"{}\"", u128::MAX)
        );
    }
}
