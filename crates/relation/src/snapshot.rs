//! Epoch-snapshot handles over a [`ShardedRelation`]: one writer appends
//! while any number of readers keep a consistent snapshot.
//!
//! A [`ShardedRelation`] is copy-on-append — clones share every shard by
//! `Arc`, and [`ShardedRelation::append_shard`] only pushes a new shard and
//! bumps the [epoch](ShardedRelation::epoch).  [`ShardedStore`] turns that
//! into a concurrent handle:
//!
//! * [`ShardedStore::snapshot`] hands out an `Arc<ShardedRelation>` — an
//!   immutable view at one epoch.  Readers group, analyze and cache against
//!   it for as long as they like; nothing a writer does can change it.
//! * [`ShardedStore::append_shard`] builds the next version from the
//!   current one (cloning shares all shards **and their warm group-table
//!   caches**) and installs it atomically.  Writers are serialized by a
//!   dedicated mutex so epochs advance by exactly one per append and no
//!   append is ever lost; the swap itself is a single `Arc` store under a
//!   write lock, so a reader observes either the old snapshot or the new —
//!   never a torn mixture (model-checked in `tests/model_snapshot.rs`).
//!
//! The two locks are [`ajd_sync`] primitives, so the whole protocol runs
//! under the `ajd-model` interleaving explorer unchanged.
//!
//! ```
//! use ajd_relation::{AttrId, AttrSet, GroupSource, Relation, ShardedStore};
//!
//! let schema = vec![AttrId(0), AttrId(1)];
//! let first = Relation::from_rows(schema.clone(), &[&[1, 10][..], &[2, 10][..]]).unwrap();
//! let store = ShardedStore::from_initial_shard(first).unwrap();
//!
//! let reader = store.snapshot();          // pinned at epoch 1
//! let batch = Relation::from_rows(schema, &[&[3, 20][..]]).unwrap();
//! store.append_shard(batch).unwrap();     // writer installs epoch 2
//!
//! assert_eq!(reader.epoch(), 1);          // the pinned view is unchanged…
//! assert_eq!(reader.len(), 2);
//! let now = store.snapshot();             // …and a fresh snapshot sees the append
//! assert_eq!(now.epoch(), 2);
//! assert_eq!(now.len(), 3);
//! ```

use crate::attr::AttrId;
use crate::error::Result;
use crate::relation::Relation;
use crate::shard::ShardedRelation;
use ajd_sync::{Mutex, RwLock};
use std::sync::Arc;

/// A concurrent snapshot-swap handle over a [`ShardedRelation`]: readers
/// pin immutable `Arc` snapshots, one writer at a time appends the next
/// epoch.  See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct ShardedStore {
    /// The current snapshot; replaced wholesale by each append.
    current: RwLock<Arc<ShardedRelation>>,
    /// Serializes writers: each append clones the latest snapshot, extends
    /// it, and installs the result.  Held across the whole append so two
    /// writers can never both build from the same base (which would lose
    /// one of them at install time).
    writer: Mutex<()>,
}

impl ShardedStore {
    /// Wraps an existing sharded relation (at whatever epoch it carries).
    pub fn new(initial: ShardedRelation) -> Self {
        ShardedStore {
            current: RwLock::new(Arc::new(initial)),
            writer: Mutex::new(()),
        }
    }

    /// Creates an empty store over `schema` at epoch 0.
    pub fn empty(schema: Vec<AttrId>) -> Result<Self> {
        Ok(Self::new(ShardedRelation::new(schema)?))
    }

    /// Creates a store whose first shard is `first` (epoch 1).
    pub fn from_initial_shard(first: Relation) -> Result<Self> {
        let mut rel = ShardedRelation::new(first.schema().to_vec())?;
        rel.append_shard(first)?;
        Ok(Self::new(rel))
    }

    /// The current snapshot: an immutable view at one consistent epoch.
    /// Cheap (`Arc` clone under a read lock); hold it as long as you like —
    /// later appends build new snapshots and never touch this one.
    pub fn snapshot(&self) -> Arc<ShardedRelation> {
        Arc::clone(&self.current.read())
    }

    /// The current epoch (see [`ShardedRelation::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch()
    }

    /// Appends `shard` as the next epoch and returns the new snapshot.
    ///
    /// The append is **all-or-nothing**: on error (schema mismatch,
    /// dictionary overflow) the current snapshot is left installed and
    /// untouched.  Existing shards — and their warm per-shard group
    /// tables — are shared with the new snapshot by `Arc`, so the new
    /// epoch's first re-grouping computes only the appended shard.
    pub fn append_shard(&self, shard: Relation) -> Result<Arc<ShardedRelation>> {
        let _writer = self.writer.lock();
        let mut next = (*self.snapshot()).clone();
        next.append_shard(shard)?;
        let next = Arc::new(next);
        *self.current.write() = Arc::clone(&next);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;

    fn schema() -> Vec<AttrId> {
        vec![AttrId(0), AttrId(1)]
    }

    fn batch(rows: &[[u32; 2]]) -> Relation {
        let rows: Vec<&[u32]> = rows.iter().map(|r| &r[..]).collect();
        Relation::from_rows(schema(), &rows).unwrap()
    }

    #[test]
    fn snapshots_are_pinned_while_appends_advance() {
        let store = ShardedStore::empty(schema()).unwrap();
        assert_eq!(store.epoch(), 0);
        let empty = store.snapshot();
        store.append_shard(batch(&[[1, 10], [2, 10]])).unwrap();
        store.append_shard(batch(&[[3, 20]])).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(empty.epoch(), 0);
        assert!(empty.is_empty());
        let now = store.snapshot();
        assert_eq!(now.len(), 3);
        assert_eq!(now.num_shards(), 2);
    }

    #[test]
    fn failed_append_leaves_the_current_snapshot_installed() {
        let store = ShardedStore::from_initial_shard(batch(&[[1, 1]])).unwrap();
        let wrong = Relation::new(vec![AttrId(0), AttrId(7)]).unwrap();
        assert!(store.append_shard(wrong).is_err());
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.snapshot().len(), 1);
    }

    #[test]
    fn appended_snapshots_share_existing_shards_and_their_caches() {
        let store = ShardedStore::from_initial_shard(batch(&[[1, 10], [2, 20]])).unwrap();
        let before = store.snapshot();
        let attrs = AttrSet::singleton(AttrId(0));
        before.group_ids(&attrs).unwrap(); // warm shard 0's table
        let after = store.append_shard(batch(&[[3, 30]])).unwrap();
        assert!(Arc::ptr_eq(&before.shards()[0], &after.shards()[0]));
        let warm = after.shard_cache_stats();
        assert_eq!(warm.misses, 1, "shard 0's table carried over");
        after.group_ids(&attrs).unwrap();
        let stats = after.shard_cache_stats();
        assert_eq!(stats.misses, 2, "only the new shard computed");
        assert_eq!(stats.hits, 1, "shard 0 answered from its warm table");
    }

    #[test]
    fn new_snapshot_grouping_matches_flat_rebuild() {
        let store = ShardedStore::from_initial_shard(batch(&[[1, 10], [2, 10]])).unwrap();
        store
            .snapshot()
            .group_ids(&AttrSet::from_slice(&schema()))
            .unwrap();
        let after = store.append_shard(batch(&[[1, 20], [2, 10]])).unwrap();
        let flat = after.collect().unwrap();
        let attrs = AttrSet::from_slice(&schema());
        let a = flat.group_ids(&attrs).unwrap();
        let b = after.group_ids(&attrs).unwrap();
        assert_eq!(a.row_ids(), b.row_ids());
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.group_codes(), b.group_codes());
    }
}
