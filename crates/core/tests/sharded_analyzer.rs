//! End-to-end equality of the full measure stack over sharded vs flat
//! inputs.
//!
//! `Analyzer`, `BatchAnalyzer` and `SchemaMiner` are generic over
//! [`ajd_relation::GroupKernel`]; these tests pin that an
//! [`ajd_relation::ShardedRelation`] drops into all of them **unchanged**
//! and produces bit-identical reports — every float compared by bit
//! pattern, not tolerance — on a warehouse-style fixture (the
//! `warehouse_schema` example's shape: orders × products × a dirty
//! city → region hierarchy).
//!
//! The CI `sharded-matrix` job runs this suite under
//! `AJD_TEST_SHARDS={1,3,8}` × `AJD_TEST_THREADS={1,4}`; the environment
//! values extend the fixed shard-count / budget lists below.

use ajd_core::{Analyzer, BatchAnalyzer, DiscoveryConfig, SchemaMiner};
use ajd_jointree::JoinTree;
use ajd_relation::{AttrId, AttrSet, Relation, ShardedRelation};

/// Reads a positive integer from the environment (the CI matrix knobs).
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 3, 5];
    if let Some(n) = env_usize("AJD_TEST_SHARDS") {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn batch_threads() -> Vec<usize> {
    let mut threads = vec![1usize, 4];
    if let Some(n) = env_usize("AJD_TEST_THREADS") {
        if n > 0 && !threads.contains(&n) {
            threads.push(n);
        }
    }
    threads
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// A denormalised warehouse "sales" relation over
/// (order, product, city, region): region is a function of city except for
/// a few dirty rows, products are sold independently of geography.
/// Deterministic xorshift so every run (and every matrix cell) sees the
/// same fixture.
fn warehouse_fixture(rows: u32, dirty: u32) -> Relation {
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, rows as usize).unwrap();
    let mut x = 0x2545_f491u32;
    for o in 0..rows {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let product = x % 8;
        let city = (x >> 8) % 12;
        let region = if o < dirty {
            (city % 3 + 1) % 3
        } else {
            city % 3
        };
        r.push_row(&[o, product, city, region]).unwrap();
    }
    r
}

/// The candidate schemas the warehouse example weighs against each other.
fn candidate_trees() -> Vec<JoinTree> {
    vec![
        // Snowflake: facts + city→region dimension.
        JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        // Star on the order key.
        JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        // Path through the hierarchy.
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
        // The trivial single-bag (lossless) schema.
        JoinTree::new(vec![bag(&[0, 1, 2, 3])], vec![]).unwrap(),
    ]
}

/// Every field of two loss reports must agree bit for bit.
fn assert_reports_identical(a: &ajd_core::LossReport, b: &ajd_core::LossReport, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_eq!(a.distinct_n, b.distinct_n, "{what}: distinct_n");
    assert_eq!(a.join_size, b.join_size, "{what}: join_size");
    assert_eq!(a.spurious, b.spurious, "{what}: spurious");
    assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "{what}: rho");
    assert_eq!(
        a.j_measure.to_bits(),
        b.j_measure.to_bits(),
        "{what}: j_measure"
    );
    assert_eq!(a.kl_nats.to_bits(), b.kl_nats.to_bits(), "{what}: kl");
    assert_eq!(
        a.prop51_bound.to_bits(),
        b.prop51_bound.to_bits(),
        "{what}: prop51"
    );
    assert_eq!(a.per_mvd.len(), b.per_mvd.len(), "{what}: per_mvd length");
    for (ma, mb) in a.per_mvd.iter().zip(&b.per_mvd) {
        assert_eq!(
            ma.cmi_nats.to_bits(),
            mb.cmi_nats.to_bits(),
            "{what}: per-MVD cmi"
        );
        assert_eq!(ma.rho.to_bits(), mb.rho.to_bits(), "{what}: per-MVD rho");
        assert_eq!(ma.domain_sizes, mb.domain_sizes, "{what}: per-MVD domains");
    }
}

#[test]
fn analyzer_reports_identical_on_sharded_and_flat_warehouse() {
    let flat = warehouse_fixture(2000, 25);
    let flat_analyzer = Analyzer::new(&flat);
    for n in shard_counts() {
        let sharded: ShardedRelation = flat.clone().into_shards(n).unwrap();
        let sharded_analyzer = Analyzer::new(&sharded);
        for (i, tree) in candidate_trees().iter().enumerate() {
            let a = flat_analyzer.analyze(tree).unwrap();
            let b = sharded_analyzer.analyze(tree).unwrap();
            assert_reports_identical(&a, &b, &format!("shards={n} tree={i}"));
        }
        // Scalar measures route through the same generic path.
        let y = bag(&[2, 3]);
        assert_eq!(
            flat_analyzer.entropy(&y).unwrap().to_bits(),
            sharded_analyzer.entropy(&y).unwrap().to_bits()
        );
        assert!(sharded_analyzer.cache_stats().hits > 0);
    }
}

#[test]
fn batch_analyzer_over_shards_matches_flat_at_every_thread_budget() {
    let flat = warehouse_fixture(1500, 10);
    let trees = candidate_trees();
    let flat_reports = BatchAnalyzer::new(&flat)
        .with_threads(1)
        .analyze_all(&trees);
    for n in shard_counts() {
        let sharded = flat.clone().into_shards(n).unwrap();
        for t in batch_threads() {
            let batch = BatchAnalyzer::new(&sharded).with_threads(t);
            let reports = batch.analyze_all(&trees);
            for (i, (a, b)) in flat_reports.iter().zip(&reports).enumerate() {
                assert_reports_identical(
                    a.as_ref().unwrap(),
                    b.as_ref().unwrap(),
                    &format!("shards={n} threads={t} tree={i}"),
                );
            }
        }
    }
}

#[test]
fn mining_a_sharded_warehouse_finds_the_flat_schema() {
    let flat = warehouse_fixture(800, 5);
    let config = DiscoveryConfig {
        j_threshold: 0.05,
        ..DiscoveryConfig::default()
    };
    let flat_mined = SchemaMiner::new(config.clone()).mine(&flat).unwrap();
    for n in shard_counts() {
        let sharded = flat.clone().into_shards(n).unwrap();
        let mined = SchemaMiner::new(config.clone())
            .mine_with(&BatchAnalyzer::new(&sharded))
            .unwrap();
        assert_eq!(
            mined.j_measure.to_bits(),
            flat_mined.j_measure.to_bits(),
            "shards={n}: mined J differs"
        );
        assert_eq!(
            mined.tree.bags(),
            flat_mined.tree.bags(),
            "shards={n}: mined schema differs"
        );
    }
}

#[test]
fn sharded_analyzer_via_analyzer_mine_matches_flat() {
    let flat = warehouse_fixture(600, 3);
    let sharded = flat.clone().into_shards(4).unwrap();
    let a = Analyzer::new(&flat)
        .mine(DiscoveryConfig::default())
        .unwrap();
    let b = Analyzer::new(&sharded)
        .mine(DiscoveryConfig::default())
        .unwrap();
    assert_eq!(a.j_measure.to_bits(), b.j_measure.to_bits());
    assert_eq!(a.tree.bags(), b.tree.bags());
}
