//! Experiment `ex41_tightness` — Example 4.1: the family on which the
//! Lemma 4.1 lower bound is tight.
//!
//! For the bijection relation `R = {(aᵢ,bᵢ) : i ∈ [N]}` and the schema
//! `S = {{A},{B}}`:  `J(S) = I(A;B) = log N` and `ρ(R,S) = N − 1`, so
//! `J = log(1 + ρ)` exactly, for every `N ≥ 2`.

use ajd_bench::harness::ExperimentArgs;
use ajd_bench::table::{f, Table};
use ajd_core::Analyzer;
use ajd_jointree::JoinTree;
use ajd_random::generators::bijection_relation;
use ajd_relation::{AttrId, AttrSet};

fn main() {
    let args = ExperimentArgs::from_env();
    let sizes: Vec<u32> = if args.quick {
        vec![2, 16, 256]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    };

    let tree = JoinTree::from_acyclic_schema(&[
        AttrSet::singleton(AttrId(0)),
        AttrSet::singleton(AttrId(1)),
    ])
    .expect("{{A},{B}} is acyclic");

    let mut table = Table::new(
        "Example 4.1: bijection relation, schema {{A},{B}} (nats)",
        &[
            "N",
            "spurious",
            "rho",
            "J",
            "log1p_rho",
            "gap",
            "lb_rho(e^J-1)",
        ],
    );

    for n in sizes {
        let r = bijection_relation(n);
        let rep = Analyzer::new(&r)
            .analyze(&tree)
            .expect("analysis of the bijection relation");
        table.push_row(vec![
            n.to_string(),
            rep.spurious.to_string(),
            f(rep.rho),
            f(rep.j_measure),
            f(rep.log1p_rho),
            format!("{:+.2e}", rep.lemma41_gap()),
            f(rep.rho_lower_bound),
        ]);
    }

    table.emit(args.csv_dir.as_deref(), "ex41_tightness");
    println!(
        "Paper's shape: gap = log(1+rho) - J is identically 0 (up to floating point)\n\
         and the Lemma 4.1 lower bound e^J - 1 equals the true loss rho = N - 1."
    );
}
