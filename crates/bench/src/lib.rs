//! # ajd-bench
//!
//! Experiment harness and micro-benchmarks for the reproduction of
//! *"Quantifying the Loss of Acyclic Join Dependencies"* (PODS 2023).
//!
//! The paper's evaluation artefact is **Figure 1** (mutual information vs
//! `log(1+ρ)` under the random relation model); every quantitative theorem
//! is additionally treated as an experiment whose empirical "shape" we
//! regenerate.  Each experiment is a binary under `src/bin/` that prints a
//! column-aligned table (and writes a CSV next to it when `--csv DIR` is
//! given); the Criterion benches under `benches/` measure the performance of
//! the substrate operations and the counting-vs-materialising ablation.
//!
//! | Binary | Paper artefact |
//! |--------|----------------|
//! | `exp_fig1`                  | Figure 1 |
//! | `exp_lower_bound_tightness` | Example 4.1 (tightness of Lemma 4.1) |
//! | `exp_lower_bound_validity`  | Lemma 4.1 on random relations |
//! | `exp_kl_equals_j`           | Theorem 3.2 |
//! | `exp_entropy_concentration` | Theorem 5.2 / Proposition 5.4 |
//! | `exp_mvd_upper_bound`       | Theorem 5.1 |
//! | `exp_mvd_chain`             | Proposition 5.1 |
//! | `exp_schema_upper_bound`    | Proposition 5.3 |
//! | `exp_discovery`             | §1 motivation (schema discovery, ref. \[14\]) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod perf;
pub mod stats;
pub mod table;

pub use harness::{parallel_trials, ExperimentArgs};
pub use perf::{time_median, BenchJson, BenchRecord};
pub use stats::Summary;
pub use table::Table;
