//! The server-side catalog of named relations.
//!
//! A [`RelationStore`] is one catalog entry: a name, an
//! [`ajd_relation::Catalog`] (attribute names, so requests can address
//! columns by label), and the relation data itself — either a flat
//! [`Relation`] or a [`ShardedRelation`].  The [`crate::Server`] builds one
//! `Analyzer` + shared `AnalysisContext` per store at startup and keeps it
//! hot for the lifetime of the process, so every query against the same
//! entry shares one memoized grouping cache.
//!
//! Stores are constructed *before* the server (the server borrows them),
//! which keeps the whole stack free of self-referential ownership: load the
//! catalog, hand a slice of stores to [`crate::Server::new`], run.

use ajd_relation::io::{read_delimited, read_delimited_from, read_delimited_sharded};
use ajd_relation::{
    Catalog, ReadOptions, Relation, RelationError, Result, ShardPolicy, ShardedRelation,
};
use std::path::Path;

/// The relation data of one catalog entry: the two storage layouts the
/// analysis stack is generic over.
#[derive(Debug, Clone)]
pub enum StoreData {
    /// A flat, single-buffer columnar relation.
    Flat(Relation),
    /// An ordered list of self-contained shards (bit-identical to the flat
    /// layout for every measure).
    Sharded(ShardedRelation),
}

impl StoreData {
    /// Number of tuples.
    pub fn num_rows(&self) -> usize {
        match self {
            StoreData::Flat(r) => r.len(),
            StoreData::Sharded(s) => s.len(),
        }
    }

    /// Number of attributes per tuple.
    pub fn arity(&self) -> usize {
        match self {
            StoreData::Flat(r) => r.arity(),
            StoreData::Sharded(s) => s.arity(),
        }
    }

    /// `true` if the entry is shard-backed.
    pub fn is_sharded(&self) -> bool {
        matches!(self, StoreData::Sharded(_))
    }

    /// Number of shards (1 for flat storage).
    pub fn num_shards(&self) -> usize {
        match self {
            StoreData::Flat(_) => 1,
            StoreData::Sharded(s) => s.num_shards(),
        }
    }
}

/// One named relation served by the catalog: name + attribute catalog +
/// data.
#[derive(Debug, Clone)]
pub struct RelationStore {
    name: String,
    catalog: Catalog,
    data: StoreData,
}

impl RelationStore {
    /// Wraps a flat relation.  The catalog must name exactly the relation's
    /// attributes (arity checked here so a mismatch fails at load time, not
    /// per-request).
    pub fn flat(name: impl Into<String>, catalog: Catalog, relation: Relation) -> Result<Self> {
        Self::build(name.into(), catalog, StoreData::Flat(relation))
    }

    /// Wraps a sharded relation.
    pub fn sharded(
        name: impl Into<String>,
        catalog: Catalog,
        relation: ShardedRelation,
    ) -> Result<Self> {
        Self::build(name.into(), catalog, StoreData::Sharded(relation))
    }

    /// Wraps a flat relation whose attributes have no external names,
    /// generating the positional names `x0, x1, …` (the same convention as
    /// headerless delimited reads).
    pub fn flat_unnamed(name: impl Into<String>, relation: Relation) -> Result<Self> {
        let catalog = Catalog::with_attributes((0..relation.arity()).map(|i| format!("x{i}")))?;
        Self::flat(name, catalog, relation)
    }

    /// Parses in-memory delimited text (see
    /// [`ajd_relation::io::read_delimited`]) into a flat store.
    pub fn from_delimited(
        name: impl Into<String>,
        text: &str,
        options: ReadOptions,
    ) -> Result<Self> {
        let (catalog, relation) = read_delimited(text, options)?;
        Self::flat(name, catalog, relation)
    }

    /// Streams a delimited file into a flat store
    /// (see [`ajd_relation::io::read_delimited_from`]).
    pub fn from_delimited_path(
        name: impl Into<String>,
        path: impl AsRef<Path>,
        options: ReadOptions,
    ) -> Result<Self> {
        let (catalog, relation) = read_delimited_from(path, options)?;
        Self::flat(name, catalog, relation)
    }

    /// Streams a delimited file straight into shard-local storage under a
    /// [`ShardPolicy`] (see [`ajd_relation::io::read_delimited_sharded`]).
    pub fn from_delimited_sharded(
        name: impl Into<String>,
        path: impl AsRef<Path>,
        options: ReadOptions,
        policy: ShardPolicy,
    ) -> Result<Self> {
        let (catalog, relation) = read_delimited_sharded(path, options, policy)?;
        Self::sharded(name, catalog, relation)
    }

    fn build(name: String, catalog: Catalog, data: StoreData) -> Result<Self> {
        if name.is_empty() {
            return Err(RelationError::EmptyInput("relation store name"));
        }
        if catalog.arity() != data.arity() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "catalog for store '{name}' names {} attributes but the relation has {}",
                    catalog.arity(),
                    data.arity()
                ),
            });
        }
        Ok(RelationStore {
            name,
            catalog,
            data,
        })
    }

    /// The catalog name queries address this relation by.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names and value dictionaries of this relation.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The stored relation data.
    pub fn data(&self) -> &StoreData {
        &self.data
    }

    /// Attribute names in schema order.
    pub fn attribute_names(&self) -> Vec<String> {
        self.catalog.names().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::AttrId;

    const CSV: &str = "\
city,region
haifa,north
eilat,south
acre,north
";

    #[test]
    fn delimited_text_builds_a_flat_store() {
        let store = RelationStore::from_delimited("geo", CSV, ReadOptions::default()).unwrap();
        assert_eq!(store.name(), "geo");
        assert_eq!(store.data().num_rows(), 3);
        assert_eq!(store.data().arity(), 2);
        assert!(!store.data().is_sharded());
        assert_eq!(store.data().num_shards(), 1);
        assert_eq!(store.attribute_names(), vec!["city", "region"]);
        assert_eq!(store.catalog().attr("region").unwrap(), AttrId(1));
    }

    #[test]
    fn unnamed_relations_get_positional_names() {
        let r =
            Relation::from_rows(vec![AttrId(0), AttrId(1)], &[&[0, 1][..], &[1, 0][..]]).unwrap();
        let store = RelationStore::flat_unnamed("anon", r).unwrap();
        assert_eq!(store.attribute_names(), vec!["x0", "x1"]);
    }

    #[test]
    fn arity_mismatch_and_empty_name_fail_at_load_time() {
        let r = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[&[0, 1][..]]).unwrap();
        let wrong = Catalog::with_attributes(["only_one"]).unwrap();
        assert!(matches!(
            RelationStore::flat("bad", wrong, r.clone()),
            Err(RelationError::SchemaMismatch { .. })
        ));
        let ok = Catalog::with_attributes(["a", "b"]).unwrap();
        assert!(matches!(
            RelationStore::flat("", ok, r),
            Err(RelationError::EmptyInput(_))
        ));
    }

    #[test]
    fn sharded_store_reports_its_layout() {
        let r = Relation::from_rows(
            vec![AttrId(0), AttrId(1)],
            &[&[0, 1][..], &[1, 0][..], &[2, 1][..], &[3, 0][..]],
        )
        .unwrap();
        let catalog = Catalog::with_attributes(["a", "b"]).unwrap();
        let sharded = r.into_shards(2).unwrap();
        let store = RelationStore::sharded("s", catalog, sharded).unwrap();
        assert!(store.data().is_sharded());
        assert_eq!(store.data().num_shards(), 2);
        assert_eq!(store.data().num_rows(), 4);
    }
}
