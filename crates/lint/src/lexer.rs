//! A hand-rolled Rust source scrubber.
//!
//! The rule engine never wants to see the *contents* of comments, string
//! literals or char literals: a `thread::spawn` inside a doc comment or a
//! `.unwrap()` inside a raw-string test fixture is not a violation.  This
//! module reduces a `.rs` file to a per-line model:
//!
//! * `scrubbed` — the code with comments removed and string/char literal
//!   contents blanked (the delimiting quotes are kept, so patterns like
//!   `.expect("` still read naturally at call sites).
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` (or
//!   `#[test]`) item, tracked by brace depth so nested test modules and
//!   test functions inside production files are excluded from
//!   production-only rules.
//! * `comments` — the bodies of `//` line comments on the line, from which
//!   the engine parses `ajd: allow(...)` waivers.  Doc comments (`///`,
//!   `//!`) yield bodies starting with `/` or `!` and therefore never parse
//!   as waivers, so documentation *about* the waiver syntax is inert.
//!
//! The lexer understands line comments, nested block comments, cooked
//! strings with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth),
//! byte and raw-byte strings, char and byte-char literals, and tells
//! lifetimes (`'a`) apart from char literals (`'x'`).  It is resilient by
//! construction: on malformed input it degrades to emitting characters
//! verbatim rather than panicking.

/// The per-line result of scrubbing one source file.
#[derive(Debug, Clone)]
pub struct LineModel {
    /// Code with comments stripped and literal contents blanked.
    pub scrubbed: String,
    /// Whether the line is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
    /// Bodies of `//` comments that end on this line.
    pub comments: Vec<String>,
}

/// Lexer state between characters.
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Cooked string; `true` while the next char is escaped.
    Str(bool),
    /// Raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrubs `source` into per-line models (comments out, literals blanked,
/// test regions marked).  Line numbering matches the input exactly, so a
/// finding at `lines[i]` reports source line `i + 1`.
pub fn scrub(source: &str) -> Vec<LineModel> {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut lines: Vec<LineModel> = Vec::new();
    let mut cur = String::new();
    let mut cur_comments: Vec<String> = Vec::new();
    let mut comment_buf = String::new();
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(LineModel {
                scrubbed: std::mem::take(&mut cur),
                in_test: false,
                comments: std::mem::take(&mut cur_comments),
            });
        };
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                cur_comments.push(std::mem::take(&mut comment_buf));
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    comment_buf.clear();
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if (c == 'r' || (c == 'b' && next == Some('r')))
                    && !(i > 0 && is_ident(chars[i - 1]))
                {
                    // Candidate raw (byte) string: r", r#", br", br##"…
                    let mut j = if c == 'r' { i + 1 } else { i + 2 };
                    let mut hashes = 0u32;
                    while j < n && chars[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        cur.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        // Raw identifier (r#foo) or a plain ident char.
                        cur.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    cur.push('"');
                    state = State::Str(false);
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: step over the escape body
                        // (`\'`, `\n`, `\x7f`, `\u{…}`), then expect the
                        // closing quote; on malformed input fall back to
                        // emitting the quote verbatim.
                        let mut j = i + 2;
                        match chars.get(j) {
                            Some('x') => j += 3,
                            Some('u') => {
                                while j < n && chars[j] != '}' && j < i + 12 {
                                    j += 1;
                                }
                                j += 1;
                            }
                            Some(_) => j += 1,
                            None => {}
                        }
                        if chars.get(j) == Some(&'\'') {
                            cur.push_str("''");
                            i = j + 1;
                        } else {
                            cur.push(c);
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        cur.push_str("''");
                        i += 3;
                    } else {
                        // Lifetime or loop label: emit verbatim.
                        cur.push(c);
                        i += 1;
                    }
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                    i += 1;
                } else if c == '\\' {
                    state = State::Str(true);
                    i += 1;
                } else if c == '"' {
                    cur.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let h = hashes as usize;
                    let closed = (1..=h).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        cur.push('"');
                        state = State::Code;
                        i += 1 + h;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    if matches!(state, State::LineComment) {
        cur_comments.push(std::mem::take(&mut comment_buf));
    }
    if !cur.is_empty() || !cur_comments.is_empty() || lines.is_empty() {
        flush_line!();
    }

    mark_test_regions(&mut lines);
    lines
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item.
///
/// A test attribute arms a pending flag; the next `{` opens a region at the
/// current brace depth; the matching `}` closes it.  Regions nest (a
/// `#[cfg(test)]` module inside another one is one stack entry deeper), and
/// an attribute consumed by a braceless item (`#[cfg(test)] use foo;`)
/// disarms at the `;`.
fn mark_test_regions(lines: &mut [LineModel]) {
    let mut depth: i64 = 0;
    let mut regions: Vec<i64> = Vec::new();
    let mut pending = false;
    for line in lines.iter_mut() {
        // `active` latches if the line is inside a region at any point, so
        // a region opened *and* closed on one line (`fn t() { … }` under
        // `#[test]`) still marks that line.
        let mut active = !regions.is_empty();
        let s: Vec<char> = line.scrubbed.chars().collect();
        let mut touched_test = false;
        let mut i = 0;
        while i < s.len() {
            if s[i] == '#' {
                let rest: String = s[i..].iter().collect();
                if rest.starts_with("#[cfg(test")
                    || rest.starts_with("#[test]")
                    || rest.starts_with("#[cfg(all(test")
                    || rest.starts_with("#[cfg(any(test")
                {
                    pending = true;
                    touched_test = true;
                }
                i += 1;
                continue;
            }
            match s[i] {
                '{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                ';' => {
                    // A `;` before any `{` means the attribute decorated a
                    // braceless item (`#[cfg(test)] use …;`).
                    pending = false;
                }
                _ => {}
            }
            if !regions.is_empty() {
                active = true;
            }
            i += 1;
        }
        line.in_test = active || pending || touched_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(src: &str) -> Vec<String> {
        scrub(src).into_iter().map(|l| l.scrubbed).collect()
    }

    #[test]
    fn line_comments_are_stripped_and_captured() {
        let lines = scrub("let x = 1; // thread::spawn here\n");
        assert_eq!(lines[0].scrubbed, "let x = 1; ");
        assert_eq!(lines[0].comments, vec![" thread::spawn here".to_owned()]);
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let s = scrubbed("a /* one /* two */ still */ b\nc /* open\n.unwrap()\n*/ d\n");
        assert_eq!(s[0], "a  b");
        assert_eq!(s[1], "c ");
        assert_eq!(s[2], "");
        assert_eq!(s[3], " d");
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_remain() {
        let s = scrubbed(r#"call(".unwrap() inside", x);"#);
        assert_eq!(s[0], r#"call("", x);"#);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let s = scrubbed("let f = r#\"fn bad() { x.unwrap() }\"#;\n");
        assert_eq!(s[0], "let f = \"\";");
        let s = scrubbed("let g = br##\"thread::spawn(\"##;\n");
        assert_eq!(s[0], "let g = \"\";");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = scrubbed(r#"let x = "a\"b.unwrap()"; y();"#);
        assert_eq!(s[0], r#"let x = ""; y();"#);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let s = scrubbed("fn f<'a>(x: &'a str) -> char { '[' }\n");
        assert_eq!(s[0], "fn f<'a>(x: &'a str) -> char { '' }");
        let s = scrubbed(r"let q = '\''; let b = b'['; let u = '\u{1F600}';");
        assert_eq!(s[0], "let q = ''; let b = b''; let u = '';");
    }

    #[test]
    fn cfg_test_region_is_tracked_with_nesting() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() {}\n\
                       #[cfg(test)]\n\
                       mod inner { fn deep() {} }\n\
                       fn late() {}\n\
                   }\n\
                   fn prod2() {}\n";
        let lines = scrub(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(
            flags,
            vec![false, true, true, true, true, true, true, true, false]
        );
    }

    #[test]
    fn test_attribute_marks_single_function() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn prod() {}\n";
        let lines = scrub(src);
        assert!(lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let lines = scrub(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn doc_comments_never_parse_as_plain_comment_waivers() {
        let lines = scrub("/// ajd: allow(x, \"y\")\nfn f() {}\n");
        assert_eq!(lines[0].comments, vec!["/ ajd: allow(x, \"y\")".to_owned()]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let s = scrubbed("let r#fn = 1; let r = 2;\n");
        assert_eq!(s[0], "let r#fn = 1; let r = 2;");
    }

    #[test]
    fn file_without_trailing_newline_keeps_last_line() {
        let lines = scrub("let a = 1;");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].scrubbed, "let a = 1;");
    }
}
