//! Attributes and attribute sets.
//!
//! The paper denotes the attribute (variable) set of a relation by
//! `Ω = {X₁,…,Xₙ}` and constantly manipulates subsets of it: the bags
//! `Ωᵢ = χ(uᵢ)` of a join tree, the separators `Δᵢ`, the sides of an MVD
//! `C ↠ A|B`, and so on.  [`AttrSet`] is a small, always-sorted, duplicate
//! free vector of [`AttrId`]s supporting the set algebra those definitions
//! need.  Attribute sets in this problem domain are tiny (rarely more than a
//! few dozen attributes), so a sorted `Vec` beats any tree/hash structure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an attribute (a column / random variable `Xᵢ`).
///
/// Attribute identifiers are dense small integers assigned by the caller or
/// by a [`crate::Catalog`].  They are meaningful only within one analysis
/// context (one universal relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl From<u32> for AttrId {
    fn from(v: u32) -> Self {
        AttrId(v)
    }
}

impl From<usize> for AttrId {
    fn from(v: usize) -> Self {
        AttrId(u32::try_from(v).expect("attribute index exceeds u32"))
    }
}

/// A sorted, duplicate-free set of attributes (`Y ⊆ Ω` in the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrSet {
    ids: Vec<AttrId>,
}

impl AttrSet {
    /// The empty attribute set.
    pub fn empty() -> Self {
        AttrSet { ids: Vec::new() }
    }

    /// Builds a set from arbitrary (possibly unsorted, possibly duplicated)
    /// attribute ids.
    pub fn from_slice(ids: &[AttrId]) -> Self {
        let mut v = ids.to_vec();
        v.sort_unstable();
        v.dedup();
        AttrSet { ids: v }
    }

    /// Builds a set from raw `u32` ids.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        let v: Vec<AttrId> = ids.into_iter().map(AttrId).collect();
        Self::from_slice(&v)
    }

    /// The set `{X₀, …, X_{n-1}}` of the first `n` attributes.
    pub fn range(n: usize) -> Self {
        AttrSet {
            ids: (0..n as u32).map(AttrId).collect(),
        }
    }

    /// Singleton set `{a}`.
    pub fn singleton(a: AttrId) -> Self {
        AttrSet { ids: vec![a] }
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The attributes in ascending order.
    #[inline]
    pub fn as_slice(&self) -> &[AttrId] {
        &self.ids
    }

    /// Iterates over the attributes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.ids.iter().copied()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        self.ids.binary_search(&a).is_ok()
    }

    /// Inserts an attribute, keeping the set sorted. Returns `true` if newly
    /// inserted.
    pub fn insert(&mut self, a: AttrId) -> bool {
        match self.ids.binary_search(&a) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, a);
                true
            }
        }
    }

    /// Removes an attribute. Returns `true` if it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        match self.ids.binary_search(&a) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Set union `self ∪ other` (written `XY` in the paper).
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        AttrSet { ids: out }
    }

    /// Set intersection `self ∩ other`.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AttrSet { ids: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() {
            if j >= other.ids.len() || self.ids[i] < other.ids[j] {
                out.push(self.ids[i]);
                i += 1;
            } else if self.ids[i] > other.ids[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        AttrSet { ids: out }
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &AttrSet) -> bool {
        let mut j = 0;
        for &a in &self.ids {
            loop {
                if j >= other.ids.len() {
                    return false;
                }
                match other.ids[j].cmp(&a) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// `true` if `self ⊂ other` strictly.
    pub fn is_proper_subset_of(&self, other: &AttrSet) -> bool {
        self.len() < other.len() && self.is_subset_of(other)
    }

    /// `true` if the two sets share no attribute.
    pub fn is_disjoint_from(&self, other: &AttrSet) -> bool {
        self.intersection(other).is_empty()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        let v: Vec<AttrId> = iter.into_iter().collect();
        AttrSet::from_slice(&v)
    }
}

impl From<&[AttrId]> for AttrSet {
    fn from(s: &[AttrId]) -> Self {
        AttrSet::from_slice(s)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_slice_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 1, 3]);
        assert_eq!(s.as_slice(), &[AttrId(1), AttrId(2), AttrId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(AttrSet::empty().is_empty());
        let s = AttrSet::singleton(AttrId(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(AttrId(7)));
        assert!(!s.contains(AttrId(6)));
    }

    #[test]
    fn range_covers_prefix() {
        let s = AttrSet::range(4);
        assert_eq!(s.as_slice(), &[AttrId(0), AttrId(1), AttrId(2), AttrId(3)]);
    }

    #[test]
    fn union_is_sorted_merge() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 6]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 5, 6]));
        assert_eq!(a.union(&AttrSet::empty()), a);
    }

    #[test]
    fn intersection_and_difference() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[2, 4, 6]);
        assert_eq!(a.intersection(&b), set(&[2, 4]));
        assert_eq!(a.difference(&b), set(&[1, 3]));
        assert_eq!(b.difference(&a), set(&[6]));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(a.is_proper_subset_of(&b));
        assert!(!a.is_proper_subset_of(&a));
        assert!(AttrSet::empty().is_subset_of(&a));
    }

    #[test]
    fn disjointness() {
        assert!(set(&[1, 2]).is_disjoint_from(&set(&[3, 4])));
        assert!(!set(&[1, 2]).is_disjoint_from(&set(&[2, 3])));
        assert!(AttrSet::empty().is_disjoint_from(&set(&[1])));
    }

    #[test]
    fn insert_remove_keep_order() {
        let mut s = set(&[1, 3]);
        assert!(s.insert(AttrId(2)));
        assert!(!s.insert(AttrId(2)));
        assert_eq!(s.as_slice(), &[AttrId(1), AttrId(2), AttrId(3)]);
        assert!(s.remove(AttrId(1)));
        assert!(!s.remove(AttrId(1)));
        assert_eq!(s.as_slice(), &[AttrId(2), AttrId(3)]);
    }

    #[test]
    fn display_formats() {
        let s = set(&[0, 2]);
        assert_eq!(format!("{s}"), "{X0,X2}");
        assert_eq!(format!("{}", AttrId(5)), "X5");
    }
}
