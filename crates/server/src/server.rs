//! The server core: per-relation analyzers, request dispatch, and the
//! threaded TCP accept loop.
//!
//! A [`Server`] borrows a slice of [`RelationStore`]s built by the caller
//! and constructs, once at startup, one analyzer per entry: flat stores
//! get a plain [`Analyzer`] (with its shared, single-flight
//! [`AnalysisContext`](ajd_relation::AnalysisContext) cache), sharded
//! stores get a [`LiveAnalyzer`] over an epoch-snapshot
//! [`ShardedStore`].  Every request against the same relation then flows
//! through the same memoized grouping cache — N concurrent cold queries
//! on one attribute set cost exactly one computation, and the `stats`
//! frame proves it with hit/miss counters.
//!
//! Sharded entries are **live**: the `append` op ingests a batch of rows
//! as one new shard and advances the entry's epoch.  Readers keep pinning
//! consistent snapshots while the append installs; thanks to the two-tier
//! cache (per-shard group tables + per-epoch merged results) the first
//! query after an append re-groups only the appended shard, which the
//! per-tier counters in `stats` make observable.
//!
//! Dispatch is transport-free: [`Server::handle_line`] maps one request
//! line to one response frame and is what both the TCP loop and the
//! integration tests call.  [`Server::serve`] adds the wire: a blocking
//! accept loop that spawns one scoped thread per connection, reading
//! line-delimited JSON requests and writing one response line each, in
//! order.  A malformed line is answered with an error frame — the
//! connection is **never** closed on a protocol error.

use crate::admission::{Admission, AdmissionConfig, PoolStats};
use crate::json::Json;
use crate::protocol::{
    error_frame, ok_frame, u128_field, ErrorCode, EstimateTarget, Failure, Request,
};
use crate::store::{RelationStore, StoreData};
use ajd_core::{
    Analyzer, DiscoveryConfig, EstimateConfig, EstimatedAnalyzer, LiveAnalyzer, LossReport,
    SchemaMiner,
};
use ajd_jointree::JoinTree;
use ajd_relation::{
    AttrSet, CacheStats, Catalog, Relation, ShardCacheStats, ShardedStore, ThreadBudget,
};
use ajd_sync::atomic::{AtomicBool, Ordering};
use ajd_sync::RwLock;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// Server tuning knobs.  The admission config sizes the two request-class
/// pools and the per-request kernel thread budgets; see
/// [`AdmissionConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Admission pools and kernel thread budgets.
    pub admission: AdmissionConfig,
}

/// A cooperative stop signal for [`Server::serve`].
///
/// `serve` blocks in `accept`; to stop it, call [`ShutdownToken::signal`]
/// with the listener's address — it sets the flag and opens (then
/// immediately drops) one dummy connection so the accept loop wakes up,
/// observes the flag, and returns after in-flight connections finish.
#[derive(Debug, Default)]
pub struct ShutdownToken {
    flag: AtomicBool,
}

impl ShutdownToken {
    /// A token in the "keep running" state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` once [`ShutdownToken::signal`] or [`ShutdownToken::request`]
    /// has been called.
    pub fn is_signalled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Sets the shutdown flag without waking any accept loop.
    ///
    /// Use this for in-process shutdown when no listener is blocked in
    /// `accept` (workers that poll [`ShutdownToken::is_signalled`]), or
    /// from tests that exercise the flag without a network.  To stop a
    /// running [`Server::serve`], use [`ShutdownToken::signal`] instead.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Requests shutdown of the server accepting on `addr`.
    pub fn signal(&self, addr: SocketAddr) {
        self.request();
        // Unblock the accept loop; the connection is dropped unused.
        drop(TcpStream::connect(addr));
    }
}

/// One catalog entry's long-lived analyzer: the two kernel instantiations
/// the storage layouts need.
///
/// Flat stores are immutable, so their analyzer borrows the relation for
/// the server's lifetime.  Sharded stores are live: the server clones the
/// relation into an epoch-snapshot [`ShardedStore`] (shards are
/// `Arc`-shared, so the clone is cheap) and serves queries through a
/// [`LiveAnalyzer`] whose pinned snapshots survive concurrent appends.
enum EntryAnalyzer<'a> {
    Flat(Analyzer<&'a Relation>),
    Live(LiveAnalyzer),
}

struct Entry<'a> {
    store: &'a RelationStore,
    /// The entry's working catalog.  Appends intern new value labels, so
    /// sharded entries need a writable copy; for flat entries it is simply
    /// a snapshot of the store's catalog (attribute names never change).
    catalog: RwLock<Catalog>,
    analyzer: EntryAnalyzer<'a>,
}

impl Entry<'_> {
    /// Rows and shards as of *now* (a live entry's counts advance with
    /// every append; a flat entry's never do).
    fn rows_and_shards(&self) -> (usize, usize) {
        match &self.analyzer {
            EntryAnalyzer::Flat(_) => {
                (self.store.data().num_rows(), self.store.data().num_shards())
            }
            EntryAnalyzer::Live(live) => {
                let snap = live.store().snapshot();
                (snap.len(), snap.num_shards())
            }
        }
    }
}

/// Runs `$body` with `$an` bound to a reference to the entry's analyzer,
/// whichever kernel it is instantiated over (the body must be generic in
/// the source type).  For live entries this pins the current epoch's
/// snapshot: the whole `$body` answers from one consistent snapshot even
/// if an append lands mid-request.
macro_rules! with_analyzer {
    ($entry:expr, |$an:ident| $body:expr) => {
        match &$entry.analyzer {
            EntryAnalyzer::Flat($an) => $body,
            EntryAnalyzer::Live(live) => {
                let pinned = live.pin();
                let $an = &pinned;
                $body
            }
        }
    };
}

/// The query front-end: a catalog of relations, one shared analysis cache
/// per entry, and budget-aware admission control.
///
/// The server borrows its stores (`'a`), which keeps ownership simple and
/// self-reference-free: build the stores, then the server, then serve.
/// See the crate docs for a complete transport-free example.
pub struct Server<'a> {
    entries: Vec<Entry<'a>>,
    admission: Admission,
    config: AdmissionConfig,
}

impl<'a> Server<'a> {
    /// Builds a server over `stores` (one analyzer + cache per entry).
    ///
    /// Point-query analyzers compute cache misses under the
    /// `point_threads` budget of the (clamped) admission config.  Fails
    /// with [`ErrorCode::InvalidSchema`]-class library errors only if two
    /// stores share a name.
    pub fn new(
        stores: &'a [RelationStore],
        config: ServerConfig,
    ) -> Result<Self, ajd_relation::RelationError> {
        let admission_config = config.admission.clamped();
        let point_budget = ThreadBudget::new(admission_config.point_threads);
        let mut entries = Vec::with_capacity(stores.len());
        for store in stores {
            if entries
                .iter()
                .any(|e: &Entry<'_>| e.store.name() == store.name())
            {
                return Err(ajd_relation::RelationError::SchemaMismatch {
                    detail: format!("duplicate relation name '{}' in catalog", store.name()),
                });
            }
            let analyzer = match store.data() {
                StoreData::Flat(r) => {
                    EntryAnalyzer::Flat(Analyzer::with_thread_budget(r, point_budget))
                }
                StoreData::Sharded(s) => EntryAnalyzer::Live(LiveAnalyzer::with_thread_budget(
                    Arc::new(ShardedStore::new(s.clone())),
                    point_budget,
                )),
            };
            entries.push(Entry {
                store,
                catalog: RwLock::new(store.catalog().clone()),
                analyzer,
            });
        }
        Ok(Server {
            entries,
            admission: Admission::new(&admission_config),
            config: admission_config,
        })
    }

    /// The admission config the server runs with (after clamping).
    pub fn admission_config(&self) -> &AdmissionConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Dispatch (transport-free)
    // ------------------------------------------------------------------

    /// Answers one request line with one response frame.
    ///
    /// This is the whole protocol minus the socket: parse, dispatch,
    /// envelope.  Errors — including a line that is not valid JSON — come
    /// back as structured error frames, never panics.
    pub fn handle_line(&self, line: &str) -> Json {
        let frame = match Json::parse(line) {
            Ok(frame) => frame,
            Err(err) => {
                return error_frame(
                    None,
                    &Failure::new(ErrorCode::BadRequest, format!("invalid JSON: {err}")),
                )
            }
        };
        let (id, parsed) = Request::parse(&frame);
        let request = match parsed {
            Ok(request) => request,
            Err(failure) => return error_frame(id.clone(), &failure),
        };
        match self.dispatch(&request) {
            Ok(fields) => ok_frame(id, fields),
            Err(failure) => error_frame(id, &failure),
        }
    }

    fn dispatch(&self, request: &Request) -> Result<Vec<(String, Json)>, Failure> {
        match request {
            Request::Catalog => Ok(self.catalog_fields()),
            Request::Stats { relation } => self.stats_fields(relation.as_deref()),
            Request::Entropy { relation, attrs } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let set = entry
                    .catalog
                    .read()
                    .attrs(attrs.iter())
                    .map_err(|e| Failure::from_relation_error(&e))?;
                let nats = with_analyzer!(entry, |an| an.entropy(&set))
                    .map_err(|e| Failure::from_relation_error(&e))?;
                Ok(vec![
                    ("op".to_owned(), Json::str("entropy")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    (
                        "attrs".to_owned(),
                        Json::Arr(attrs.iter().map(Json::str).collect()),
                    ),
                    ("entropy_nats".to_owned(), Json::Num(nats)),
                ])
            }
            Request::Loss { relation, schema } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let tree =
                    resolve_schema(&entry.catalog.read(), entry.store.data().arity(), schema)?;
                let rho = with_analyzer!(entry, |an| an.loss(&tree))
                    .map_err(|e| Failure::from_relation_error(&e))?;
                Ok(vec![
                    ("op".to_owned(), Json::str("loss")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    ("rho".to_owned(), Json::Num(rho)),
                    ("log1p_rho".to_owned(), Json::Num(rho.ln_1p())),
                ])
            }
            Request::JMeasure { relation, schema } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let tree =
                    resolve_schema(&entry.catalog.read(), entry.store.data().arity(), schema)?;
                let j = with_analyzer!(entry, |an| an.j_measure(&tree))
                    .map_err(|e| Failure::from_relation_error(&e))?;
                Ok(vec![
                    ("op".to_owned(), Json::str("j")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    ("j_nats".to_owned(), Json::Num(j)),
                ])
            }
            Request::Analyze { relation, schema } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let tree =
                    resolve_schema(&entry.catalog.read(), entry.store.data().arity(), schema)?;
                let report = with_analyzer!(entry, |an| an.analyze(&tree))
                    .map_err(|e| Failure::from_relation_error(&e))?;
                Ok(vec![
                    ("op".to_owned(), Json::str("analyze")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    (
                        "report".to_owned(),
                        report_json(&entry.catalog.read(), &report)?,
                    ),
                ])
            }
            Request::Mine {
                relation,
                j_threshold,
                max_bag_size,
            } => {
                let _slot = self.admit_mine()?;
                let entry = self.find(relation)?;
                let mut config = DiscoveryConfig::default();
                if let Some(t) = j_threshold {
                    config.j_threshold = *t;
                }
                if let Some(b) = max_bag_size {
                    config.max_bag_size = *b;
                }
                let miner = SchemaMiner::new(config);
                let mined = with_analyzer!(entry, |an| miner
                    .mine_with(&an.batch().with_threads(self.config.mine_threads)))
                .map_err(|e| Failure::from_relation_error(&e))?;
                let catalog = entry.catalog.read();
                let schema_json = Json::Arr(
                    mined
                        .tree
                        .bags()
                        .iter()
                        .map(|bag| attr_names_json(&catalog, bag))
                        .collect::<Result<Vec<Json>, Failure>>()?,
                );
                Ok(vec![
                    ("op".to_owned(), Json::str("mine")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    ("schema".to_owned(), schema_json),
                    (
                        "num_bags".to_owned(),
                        Json::Num(mined.tree.bags().len() as f64),
                    ),
                    ("j_nats".to_owned(), Json::Num(mined.j_measure)),
                    (
                        "rho_lower_bound".to_owned(),
                        Json::Num(mined.rho_lower_bound),
                    ),
                ])
            }
            Request::Estimate {
                relation,
                target,
                epsilon,
                delta,
                seed,
            } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let mut cfg = EstimateConfig::default();
                if let Some(e) = epsilon {
                    cfg = cfg.with_epsilon(*e);
                }
                if let Some(d) = delta {
                    cfg = cfg.with_delta(*d);
                }
                if let Some(s) = seed {
                    cfg = cfg.with_seed(*s);
                }
                // Resolve names against the catalog before any sampling
                // work, so name errors are cheap and precisely coded.
                enum Resolved {
                    Entropy(AttrSet),
                    Cmi(AttrSet, AttrSet, AttrSet),
                    Tree(JoinTree, bool),
                }
                let resolved = {
                    let catalog = entry.catalog.read();
                    let attrs = |names: &Vec<String>| {
                        catalog
                            .attrs(names.iter())
                            .map_err(|e| Failure::from_relation_error(&e))
                    };
                    match target {
                        EstimateTarget::Entropy { attrs: names } => {
                            Resolved::Entropy(attrs(names)?)
                        }
                        EstimateTarget::Cmi { a, b, c } => {
                            Resolved::Cmi(attrs(a)?, attrs(b)?, attrs(c)?)
                        }
                        EstimateTarget::JMeasure { schema } => Resolved::Tree(
                            resolve_schema(&catalog, entry.store.data().arity(), schema)?,
                            false,
                        ),
                        EstimateTarget::Loss { schema } => Resolved::Tree(
                            resolve_schema(&catalog, entry.store.data().arity(), schema)?,
                            true,
                        ),
                    }
                };
                let budget = ThreadBudget::new(self.config.point_threads);
                let est = with_analyzer!(entry, |an| {
                    let ea = EstimatedAnalyzer::with_thread_budget(an.source(), cfg, budget)
                        .map_err(|e| Failure::from_relation_error(&e))?;
                    match &resolved {
                        Resolved::Entropy(set) => ea.entropy(set),
                        Resolved::Cmi(a, b, c) => ea.cmi(a, b, c),
                        Resolved::Tree(tree, false) => ea.j_measure(tree),
                        Resolved::Tree(tree, true) => ea.loss(tree),
                    }
                    .map_err(|e| Failure::from_relation_error(&e))
                })?;
                Ok(vec![
                    ("op".to_owned(), Json::str("estimate")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    ("measure".to_owned(), Json::str(target.measure())),
                    ("value".to_owned(), Json::Num(est.value)),
                    ("epsilon".to_owned(), Json::Num(est.epsilon)),
                    ("delta".to_owned(), Json::Num(est.delta)),
                    (
                        "seed".to_owned(),
                        est.seed.map_or(Json::Null, |s| Json::Num(s as f64)),
                    ),
                    ("sample_rows".to_owned(), Json::Num(est.sample_rows as f64)),
                    ("rows".to_owned(), Json::Num(est.total_rows as f64)),
                    ("bound".to_owned(), Json::str(est.bound.as_str())),
                    ("exact".to_owned(), Json::Bool(est.is_exact())),
                ])
            }
            Request::Append {
                relation,
                rows,
                text,
                delimiter,
            } => {
                let _slot = self.admit_point()?;
                let entry = self.find(relation)?;
                let EntryAnalyzer::Live(live) = &entry.analyzer else {
                    return Err(Failure::new(
                        ErrorCode::BadRequest,
                        format!(
                            "relation '{relation}' is flat; only sharded relations accept appends"
                        ),
                    ));
                };
                let batch: Vec<Vec<String>> = match (rows, text) {
                    (Some(rows), None) => rows.clone(),
                    (None, Some(text)) => split_rows(text, delimiter.unwrap_or(',')),
                    _ => {
                        return Err(Failure::new(
                            ErrorCode::BadRequest,
                            "append carries its payload in exactly one of \"rows\" or \"text\"",
                        ))
                    }
                };
                if batch.is_empty() {
                    return Err(Failure::new(
                        ErrorCode::BadRequest,
                        "append needs at least one row",
                    ));
                }
                // The write lock serializes appends to this entry and keeps
                // the catalog consistent with the installed data: no reader
                // ever sees codes the catalog cannot decode.  (If the append
                // fails after some rows were encoded, the newly interned
                // labels stay in the catalog — a harmless superset.)
                let mut catalog = entry.catalog.write();
                let mut shard = Relation::new(live.store().snapshot().schema().to_vec())
                    .map_err(|e| Failure::from_relation_error(&e))?;
                for row in &batch {
                    let labels: Vec<&str> = row.iter().map(String::as_str).collect();
                    let coded = catalog
                        .encode_row(&labels)
                        .map_err(|e| Failure::from_relation_error(&e))?;
                    shard
                        .push_row(&coded)
                        .map_err(|e| Failure::from_relation_error(&e))?;
                }
                let epoch = live
                    .append_shard(shard)
                    .map_err(|e| Failure::from_relation_error(&e))?;
                let snap = live.store().snapshot();
                drop(catalog);
                Ok(vec![
                    ("op".to_owned(), Json::str("append")),
                    ("relation".to_owned(), Json::str(relation.clone())),
                    ("rows_appended".to_owned(), Json::Num(batch.len() as f64)),
                    ("rows".to_owned(), Json::Num(snap.len() as f64)),
                    ("epoch".to_owned(), Json::Num(epoch as f64)),
                    ("shards".to_owned(), Json::Num(snap.num_shards() as f64)),
                ])
            }
        }
    }

    fn catalog_fields(&self) -> Vec<(String, Json)> {
        let relations: Vec<Json> = self
            .entries
            .iter()
            .map(|entry| {
                let store = entry.store;
                let (rows, shards) = entry.rows_and_shards();
                Json::obj([
                    ("name", Json::str(store.name())),
                    ("rows", Json::Num(rows as f64)),
                    ("arity", Json::Num(store.data().arity() as f64)),
                    ("sharded", Json::Bool(store.data().is_sharded())),
                    ("shards", Json::Num(shards as f64)),
                    (
                        "attributes",
                        Json::Arr(store.attribute_names().iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        vec![
            ("op".to_owned(), Json::str("catalog")),
            ("relations".to_owned(), Json::Arr(relations)),
        ]
    }

    fn stats_fields(&self, relation: Option<&str>) -> Result<Vec<(String, Json)>, Failure> {
        // An empty catalog is a legal server state: the admission section
        // still answers and `relations` is simply `[]`.
        let selected: Vec<&Entry<'a>> = match relation {
            None => self.entries.iter().collect(),
            Some(name) => vec![self.find(name)?],
        };
        let relations: Vec<Json> = selected
            .iter()
            .map(|entry| match &entry.analyzer {
                EntryAnalyzer::Flat(an) => Json::obj([
                    ("name", Json::str(entry.store.name())),
                    ("cache", cache_json(&an.cache_stats())),
                ]),
                EntryAnalyzer::Live(live) => {
                    let stats = live.stats();
                    Json::obj([
                        ("name", Json::str(entry.store.name())),
                        ("epoch", Json::Num(stats.epoch as f64)),
                        ("cache", cache_json(&stats.merged)),
                        ("shard_cache", shard_cache_json(&stats.shards)),
                    ])
                }
            })
            .collect();
        Ok(vec![
            ("op".to_owned(), Json::str("stats")),
            (
                "admission".to_owned(),
                Json::obj([
                    ("point", pool_json(&self.admission.point.stats())),
                    ("mine", pool_json(&self.admission.mine.stats())),
                ]),
            ),
            ("relations".to_owned(), Json::Arr(relations)),
        ])
    }

    fn find(&self, name: &str) -> Result<&Entry<'a>, Failure> {
        self.entries
            .iter()
            .find(|e| e.store.name() == name)
            .ok_or_else(|| {
                Failure::new(
                    ErrorCode::UnknownRelation,
                    format!("no relation named '{name}' in the catalog"),
                )
            })
    }

    fn admit_point(&self) -> Result<crate::admission::PoolGuard<'_>, Failure> {
        self.admission.point.admit().ok_or_else(|| {
            Failure::new(
                ErrorCode::Busy,
                "point-query pool saturated and its wait queue is full; retry later",
            )
        })
    }

    fn admit_mine(&self) -> Result<crate::admission::PoolGuard<'_>, Failure> {
        self.admission.mine.admit().ok_or_else(|| {
            Failure::new(
                ErrorCode::Busy,
                "mine pool saturated and its wait queue is full; retry later",
            )
        })
    }

    // ------------------------------------------------------------------
    // Transport
    // ------------------------------------------------------------------

    /// Serves connections from `listener` until `shutdown` is signalled.
    ///
    /// Each connection gets its own scoped thread reading line-delimited
    /// JSON requests and writing one response frame per line, in request
    /// order.  Returns once the accept loop has stopped **and** every
    /// connection thread has finished.
    pub fn serve(&self, listener: TcpListener, shutdown: &ShutdownToken) {
        std::thread::scope(|scope| {
            for stream in listener.incoming() {
                if shutdown.is_signalled() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                scope.spawn(move || self.serve_connection(stream));
            }
        });
    }

    fn serve_connection(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            let frame = self.handle_line(&line);
            if writeln!(writer, "{frame}").is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
}

/// Splits a delimited `text` payload into rows of field labels: one row
/// per non-empty line, fields split on `delimiter`, whitespace-trimmed
/// (the same conventions [`ajd_relation::ReadOptions`] defaults to, minus
/// the header line — appends address an existing catalog entry).
fn split_rows(text: &str, delimiter: char) -> Vec<Vec<String>> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            line.split(delimiter)
                .map(|field| field.trim().to_owned())
                .collect()
        })
        .collect()
}

/// Resolves a wire schema (bags of attribute names) against an entry's
/// catalog: names → [`AttrSet`]s, cover check, then join-tree
/// construction (which enforces the running-intersection property).
fn resolve_schema(
    catalog: &Catalog,
    arity: usize,
    schema: &[Vec<String>],
) -> Result<JoinTree, Failure> {
    let mut bags = Vec::with_capacity(schema.len());
    let mut cover = AttrSet::empty();
    for bag in schema {
        let set = catalog
            .attrs(bag.iter())
            .map_err(|e| Failure::from_relation_error(&e))?;
        cover = cover.union(&set);
        bags.push(set);
    }
    if cover.len() != arity {
        return Err(Failure::new(
            ErrorCode::InvalidSchema,
            format!(
                "schema covers {} of the relation's {} attributes; bags must cover the schema exactly",
                cover.len(),
                arity
            ),
        ));
    }
    JoinTree::from_acyclic_schema(&bags)
        .map_err(|e| Failure::new(ErrorCode::InvalidSchema, e.to_string()))
}

/// Renders an attribute set as a JSON array of names.
///
/// The ids *should* always resolve — they were produced by analysing this
/// store's relation — but a mismatch is reported as a structured
/// [`ErrorCode::Internal`] frame rather than panicking the connection
/// thread: a wire protocol must never answer a request with silence.
fn attr_names_json(catalog: &Catalog, set: &AttrSet) -> Result<Json, Failure> {
    let names = set
        .iter()
        .map(|id| {
            catalog.name(id).map(Json::str).map_err(|_| {
                Failure::new(
                    ErrorCode::Internal,
                    format!(
                        "attribute id {} is outside this relation's catalog; \
                         the analysis produced an inconsistent attribute set",
                        id.0
                    ),
                )
            })
        })
        .collect::<Result<Vec<Json>, Failure>>()?;
    Ok(Json::Arr(names))
}

fn cache_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::Num(stats.hits as f64)),
        ("misses", Json::Num(stats.misses as f64)),
        (
            "group_count_entries",
            Json::Num(stats.group_count_entries as f64),
        ),
        ("group_id_entries", Json::Num(stats.group_id_entries as f64)),
        (
            "projection_entries",
            Json::Num(stats.projection_entries as f64),
        ),
    ])
}

fn shard_cache_json(stats: &ShardCacheStats) -> Json {
    Json::obj([
        ("hits", Json::Num(stats.hits as f64)),
        ("misses", Json::Num(stats.misses as f64)),
        ("entries", Json::Num(stats.entries as f64)),
    ])
}

fn pool_json(stats: &PoolStats) -> Json {
    Json::obj([
        ("slots", Json::Num(stats.slots as f64)),
        ("queue_depth", Json::Num(stats.queue_depth as f64)),
        ("in_flight", Json::Num(stats.in_flight as f64)),
        ("waiting", Json::Num(stats.waiting as f64)),
        ("peak_in_flight", Json::Num(stats.peak_in_flight as f64)),
        ("admitted", Json::Num(stats.admitted as f64)),
        ("queued", Json::Num(stats.queued as f64)),
        ("rejected", Json::Num(stats.rejected as f64)),
    ])
}

fn report_json(catalog: &Catalog, report: &LossReport) -> Result<Json, Failure> {
    let per_mvd: Vec<Json> = report
        .per_mvd
        .iter()
        .map(|m| {
            Ok(Json::obj([
                ("lhs", attr_names_json(catalog, &m.mvd.lhs)?),
                ("left", attr_names_json(catalog, &m.mvd.left)?),
                ("right", attr_names_json(catalog, &m.mvd.right)?),
                ("cmi_nats", Json::Num(m.cmi_nats)),
                ("rho", Json::Num(m.rho)),
                ("log1p_rho", Json::Num(m.log1p_rho)),
                (
                    "domain_sizes",
                    Json::Arr(vec![
                        Json::Num(m.domain_sizes.0 as f64),
                        Json::Num(m.domain_sizes.1 as f64),
                        Json::Num(m.domain_sizes.2 as f64),
                    ]),
                ),
            ]))
        })
        .collect::<Result<Vec<Json>, Failure>>()?;
    Ok(Json::obj([
        ("rows", Json::Num(report.n as f64)),
        ("distinct_rows", Json::Num(report.distinct_n as f64)),
        ("num_bags", Json::Num(report.num_bags as f64)),
        ("join_size", u128_field(report.join_size)),
        ("spurious", u128_field(report.spurious)),
        ("rho", Json::Num(report.rho)),
        ("log1p_rho", Json::Num(report.log1p_rho)),
        ("j_nats", Json::Num(report.j_measure)),
        ("kl_nats", Json::Num(report.kl_nats)),
        ("rho_lower_bound", Json::Num(report.rho_lower_bound)),
        ("lossless", Json::Bool(report.is_lossless())),
        (
            "theorem22",
            Json::obj([
                ("max_cmi", Json::Num(report.theorem22.max_cmi)),
                ("j", Json::Num(report.theorem22.j)),
                ("sum_cmi", Json::Num(report.theorem22.sum_cmi)),
            ]),
        ),
        ("prop51_bound", Json::Num(report.prop51_bound)),
        ("per_mvd", Json::Arr(per_mvd)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::ReadOptions;

    const CSV: &str = "\
course,teacher,room
db,ann,r1
db,ann,r2
os,bob,r1
os,bob,r2
";

    fn stores() -> Vec<RelationStore> {
        vec![RelationStore::from_delimited("courses", CSV, ReadOptions::default()).unwrap()]
    }

    fn ok_get<'j>(frame: &'j Json, field: &str) -> &'j Json {
        assert_eq!(
            frame.get("ok").and_then(Json::as_bool),
            Some(true),
            "expected ok frame, got {frame}"
        );
        frame.get(field).expect(field)
    }

    #[test]
    fn catalog_lists_entries() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(r#"{"op":"catalog"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        assert_eq!(relations.len(), 1);
        assert_eq!(
            relations[0].get("name").and_then(Json::as_str),
            Some("courses")
        );
        assert_eq!(relations[0].get("rows").and_then(Json::as_u64), Some(4));
        assert_eq!(
            relations[0].get("sharded").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn stats_on_empty_catalog_does_not_panic() {
        let stores: Vec<RelationStore> = Vec::new();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(r#"{"op":"stats"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        assert!(relations.is_empty());
        assert!(frame.get("admission").is_some());
        // Catalog on an empty catalog is likewise just empty, not an error.
        let frame = server.handle_line(r#"{"op":"catalog"}"#);
        assert!(ok_get(&frame, "relations").as_arr().unwrap().is_empty());
    }

    #[test]
    fn lossless_schema_reports_zero_loss() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        // course ↠ teacher | room holds: teacher is determined by course.
        let frame = server.handle_line(
            r#"{"op":"loss","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#,
        );
        assert_eq!(ok_get(&frame, "rho").as_f64(), Some(0.0));
        let frame = server.handle_line(
            r#"{"op":"analyze","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#,
        );
        let report = ok_get(&frame, "report");
        assert_eq!(report.get("lossless").and_then(Json::as_bool), Some(true));
        assert_eq!(report.get("join_size").and_then(Json::as_str), Some("4"));
        assert_eq!(report.get("spurious").and_then(Json::as_str), Some("0"));
    }

    #[test]
    fn lossy_schema_reports_positive_loss_and_consistent_j() {
        let stores =
            vec![
                RelationStore::from_delimited("r", "a,b\n0,0\n1,1\n", ReadOptions::default())
                    .unwrap(),
            ];
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(r#"{"op":"analyze","relation":"r","schema":[["a"],["b"]]}"#);
        let report = ok_get(&frame, "report");
        assert_eq!(report.get("rho").and_then(Json::as_f64), Some(1.0));
        assert_eq!(report.get("join_size").and_then(Json::as_str), Some("4"));
        let j = report.get("j_nats").and_then(Json::as_f64).unwrap();
        let frame = server.handle_line(r#"{"op":"j","relation":"r","schema":[["a"],["b"]]}"#);
        assert_eq!(ok_get(&frame, "j_nats").as_f64(), Some(j));
    }

    #[test]
    fn entropy_matches_uniform_distribution() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame =
            server.handle_line(r#"{"op":"entropy","relation":"courses","attrs":["course"]}"#);
        let h = ok_get(&frame, "entropy_nats").as_f64().unwrap();
        assert!((h - 2.0f64.ln()).abs() < 1e-12, "H(course) = ln 2, got {h}");
        // H(∅) = 0.
        let frame = server.handle_line(r#"{"op":"entropy","relation":"courses","attrs":[]}"#);
        assert_eq!(ok_get(&frame, "entropy_nats").as_f64(), Some(0.0));
    }

    #[test]
    fn error_frames_are_structured() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let cases = [
            (
                r#"{"op":"loss","relation":"nope","schema":[["course"]]}"#,
                "unknown_relation",
            ),
            (
                r#"{"op":"entropy","relation":"courses","attrs":["flavour"]}"#,
                "unknown_attribute",
            ),
            (
                r#"{"op":"loss","relation":"courses","schema":[["course","teacher"]]}"#,
                "invalid_schema",
            ),
            (r#"{"op":"stats","relation":"nope"}"#, "unknown_relation"),
            (r#"not json"#, "bad_request"),
            (r#"{"op":"warp"}"#, "unknown_op"),
            (r#"{"v":99,"op":"catalog"}"#, "unsupported_version"),
        ];
        for (line, code) in cases {
            let frame = server.handle_line(line);
            assert_eq!(
                frame.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line}"
            );
            let error = frame.get("error").expect("error object");
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some(code),
                "{line}"
            );
            assert!(error.get("message").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn mine_finds_the_lossless_schema() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(r#"{"op":"mine","relation":"courses","max_bag_size":2}"#);
        let j = ok_get(&frame, "j_nats").as_f64().unwrap();
        assert!(
            j.abs() < 1e-12,
            "courses has a lossless 2-attr schema, J = {j}"
        );
        let schema = frame.get("schema").and_then(Json::as_arr).unwrap();
        assert!(!schema.is_empty());
    }

    #[test]
    fn point_queries_share_one_cache() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let line = r#"{"op":"loss","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#;
        server.handle_line(line);
        let frame = server.handle_line(r#"{"op":"stats","relation":"courses"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        let cache = relations[0].get("cache").unwrap();
        let misses_cold = cache.get("misses").and_then(Json::as_u64).unwrap();
        assert!(misses_cold > 0, "cold query must miss");
        // Re-issue the same query: every grouping is now memoized.
        server.handle_line(line);
        let frame = server.handle_line(r#"{"op":"stats","relation":"courses"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        let cache = relations[0].get("cache").unwrap();
        let misses_warm = cache.get("misses").and_then(Json::as_u64).unwrap();
        assert_eq!(misses_warm, misses_cold, "warm query must not miss");
        assert!(cache.get("hits").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn estimate_falls_back_to_exact_on_tiny_relations() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(
            r#"{"op":"estimate","relation":"courses","measure":"entropy","attrs":["course"]}"#,
        );
        let v = ok_get(&frame, "value").as_f64().unwrap();
        assert!((v - 2.0f64.ln()).abs() < 1e-12, "H(course) = ln 2, got {v}");
        assert_eq!(ok_get(&frame, "exact").as_bool(), Some(true));
        assert_eq!(ok_get(&frame, "epsilon").as_f64(), Some(0.0));
        assert_eq!(ok_get(&frame, "bound").as_str(), Some("exact"));
        assert_eq!(ok_get(&frame, "sample_rows").as_u64(), Some(4));
        assert_eq!(ok_get(&frame, "rows").as_u64(), Some(4));
        assert_eq!(frame.get("seed"), Some(&Json::Null));
        // The lossless schema's J estimate is exactly 0 on the fallback path.
        let frame = server.handle_line(
            r#"{"op":"estimate","relation":"courses","measure":"j","schema":[["course","teacher"],["course","room"]]}"#,
        );
        assert!(ok_get(&frame, "value").as_f64().unwrap().abs() < 1e-12);
        assert_eq!(ok_get(&frame, "measure").as_str(), Some("j"));
        // And the CMI of the MVD behind it is 0 too.
        let frame = server.handle_line(
            r#"{"op":"estimate","relation":"courses","measure":"cmi","a":["teacher"],"b":["room"],"c":["course"]}"#,
        );
        assert!(ok_get(&frame, "value").as_f64().unwrap().abs() < 1e-12);
    }

    #[test]
    fn estimate_samples_large_relations_deterministically() {
        let mut text = String::from("a,b\n");
        for i in 0..10_000u32 {
            text.push_str(&format!("{},{}\n", i % 64, (i / 64) % 64));
        }
        let stores =
            vec![RelationStore::from_delimited("big", &text, ReadOptions::default()).unwrap()];
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let line = r#"{"op":"estimate","relation":"big","measure":"entropy","attrs":["a"],"epsilon":0.5,"seed":42}"#;
        let frame = server.handle_line(line);
        assert_eq!(ok_get(&frame, "exact").as_bool(), Some(false));
        assert_eq!(ok_get(&frame, "bound").as_str(), Some("mcdiarmid"));
        assert_eq!(ok_get(&frame, "seed").as_u64(), Some(42));
        let sample = ok_get(&frame, "sample_rows").as_u64().unwrap();
        assert!(
            sample > 0 && sample < 10_000,
            "ε = 0.5 must plan a strict sample, got {sample}"
        );
        assert_eq!(ok_get(&frame, "rows").as_u64(), Some(10_000));
        let v = ok_get(&frame, "value").as_f64().unwrap();
        let eps = ok_get(&frame, "epsilon").as_f64().unwrap();
        assert!(eps > 0.0);
        // `a` is (near-)uniform over 64 values: the sampled entropy must sit
        // within the reported ε of ln 64 for this pinned seed.
        assert!(
            (v - 64f64.ln()).abs() <= eps,
            "sampled H = {v} strayed more than ε = {eps} from ln 64"
        );
        // Determinism: the response frame is byte-identical on re-issue.
        assert_eq!(frame.to_string(), server.handle_line(line).to_string());
    }

    #[test]
    fn estimate_works_on_sharded_entries() {
        let stores = sharded_stores("courses", 2);
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(
            r#"{"op":"estimate","relation":"courses","measure":"loss","schema":[["course","teacher"],["course","room"]]}"#,
        );
        assert_eq!(ok_get(&frame, "value").as_f64(), Some(0.0));
        assert_eq!(ok_get(&frame, "exact").as_bool(), Some(true));
        assert_eq!(ok_get(&frame, "measure").as_str(), Some("loss"));
    }

    #[test]
    fn duplicate_names_are_rejected_at_startup() {
        let stores = vec![
            RelationStore::from_delimited("r", "a\n1\n", ReadOptions::default()).unwrap(),
            RelationStore::from_delimited("r", "a\n2\n", ReadOptions::default()).unwrap(),
        ];
        assert!(Server::new(&stores, ServerConfig::default()).is_err());
    }

    fn sharded_stores(name: &str, num_shards: usize) -> Vec<RelationStore> {
        let (catalog, relation) =
            ajd_relation::io::read_delimited(CSV, ReadOptions::default()).unwrap();
        let sharded = relation.into_shards(num_shards).unwrap();
        vec![RelationStore::sharded(name, catalog, sharded).unwrap()]
    }

    #[test]
    fn append_extends_a_sharded_relation() {
        let stores = sharded_stores("courses", 2);
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(
            r#"{"op":"append","relation":"courses","rows":[["ml","cat","r3"],["ml","cat","r4"]]}"#,
        );
        assert_eq!(ok_get(&frame, "rows_appended").as_u64(), Some(2));
        assert_eq!(ok_get(&frame, "rows").as_u64(), Some(6));
        assert_eq!(ok_get(&frame, "epoch").as_u64(), Some(3));
        assert_eq!(ok_get(&frame, "shards").as_u64(), Some(3));
        // The catalog reflects the live counts, not the startup ones.
        let frame = server.handle_line(r#"{"op":"catalog"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        assert_eq!(relations[0].get("rows").and_then(Json::as_u64), Some(6));
        assert_eq!(relations[0].get("shards").and_then(Json::as_u64), Some(3));
        // Queries see the appended rows (3 distinct courses now)...
        let frame =
            server.handle_line(r#"{"op":"entropy","relation":"courses","attrs":["course"]}"#);
        let h = ok_get(&frame, "entropy_nats").as_f64().unwrap();
        let expected = -(2.0 / 6.0 * (2.0f64 / 6.0).ln()) * 3.0;
        assert!(
            (h - expected).abs() < 1e-12,
            "H(course) = {expected}, got {h}"
        );
        // ...and new value labels round-trip through the catalog.
        let frame = server.handle_line(
            r#"{"op":"append","relation":"courses","text":"ml; cat; r5","delimiter":";"}"#,
        );
        assert_eq!(ok_get(&frame, "rows_appended").as_u64(), Some(1));
        assert_eq!(ok_get(&frame, "epoch").as_u64(), Some(4));
    }

    #[test]
    fn append_matches_a_cold_server_over_the_grown_relation() {
        let stores = sharded_stores("courses", 2);
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let analyze = r#"{"op":"analyze","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#;
        server.handle_line(analyze); // warm every cache at epoch 2
        server.handle_line(
            r#"{"op":"append","relation":"courses","rows":[["db","eve","r1"],["os","bob","r9"]]}"#,
        );
        let warm = server.handle_line(analyze);
        // A server built cold over the equivalent 6-row flat data agrees.
        let grown = "course,teacher,room\ndb,ann,r1\ndb,ann,r2\nos,bob,r1\nos,bob,r2\ndb,eve,r1\nos,bob,r9\n";
        let cold_stores =
            vec![RelationStore::from_delimited("courses", grown, ReadOptions::default()).unwrap()];
        let cold_server = Server::new(&cold_stores, ServerConfig::default()).unwrap();
        let cold = cold_server.handle_line(analyze);
        assert_eq!(
            ok_get(&warm, "report").to_string(),
            ok_get(&cold, "report").to_string(),
            "incremental append must be invisible to every measure"
        );
    }

    #[test]
    fn append_to_a_flat_relation_is_rejected() {
        let stores = stores();
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server
            .handle_line(r#"{"op":"append","relation":"courses","rows":[["ml","cat","r3"]]}"#);
        let error = frame.get("error").expect("error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("bad_request")
        );
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("flat"));
    }

    #[test]
    fn append_arity_mismatch_is_invalid_schema_and_atomic() {
        let stores = sharded_stores("courses", 2);
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let frame = server.handle_line(
            r#"{"op":"append","relation":"courses","rows":[["ml","cat","r3"],["short"]]}"#,
        );
        let error = frame.get("error").expect("error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("invalid_schema")
        );
        // Nothing was installed: the good row of the failed batch is gone too.
        let frame = server.handle_line(r#"{"op":"stats","relation":"courses"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        assert_eq!(relations[0].get("epoch").and_then(Json::as_u64), Some(2));
        let frame = server.handle_line(r#"{"op":"catalog"}"#);
        let relations = ok_get(&frame, "relations").as_arr().unwrap();
        assert_eq!(relations[0].get("rows").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn stats_prove_appends_regroup_only_the_new_shard() {
        let stores = sharded_stores("courses", 2); // 4 rows → 2 shards
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let shard_cache = |server: &Server<'_>| {
            let frame = server.handle_line(r#"{"op":"stats","relation":"courses"}"#);
            let relations = ok_get(&frame, "relations").as_arr().unwrap();
            let sc = relations[0].get("shard_cache").expect("shard_cache");
            (
                sc.get("hits").and_then(Json::as_u64).unwrap(),
                sc.get("misses").and_then(Json::as_u64).unwrap(),
            )
        };
        let line = r#"{"op":"loss","relation":"courses","schema":[["course","teacher"],["course","room"]]}"#;
        server.handle_line(line);
        let (cold_hits, cold_misses) = shard_cache(&server);
        assert_eq!(cold_misses % 2, 0, "cold misses fill both shards");
        let sets = cold_misses / 2;
        assert!(sets > 0, "loss must group at least one attribute set");
        server.handle_line(r#"{"op":"append","relation":"courses","rows":[["ml","cat","r3"]]}"#);
        server.handle_line(line);
        let (hits, misses) = shard_cache(&server);
        assert_eq!(
            misses - cold_misses,
            sets,
            "the re-query computes only the new shard's tables"
        );
        assert_eq!(
            hits - cold_hits,
            cold_misses,
            "both old shards answer every set from warm tables"
        );
    }

    #[test]
    fn sharded_and_flat_entries_agree() {
        let mut text = String::from("a,b,c\n");
        for i in 0..40 {
            text.push_str(&format!("{},{},{}\n", i % 5, i % 5, i % 4));
        }
        let flat = RelationStore::from_delimited("flat", &text, ReadOptions::default()).unwrap();
        let (catalog, relation) =
            ajd_relation::io::read_delimited(&text, ReadOptions::default()).unwrap();
        let sharded =
            RelationStore::sharded("sharded", catalog, relation.into_shards(3).unwrap()).unwrap();
        let stores = vec![flat, sharded];
        let server = Server::new(&stores, ServerConfig::default()).unwrap();
        let q = |name: &str| {
            let frame = server.handle_line(&format!(
                r#"{{"op":"analyze","relation":"{name}","schema":[["a","b"],["b","c"]]}}"#
            ));
            ok_get(&frame, "report").to_string()
        };
        assert_eq!(
            q("flat"),
            q("sharded"),
            "shard layout must not change any measure"
        );
    }
}
