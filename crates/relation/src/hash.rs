//! Fast, deterministic hashing for dictionary-encoded rows.
//!
//! All grouping in this workspace (projection deduplication, marginal
//! counting for entropies, hash joins) hashes very short sequences of `u32`
//! codes.  The standard library's SipHash is designed for DoS resistance on
//! untrusted inputs and is several times slower than necessary for this
//! workload.  We therefore ship a tiny Fx-style multiplicative hasher (the
//! same construction used by rustc's `FxHashMap`), implemented locally to
//! avoid an extra dependency.
//!
//! Determinism matters: experiment outputs and canonical relation orderings
//! must not depend on a randomly seeded hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash construction.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied between words.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic, deterministic 64-bit hasher.
///
/// Suitable for short integer keys (attribute ids, dictionary codes, row
/// prefixes).  Not suitable for untrusted adversarial input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        // ajd: allow(silent-arithmetic, "hash mixing is arithmetic mod 2^64 by design; wrapping here is the algorithm, not a lost count")
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// Creates an empty [`FxHashMap`] with the given capacity.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Creates an empty [`FxHashSet`] with the given capacity.
pub fn set_with_capacity<K>(cap: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Hashes a row of dictionary codes to a single `u64`.
///
/// Used when a 64-bit fingerprint of a row (rather than an owned key) is
/// sufficient, e.g. for probabilistic sanity checks in benches.
#[inline]
pub fn hash_row(row: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &v in row {
        h.write_u32(v);
    }
    h.write_usize(row.len());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        let a = hash_row(&[1, 2, 3]);
        let b = hash_row(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rows_usually_differ() {
        let a = hash_row(&[1, 2, 3]);
        let b = hash_row(&[3, 2, 1]);
        let c = hash_row(&[1, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_is_mixed_in() {
        // [0] and [0,0] must not collide trivially.
        assert_ne!(hash_row(&[0]), hash_row(&[0, 0]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<u32>, u64> = map_with_capacity(4);
        *m.entry(vec![1, 2]).or_insert(0) += 1;
        *m.entry(vec![1, 2]).or_insert(0) += 1;
        assert_eq!(m[&vec![1, 2]], 2);

        let mut s: FxHashSet<u32> = set_with_capacity(4);
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn write_bytes_path_consistent() {
        use std::hash::Hash;
        // Hashing the same value through the generic `Hash` impl twice gives
        // the same result.
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        "hello world, this is a longer string".hash(&mut h1);
        "hello world, this is a longer string".hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
