//! Experiment plumbing: command-line arguments and parallel trials.

use ajd_sync::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Command-line arguments common to every experiment binary.
///
/// Supported flags (all optional):
///
/// * `--trials K`   — number of independent trials per configuration.
/// * `--seed S`     — base RNG seed (trial `i` uses `S + i`).
/// * `--csv DIR`    — additionally write the result table as CSV into `DIR`.
/// * `--quick`      — shrink the workload (used by CI smoke runs).
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Number of trials per configuration.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Directory to write CSV output into (created if missing).
    pub csv_dir: Option<String>,
    /// Run a reduced workload.
    pub quick: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            trials: 5,
            seed: 20230618, // PODS'23 opening day
            csv_dir: None,
            quick: false,
        }
    }
}

impl ExperimentArgs {
    /// Parses arguments from `std::env::args`, ignoring unknown flags.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses arguments from an iterator (exposed for tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = ExperimentArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trials" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.trials = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--csv" => {
                    out.csv_dir = it.next();
                }
                "--quick" => out.quick = true,
                _ => {}
            }
        }
        out
    }
}

/// Runs `trials` independent trials of `f` (each with its own seeded RNG),
/// spreading them over `std::thread::available_parallelism()` threads, and
/// returns the results in trial order.
pub fn parallel_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(trials));
    let num_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials.max(1));
    let next: Mutex<usize> = Mutex::new(0);

    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| loop {
                let i = {
                    let mut guard = next.lock();
                    if *guard >= trials {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(i as u64));
                let out = f(i, &mut rng);
                results.lock().push((i, out));
            });
        }
    });

    let mut collected = results.into_inner();
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn default_args_are_sane() {
        let a = ExperimentArgs::default();
        assert!(a.trials > 0);
        assert!(!a.quick);
        assert!(a.csv_dir.is_none());
    }

    #[test]
    fn parse_reads_known_flags_and_ignores_unknown() {
        let a = ExperimentArgs::parse(
            [
                "--trials", "9", "--seed", "5", "--quick", "--bogus", "--csv", "/tmp/x",
            ]
            .map(String::from),
        );
        assert_eq!(a.trials, 9);
        assert_eq!(a.seed, 5);
        assert!(a.quick);
        assert_eq!(a.csv_dir.as_deref(), Some("/tmp/x"));
    }

    #[test]
    fn parse_with_missing_values_keeps_defaults() {
        let a = ExperimentArgs::parse(["--trials"].map(String::from));
        assert_eq!(a.trials, ExperimentArgs::default().trials);
    }

    #[test]
    fn parallel_trials_preserve_order_and_are_deterministic() {
        let f = |i: usize, rng: &mut StdRng| (i, rng.random_range(0..1_000_000u64));
        let a = parallel_trials(16, 42, f);
        let b = parallel_trials(16, 42, f);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        for (i, (idx, _)) in a.iter().enumerate() {
            assert_eq!(i, *idx);
        }
        // Different base seed changes results.
        let c = parallel_trials(16, 43, f);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_trials_with_zero_trials() {
        let out = parallel_trials(0, 1, |_, _| 1u8);
        assert!(out.is_empty());
    }
}
