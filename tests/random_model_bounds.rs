//! Statistical integration tests of the Section 5 results under the random
//! relation model, with fixed seeds so they are deterministic in CI.
//!
//! These tests exercise the same machinery as the `exp_*` experiment
//! binaries but at small, fast sizes; they check the *direction* of every
//! bound and the concentration behaviour, not the asymptotic constants.

use ajd::bounds::{
    cor521_mi_lower_bound, thm51_upper_bound, thm52_entropy_deviation, thm52_entropy_lower_bound,
};
use ajd::info::{conditional_mutual_information, entropy, mutual_information};
use ajd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// Figure 1 behaviour: for `N = d²/(1+ρ)` the sampled mutual information is
/// close to `log(1+ρ)` and the approximation improves with `d`.
#[test]
fn figure1_mutual_information_concentrates_on_log1p_rho() {
    let rho = 0.1f64;
    let reference = rho.ln_1p();
    let mut gaps = Vec::new();
    for (i, d) in [60u64, 250].into_iter().enumerate() {
        let model = RandomRelationModel::degenerate(d, d).unwrap();
        let n = (d as f64 * d as f64 / (1.0 + rho)).round() as u64;
        let mut trial_gaps = Vec::new();
        for t in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(100 * (i as u64 + 1) + t);
            let r = model.sample(&mut rng, n).unwrap();
            let mi = mutual_information(
                &r,
                &AttrSet::singleton(AttrId(0)),
                &AttrSet::singleton(AttrId(1)),
            )
            .unwrap();
            trial_gaps.push((reference - mi).abs());
        }
        gaps.push(trial_gaps.iter().sum::<f64>() / trial_gaps.len() as f64);
    }
    // Already at d = 60 the MI is within 10% of log(1+rho); at d = 250 it is
    // strictly closer.
    assert!(
        gaps[0] < 0.1 * reference,
        "gap at d=60 too large: {}",
        gaps[0]
    );
    assert!(gaps[1] < gaps[0], "gap must shrink with d: {gaps:?}");
}

/// Theorem 5.2: the entropy of the `A`-marginal of a dense random relation
/// stays within the high-probability band `[log d − deviation, log d]`, and
/// the much tighter expected-value bound of Proposition 5.4 also holds on
/// average.
#[test]
fn theorem_5_2_entropy_confidence_band() {
    let d = 128u64;
    let eta = 16 * d; // well below the domain size d^2 = 16384? (16*128=2048)
    let delta = 0.05;
    let model = RandomRelationModel::degenerate(d, d).unwrap();
    let mut deficits = Vec::new();
    for t in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(7_000 + t);
        let r = model.sample(&mut rng, eta).unwrap();
        let h = entropy(&r, &AttrSet::singleton(AttrId(0))).unwrap();
        assert!(h <= (d as f64).ln() + 1e-12, "entropy cannot exceed log d");
        assert!(
            h >= thm52_entropy_lower_bound(d as f64, eta as f64, delta),
            "Theorem 5.2 lower bound violated: H = {h}"
        );
        deficits.push((d as f64).ln() - h);
    }
    let mean_deficit = deficits.iter().sum::<f64>() / deficits.len() as f64;
    // Proposition 5.4: the expected deficit is at most C(d) (here ~0.86); the
    // empirical mean is far below the Theorem 5.2 deviation.
    assert!(mean_deficit < ajd::bounds::c_of_d(d as f64));
    assert!(mean_deficit < thm52_entropy_deviation(d as f64, eta as f64, delta));
}

/// Corollary 5.2.1: the sampled mutual information is at least
/// `log(1+ρ̄) − deviation` (with the deviation huge at these sizes, the
/// point is the direction and that the raw `log(1+ρ̄)` is already close).
#[test]
fn corollary_5_2_1_mi_lower_bound_direction() {
    let d = 200u64;
    let eta = (d * d) / 2;
    let delta = 0.05;
    let model = RandomRelationModel::degenerate(d, d).unwrap();
    for t in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(9_000 + t);
        let r = model.sample(&mut rng, eta).unwrap();
        let mi = mutual_information(
            &r,
            &AttrSet::singleton(AttrId(0)),
            &AttrSet::singleton(AttrId(1)),
        )
        .unwrap();
        let bound = cor521_mi_lower_bound(d as f64, d as f64, eta as f64, delta);
        assert!(mi >= bound, "Corollary 5.2.1 violated: {mi} < {bound}");
        // The interesting concentration: MI is within 5% of log(1 + rho_bar).
        let rho_bar = (d * d) as f64 / eta as f64 - 1.0;
        assert!((mi - rho_bar.ln_1p()).abs() < 0.05 * rho_bar.ln_1p());
    }
}

/// Theorem 5.1: for the full (non-degenerate) MVD setting, the loss obeys
/// `log(1+ρ) ≤ I(A;B|C) + ε*` on every sampled relation.  For dense random
/// relations the bare CMI typically sits *just below* `log(1+ρ)` (by the
/// vanishing entropy deficits of Theorem 5.2) — which is exactly why the
/// theorem carries the additive `ε*` term — so we additionally check that
/// the gap is tiny.
#[test]
fn theorem_5_1_upper_bound_holds_on_samples() {
    let (d_a, d_b, d_c) = (24u64, 24u64, 3u64);
    let n = d_a * d_b * d_c / 2;
    let delta = 0.1;
    let params = ajd::bounds::Thm51Params::new(d_a, d_b, d_c, n, delta);
    let model = RandomRelationModel::for_mvd(d_a, d_b, d_c).unwrap();
    let mvd = Mvd::new(bag(&[2]), bag(&[0]), bag(&[1])).unwrap();
    for t in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(11_000 + t);
        let r = model.sample(&mut rng, n).unwrap();
        let rho = mvd.loss(&r).unwrap();
        let cmi = conditional_mutual_information(&r, &bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap();
        assert!(
            rho.ln_1p() <= thm51_upper_bound(cmi, &params) + 1e-9,
            "Theorem 5.1 bound violated"
        );
        let gap = rho.ln_1p() - cmi;
        assert!(
            gap.abs() < 0.1,
            "log(1+rho) and I(A;B|C) should be close for dense random relations, \
             got log(1+rho) = {} vs CMI = {}",
            rho.ln_1p(),
            cmi
        );
    }
}

/// Proposition 5.3 via the analysis API: the ε-inflated schema-level bound
/// holds on random relations for a multi-bag schema.
#[test]
fn proposition_5_3_schema_bound_holds_on_samples() {
    let dims = vec![12u64, 12, 12, 3];
    let n = 1_500u64;
    let model = RandomRelationModel::new(ProductDomain::new(dims).unwrap());
    let tree = JoinTree::from_acyclic_schema(&[bag(&[0, 3]), bag(&[1, 3]), bag(&[2, 3])]).unwrap();
    for t in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(13_000 + t);
        let r = model.sample(&mut rng, n).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        let cb = rep.confidence_bounds(0.1).unwrap();
        assert!(rep.log1p_rho <= cb.schema_bound.sum_cmi_bound + 1e-9);
        // Theorem 2.2 makes the J-based bound (eq. 34) the looser of the two.
        assert!(cb.schema_bound.sum_cmi_bound <= cb.schema_bound.j_based_bound + 1e-9);
    }
}
