//! Mutation validation of the checker itself: seeded bugs of the two
//! classes the workspace cares about — a **dropped `notify_one`** in a
//! slot pool and a **removed single-flight slot** in a memo cache — must
//! be caught by exploration, and the corrected code must come back clean.
//!
//! These are toy replicas of `ajd-server`'s admission pool and
//! `ajd-relation`'s context cache; the real types carry the same seeded
//! mutants behind `cfg(ajd_model)` test hooks, exercised by their own
//! model suites.

use ajd_model::{
    sync::{AtomicUsize, Condvar, Mutex, OnceSlot, Ordering},
    thread, Model, ViolationKind,
};
use std::sync::Arc;

/// A bounded slot pool, shaped like `ajd-server`'s admission pool: a
/// count guarded by a mutex, waiters parked on a condvar.  `notify` is
/// the mutation switch: `false` reintroduces the dropped `notify_one`.
struct ToyPool {
    in_flight: Mutex<usize>,
    available: Condvar,
    slots: usize,
    notify: bool,
}

impl ToyPool {
    fn new(slots: usize, notify: bool) -> Self {
        ToyPool {
            in_flight: Mutex::new(0),
            available: Condvar::new(),
            slots,
            notify,
        }
    }

    fn acquire(&self) {
        let mut g = self.in_flight.lock();
        while *g >= self.slots {
            g = self.available.wait(g);
        }
        *g += 1;
    }

    fn release(&self) {
        *self.in_flight.lock() -= 1;
        if self.notify {
            self.available.notify_one();
        }
    }
}

fn pool_body(notify: bool) -> impl Fn() + Sync {
    move || {
        let pool = Arc::new(ToyPool::new(1, notify));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let p = Arc::clone(&pool);
            // ajd: allow(raw-spawn, "ajd_model::thread::spawn is the instrumented virtual-thread spawn, not a ThreadBudget bypass")
            handles.push(thread::spawn(move || {
                p.acquire();
                p.release();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[test]
fn dropped_notify_one_is_caught_and_replayable() {
    let report = Model::new().explore(pool_body(false));
    let v = report
        .violation
        .expect("mutant (dropped notify_one) survived exploration");
    assert_eq!(v.kind, ViolationKind::MissedWakeup, "{v}");
    assert!(
        !v.schedule.is_empty(),
        "failing schedule must be replayable"
    );
    let replayed = Model::new()
        .replay(&v.schedule, pool_body(false))
        .expect("failing schedule did not reproduce the mutant");
    assert_eq!(replayed.kind, ViolationKind::MissedWakeup, "{replayed}");
}

#[test]
fn correct_pool_is_clean() {
    let report = Model::new().explore(pool_body(true));
    assert!(
        report.violation.is_none(),
        "false positive: {:?}",
        report.violation
    );
    assert!(report.exhausted);
}

/// A memo cache, shaped like `ajd-relation`'s context cache.
/// `single_flight` is the mutation switch: `false` removes the
/// single-flight slot and goes check-then-compute on a plain map.
struct ToyCache {
    slot: OnceSlot<u64>,
    bypass: Mutex<Option<u64>>,
    computes: AtomicUsize,
    single_flight: bool,
}

impl ToyCache {
    fn new(single_flight: bool) -> Self {
        ToyCache {
            slot: OnceSlot::new(),
            bypass: Mutex::new(None),
            computes: AtomicUsize::new(0),
            single_flight,
        }
    }

    fn compute(&self) -> u64 {
        self.computes.fetch_add(1, Ordering::SeqCst);
        42
    }

    fn get(&self) -> u64 {
        if self.single_flight {
            return *self.slot.get_or_init(|| self.compute());
        }
        // MUTANT: check-then-compute without a slot — two racers can both
        // observe the cache cold and both compute.
        if let Some(v) = *self.bypass.lock() {
            return v;
        }
        let v = self.compute();
        *self.bypass.lock() = Some(v);
        v
    }
}

fn cache_body(single_flight: bool) -> impl Fn() + Sync {
    move || {
        let cache = Arc::new(ToyCache::new(single_flight));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&cache);
            // ajd: allow(raw-spawn, "ajd_model::thread::spawn is the instrumented virtual-thread spawn, not a ThreadBudget bypass")
            handles.push(thread::spawn(move || c.get()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(
            cache.computes.load(Ordering::SeqCst),
            1,
            "cold key computed more than once"
        );
    }
}

#[test]
fn removed_single_flight_slot_is_caught_and_replayable() {
    let report = Model::new().explore(cache_body(false));
    let v = report
        .violation
        .expect("mutant (removed single-flight slot) survived exploration");
    assert_eq!(v.kind, ViolationKind::Panic, "{v}");
    assert!(v.message.contains("computed more than once"), "{v}");
    assert!(
        !v.schedule.is_empty(),
        "failing schedule must be replayable"
    );
    let replayed = Model::new()
        .replay(&v.schedule, cache_body(false))
        .expect("failing schedule did not reproduce the mutant");
    assert_eq!(replayed.kind, ViolationKind::Panic, "{replayed}");
}

#[test]
fn single_flight_cache_is_clean() {
    let report = Model::new().explore(cache_body(true));
    assert!(
        report.violation.is_none(),
        "false positive: {:?}",
        report.violation
    );
}
