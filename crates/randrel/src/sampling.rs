//! Uniform sampling of distinct integers (sampling without replacement).
//!
//! Definition 5.2 requires drawing a set `S` of `N` tuples uniformly at
//! random *without replacement* from the product domain.  After mixed-radix
//! encoding this is exactly the problem of drawing `N` distinct integers
//! uniformly from `[0, D)`.  Three strategies cover the relevant regimes:
//!
//! * **Partial Fisher–Yates** — materialise `0..D` and run the first `N`
//!   steps of a Fisher–Yates shuffle.  Exactly uniform; `O(D)` memory.  Used
//!   when `D` is small enough to materialise cheaply.
//! * **Floyd's algorithm** — `O(N)` memory and expected `O(N)` time, exactly
//!   uniform over subsets.  Used when the sample is sparse (`N ≪ D`).
//! * **Complement sampling** — when `N > D/2`, sample the `D − N` *excluded*
//!   indices with Floyd and emit the rest.  `O(D)` time but the output alone
//!   is already `Ω(D)`.
//!
//! The benchmark `bench_sampling` compares the strategies; tests check
//! exact-uniformity statistics for small cases and distinctness always.

use ajd_relation::hash::FxHashSet;
use ajd_relation::{RelationError, Result};
use rand::{Rng, RngExt};

/// Which sampling strategy [`sample_distinct`] chose (exposed for the
/// ablation benchmark and for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Partial Fisher–Yates over a materialised index vector.
    PartialShuffle,
    /// Floyd's subset-sampling algorithm.
    Floyd,
    /// Floyd sampling of the complement set.
    Complement,
}

/// Threshold (domain size) below which the domain is simply materialised and
/// partially shuffled.
const SHUFFLE_THRESHOLD: u64 = 1 << 22;

/// Chooses the sampling strategy for drawing `n` distinct values from
/// `[0, domain_size)`.
pub fn choose_strategy(domain_size: u64, n: u64) -> SamplingStrategy {
    if domain_size <= SHUFFLE_THRESHOLD {
        SamplingStrategy::PartialShuffle
    } else if n <= domain_size / 2 {
        SamplingStrategy::Floyd
    } else {
        SamplingStrategy::Complement
    }
}

/// Draws `n` distinct integers uniformly at random (without replacement)
/// from `[0, domain_size)`.
///
/// The output order is unspecified (callers needing a canonical order should
/// sort).  Returns an error if `n > domain_size`.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, domain_size: u64, n: u64) -> Result<Vec<u64>> {
    if n > domain_size {
        return Err(RelationError::DomainExhausted {
            requested: n,
            available: domain_size,
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let out = match choose_strategy(domain_size, n) {
        SamplingStrategy::PartialShuffle => partial_shuffle(rng, domain_size, n),
        SamplingStrategy::Floyd => floyd(rng, domain_size, n),
        SamplingStrategy::Complement => complement(rng, domain_size, n),
    };
    debug_assert_eq!(out.len() as u64, n);
    Ok(out)
}

/// Partial Fisher–Yates: exact uniform sample, `O(domain_size)` memory.
pub fn partial_shuffle<R: Rng + ?Sized>(rng: &mut R, domain_size: u64, n: u64) -> Vec<u64> {
    let mut pool: Vec<u64> = (0..domain_size).collect();
    let n = n as usize;
    for i in 0..n {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

/// Floyd's algorithm: exact uniform subset sample in expected `O(n)` time.
pub fn floyd<R: Rng + ?Sized>(rng: &mut R, domain_size: u64, n: u64) -> Vec<u64> {
    let mut chosen: FxHashSet<u64> = ajd_relation::hash::set_with_capacity(n as usize);
    let mut out = Vec::with_capacity(n as usize);
    for j in (domain_size - n)..domain_size {
        let t = rng.random_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

/// Samples the complement: draws the `domain_size − n` excluded indices with
/// Floyd and emits all remaining indices.
fn complement<R: Rng + ?Sized>(rng: &mut R, domain_size: u64, n: u64) -> Vec<u64> {
    let excluded_count = domain_size - n;
    let excluded: FxHashSet<u64> = floyd(rng, domain_size, excluded_count)
        .into_iter()
        .collect();
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..domain_size {
        if !excluded.contains(&i) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_sample(sample: &[u64], domain: u64, n: u64) {
        assert_eq!(sample.len() as u64, n);
        let mut seen = std::collections::HashSet::new();
        for &x in sample {
            assert!(x < domain, "sampled value {x} out of range {domain}");
            assert!(seen.insert(x), "duplicate value {x} in sample");
        }
    }

    #[test]
    fn rejects_oversized_requests() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_distinct(&mut rng, 10, 11).is_err());
        assert!(sample_distinct(&mut rng, 10, 10).is_ok());
    }

    #[test]
    fn zero_sample_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_distinct(&mut rng, 100, 0).unwrap().is_empty());
    }

    #[test]
    fn all_strategies_produce_valid_samples() {
        let mut rng = StdRng::seed_from_u64(42);
        for (domain, n) in [(100u64, 10u64), (100, 90), (100, 100), (5_000_000, 1000)] {
            let s = sample_distinct(&mut rng, domain, n).unwrap();
            assert_valid_sample(&s, domain, n);
        }
        // Exercise each strategy function directly as well.
        assert_valid_sample(&partial_shuffle(&mut rng, 50, 20), 50, 20);
        assert_valid_sample(&floyd(&mut rng, 1_000_000_000, 500), 1_000_000_000, 500);
        assert_valid_sample(&complement(&mut rng, 1000, 900), 1000, 900);
    }

    #[test]
    fn strategy_selection_matches_regimes() {
        assert_eq!(choose_strategy(1000, 10), SamplingStrategy::PartialShuffle);
        assert_eq!(choose_strategy(1 << 30, 100), SamplingStrategy::Floyd);
        assert_eq!(
            choose_strategy(1 << 30, (1u64 << 30) - 5),
            SamplingStrategy::Complement
        );
    }

    #[test]
    fn full_domain_sample_is_a_permutation_of_the_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = sample_distinct(&mut rng, 64, 64).unwrap();
        s.sort_unstable();
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_reproducible_from_seed() {
        let a = sample_distinct(&mut StdRng::seed_from_u64(123), 10_000, 50).unwrap();
        let b = sample_distinct(&mut StdRng::seed_from_u64(123), 10_000, 50).unwrap();
        assert_eq!(a, b);
        let c = sample_distinct(&mut StdRng::seed_from_u64(124), 10_000, 50).unwrap();
        assert_ne!(a, c);
    }

    /// Chi-square-style sanity check that Floyd's algorithm samples each
    /// element with the correct marginal probability n/D.
    #[test]
    fn floyd_marginal_inclusion_probability_is_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let domain = 20u64;
        let n = 5u64;
        let trials = 20_000;
        let mut hits = vec![0u32; domain as usize];
        for _ in 0..trials {
            for x in floyd(&mut rng, domain, n) {
                hits[x as usize] += 1;
            }
        }
        let expected = trials as f64 * n as f64 / domain as f64; // = 5000
        for (i, &h) in hits.iter().enumerate() {
            let dev = (h as f64 - expected).abs() / expected;
            assert!(
                dev < 0.08,
                "element {i} included {h} times, expected ~{expected}"
            );
        }
    }

    /// The same marginal check for the partial-shuffle strategy.
    #[test]
    fn partial_shuffle_marginal_inclusion_probability_is_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let domain = 16u64;
        let n = 4u64;
        let trials = 20_000;
        let mut hits = vec![0u32; domain as usize];
        for _ in 0..trials {
            for x in partial_shuffle(&mut rng, domain, n) {
                hits[x as usize] += 1;
            }
        }
        let expected = trials as f64 * n as f64 / domain as f64;
        for &h in &hits {
            assert!((h as f64 - expected).abs() / expected < 0.08);
        }
    }
}
