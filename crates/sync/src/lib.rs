//! `ajd-sync` — the workspace's synchronisation facade.
//!
//! Every crate in this workspace takes its `Mutex`, `Condvar`, `RwLock`,
//! `OnceSlot`, atomics, and thread-spawning from here rather than from
//! `std::sync` / `parking_lot` directly (the `raw-sync-primitive` lint
//! rule enforces this).  The facade has two backends:
//!
//! * **normal builds** — thin `std::sync` wrappers with a poison-free
//!   lock API (a panicking holder propagates its panic without poisoning
//!   the lock for later holders, exactly like the `parking_lot` shim),
//!   plus plain `std` re-exports for atomics and threads;
//! * **`--cfg ajd_model` builds** — the instrumented primitives from
//!   [`ajd_model`], which route every acquire/wait/notify/load through a
//!   scheduling point when running inside a `Model::check` body and fall
//!   back to `std` behaviour otherwise.
//!
//! The two backends expose the same API surface, so production code is
//! model-checked **unchanged** — the cfg only decides which backend this
//! crate re-exports.  See `docs/CONCURRENCY.md` for the model, its
//! guarantees, and how to write a model test.
//!
//! Poison-freedom is safe here by policy: every structure these locks
//! protect is either rebuilt from scratch on retry or torn down with the
//! panicking request, so observing a "poisoned" value cannot compound the
//! original bug (which the panic itself already reports).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

#[cfg(not(ajd_model))]
mod real;

#[cfg(not(ajd_model))]
pub use real::{
    atomic, thread, Condvar, Mutex, MutexGuard, OnceSlot, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(ajd_model)]
pub use ajd_model::sync::{
    Condvar, Mutex, MutexGuard, OnceSlot, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Atomic types; instrumented scheduling points under `--cfg ajd_model`.
#[cfg(ajd_model)]
pub mod atomic {
    pub use ajd_model::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning; virtual threads under `--cfg ajd_model`.
#[cfg(ajd_model)]
pub mod thread {
    pub use ajd_model::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}
