//! Model-checked invariant for the analysis layer: concurrent analyses
//! over one shared cache stay deterministic and compute each key once.
//!
//! Compiled only under `RUSTFLAGS="--cfg ajd_model"` (the CI `model-check`
//! job).  See `docs/CONCURRENCY.md` for how to write and replay these
//! tests.
#![cfg(ajd_model)]

use ajd_core::BatchAnalyzer;
use ajd_jointree::JoinTree;
use ajd_relation::{AttrId, AttrSet, Relation};
use ajd_sync::Mutex;

fn sample() -> Relation {
    Relation::from_rows(
        vec![AttrId(0), AttrId(1)],
        &[&[0, 0][..], &[0, 1][..], &[1, 0][..], &[1, 1][..]],
    )
    .unwrap()
}

fn tree() -> JoinTree {
    JoinTree::path(vec![
        AttrSet::singleton(AttrId(0)),
        AttrSet::singleton(AttrId(1)),
    ])
    .unwrap()
}

/// Two virtual threads running the same analysis over one shared batch:
/// every interleaving yields identical reports, and the cache computes
/// each distinct key exactly once (single flight end-to-end through the
/// analysis layer, not just the cache in isolation).
#[test]
fn concurrent_analyses_share_one_compute_per_key() {
    let r = sample();
    let t = tree();

    // What a serial run computes (the miss count per cold cache) is the
    // bound every interleaving must meet.
    let serial = BatchAnalyzer::new(&r).with_threads(1);
    let expected_report = serial.analyze(&t).expect("analysis succeeds");
    let expected_misses = serial.cache_stats().misses;
    assert!(expected_misses > 0, "the analysis must exercise the cache");

    let report = ajd_model::Model::new()
        .max_schedules(1_000)
        .preemption_bound(2)
        .explore(|| {
            let batch = BatchAnalyzer::new(&r).with_threads(1);
            let spurious = Mutex::new(Vec::new());
            ajd_sync::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let rep = batch.analyze(&t).expect("analysis succeeds");
                        spurious.lock().push(rep.spurious);
                    });
                }
            });
            let stats = batch.cache_stats();
            assert_eq!(
                stats.misses, expected_misses,
                "a racer recomputed a key the cache should have served"
            );
            let spurious = spurious.lock();
            assert_eq!(spurious.len(), 2);
            assert_eq!(spurious[0], expected_report.spurious);
            assert_eq!(spurious[1], expected_report.spurious);
        });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
