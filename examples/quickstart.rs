//! Quickstart: measure the loss of an acyclic schema on a tiny relation.
//!
//! Run with `cargo run --example quickstart`.
//!
//! We build the paper's running scenario by hand: a universal relation
//! `R(A, B, C)`, the acyclic schema `S = {AC, BC}` (i.e. the MVD
//! `C ↠ A | B`), and then ask the library for everything the paper defines:
//! the exact number of spurious tuples, the J-measure, the KL-divergence of
//! Theorem 3.2, and the Lemma 4.1 lower bound.

use ajd::prelude::*;

fn main() {
    // A relation over A = X0, B = X1, C = X2.  Within C = 0 the relation is
    // a full product of {0,1} x {0,1} (the MVD holds there); within C = 1 it
    // is "diagonal", which breaks the MVD and creates spurious tuples.
    let r = Relation::from_rows(
        vec![AttrId(0), AttrId(1), AttrId(2)],
        &[
            // C = 0: product block
            &[0, 0, 0][..],
            &[0, 1, 0][..],
            &[1, 0, 0][..],
            &[1, 1, 0][..],
            // C = 1: diagonal block (lossy under {AC, BC})
            &[0, 0, 1][..],
            &[1, 1, 1][..],
            &[2, 2, 1][..],
        ],
    )
    .expect("well-formed rows");

    // The acyclic schema {AC, BC} and its join tree.
    let schema = vec![
        AttrSet::from_slice(&[AttrId(0), AttrId(2)]),
        AttrSet::from_slice(&[AttrId(1), AttrId(2)]),
    ];
    let tree = JoinTree::from_acyclic_schema(&schema).expect("the two-bag schema is acyclic");

    // One Analyzer owns the shared cache; one call computes the full report.
    let analyzer = Analyzer::new(&r);
    let report = analyzer
        .analyze(&tree)
        .expect("relation and tree share attributes");
    println!("{report}");

    // The headline quantities, spelled out.
    println!("spurious tuples            : {}", report.spurious);
    println!("loss rho                   : {:.4}", report.rho);
    println!("J-measure (nats)           : {:.4}", report.j_measure);
    println!("KL(P || P^T) (nats)        : {:.4}", report.kl_nats);
    println!("Lemma 4.1:  rho >= e^J - 1 = {:.4}", report.rho_lower_bound);
    println!(
        "Prop 5.1 :  J <= sum_i log(1+rho_i)        = {:.4}",
        report.prop51_bound
    );

    // Theorem 3.2 in action: the J-measure *is* the KL-divergence.
    assert!((report.j_measure - report.kl_nats).abs() < 1e-9);
    // Lemma 4.1 in action: the lower bound never exceeds the true loss.
    assert!(report.rho_lower_bound <= report.rho + 1e-9);

    // Compare with a lossless schema for the same relation: the single-bag
    // schema {ABC} is trivially lossless, so J = 0 and rho = 0.
    let trivial =
        JoinTree::from_acyclic_schema(&[AttrSet::from_slice(&[AttrId(0), AttrId(1), AttrId(2)])])
            .unwrap();
    let lossless = analyzer.analyze(&trivial).unwrap();
    println!(
        "\nFor the trivial schema {{ABC}}: rho = {:.4}, J = {:.4} (lossless: {})",
        lossless.rho,
        lossless.j_measure,
        lossless.is_lossless()
    );
}
