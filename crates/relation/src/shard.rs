//! Sharded relations: shard-local grouping with a deterministic
//! shard-order merge, and per-shard group-table caches that make appends
//! incremental.
//!
//! The chunked parallel kernel (PR 4) proved the load-bearing fact of this
//! module: disjoint row spans of a relation can be grouped independently and
//! their group tables merged **in span order** without changing a single
//! bit of the result — first-appearance numbering, counts, codes and
//! per-row ids all come out identical to the serial scan.  A
//! [`ShardedRelation`] lifts that span boundary from a transient scheduling
//! detail into a first-class storage layout:
//!
//! * each [`RelationShard`] is a fully self-contained columnar
//!   [`Relation`] — its own per-column dictionaries, its own code columns —
//!   so a shard can be built, stored, shipped or dropped without touching
//!   any other shard (the memory model for inputs larger than one machine's
//!   RAM or one NUMA node's locality domain);
//! * the [`ShardedRelation`] owns only the *global* per-attribute
//!   dictionaries (built in shard order, so they equal the flat relation's
//!   first-appearance dictionaries); each shard carries its own
//!   local → global code remap, fixed once at append time — a few words per
//!   distinct value, never per row;
//! * grouping runs shard-local (each shard through the ordinary
//!   [`Relation::group_ids_with`] kernel, fanned out over the
//!   [`ThreadBudget`]) and the per-shard group tables are merged in shard
//!   order through the exact same `merge_spans` discipline the chunked
//!   kernel uses — so [`ShardedRelation::group_ids`] /
//!   [`ShardedRelation::group_counts`] are **bit-identical** to the flat
//!   [`Relation`] at any shard count and any thread budget (property-tested
//!   in `tests/prop_sharded.rs`).
//!
//! # Incremental maintenance
//!
//! Every shard embeds a **per-shard group-table cache**: the globally
//! remapped span table of each grouped `AttrSet`, computed once per shard
//! (single-flight under races) and reused by every later grouping.  Shards
//! are immutable and `Arc`-shared, and [`ShardedRelation::append_shard`]
//! only pushes a new shard (copy-on-append: clones share every existing
//! shard), so **appends keep all warm tables**: re-grouping after an append
//! computes the new shard's table and re-merges — it never regroups the
//! world.  [`ShardedRelation::shard_cache_stats`] exposes the counters that
//! prove it, and the monotonically-increasing [`ShardedRelation::epoch`]
//! (bumped by every append) lets higher layers key merged results by
//! version.  [`crate::ShardedStore`] turns this into a concurrent
//! snapshot-swap handle.
//!
//! Cached tables stay valid forever because global dictionaries are
//! append-only: a code assigned to a value never changes, and a shard's
//! remap is recorded before any later shard can extend the dictionaries.
//!
//! Because the whole measure stack is generic over
//! [`GroupSource`], a sharded relation drops into `ajd-info`,
//! `ajd-jointree` and `ajd_core::Analyzer` unchanged, and
//! [`GroupKernel`] lets an `AnalysisContext` memoize over it exactly as
//! over a flat relation.

use crate::attr::{AttrId, AttrSet};
use crate::context::{GroupKernel, GroupSource};
use crate::error::{RelationError, Result};
use crate::hash::FxHashMap;
use crate::parallel::{chunk_bounds, ThreadBudget, MAX_CHUNK_WORKERS};
use crate::relation::{bit_width, merge_spans, GroupCounts, GroupIds, Relation, SpanGroups, Value};
use crate::sketch::KmvSketch;
use ajd_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ajd_sync::{OnceSlot, RwLock};
use std::fmt;
use std::sync::Arc;

/// A global (cross-shard) attribute dictionary: raw value → dense code, in
/// shard-order first appearance — exactly the code assignment the flat
/// relation's column dictionary would make on the concatenated rows.
#[derive(Debug, Clone, Default)]
struct GlobalDict {
    /// `code → value`, in first-appearance order across shards.
    values: Vec<Value>,
    /// `value → code`.
    index: FxHashMap<Value, u32>,
}

impl GlobalDict {
    /// Interns `v`, returning its dense global code.
    fn intern(&mut self, v: Value) -> Result<u32> {
        if let Some(&c) = self.index.get(&v) {
            return Ok(c);
        }
        let code = u32::try_from(self.values.len()).map_err(|_| {
            RelationError::CountOverflow("global shard dictionary exceeds the u32 code space")
        })?;
        self.values.push(v);
        self.index.insert(v, code);
        Ok(code)
    }
}

/// Counters of the per-shard group-table caches: the layer that makes
/// appends incremental (warm shards are pure `hits`; only shards that have
/// never grouped a given `AttrSet` count a `miss`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Shard-level span lookups answered from a warm table.
    pub hits: u64,
    /// Shard-level span computations (one per cold `(shard, AttrSet)`).
    pub misses: u64,
    /// Completed cached span tables across all shards.
    pub entries: usize,
}

/// One memoization slot of a shard's span cache: filled exactly once by the
/// thread that computes the table; racing threads block on the slot alone.
type SpanSlot = Arc<OnceSlot<Result<Arc<SpanGroups>>>>;

/// One shard of a [`ShardedRelation`]: a self-contained columnar span with
/// its own dictionaries, its global row offset, a stable id, its
/// local → global code remap, and its group-table cache.
///
/// A shard is just a [`Relation`] — every kernel, constructor and invariant
/// of the flat store applies verbatim within the shard.  Shards never
/// reference each other: the remap into the global code space is recorded
/// once when the shard is appended and never changes (global dictionaries
/// are append-only), which is what lets the embedded cache survive any
/// number of later appends.
///
/// Shards are immutable after construction and shared by `Arc` across
/// every clone/snapshot of the owning [`ShardedRelation`], so one shard's
/// warm group tables serve all of them.
#[derive(Debug)]
pub struct RelationShard {
    /// The shard's rows, dictionary-encoded against the shard's own
    /// (local, first-appearance) dictionaries.
    local: Relation,
    /// Global index of this shard's first row (shards concatenate in order).
    row_offset: usize,
    /// Stable id, assigned at append time and never reused within a
    /// relation's (linear) append history.
    id: u64,
    /// `remap[col][local_code]` = global code, per schema position.
    remap: Vec<Vec<u32>>,
    /// The per-shard group-table cache: `AttrSet` → globally remapped span
    /// table, single-flight on cold keys.  Keying by `AttrSet` alone is
    /// sound because column positions are determined by the schema and the
    /// kernel is bit-identical at every thread budget.
    spans: RwLock<FxHashMap<AttrSet, SpanSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RelationShard {
    /// The shard's rows as a self-contained flat relation.
    pub fn relation(&self) -> &Relation {
        &self.local
    }

    /// Number of rows in this shard.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// `true` if the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Global index of this shard's first row.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// The shard's stable id: assigned when the shard was appended,
    /// unchanged by later appends, unique along one append history (two
    /// clones that diverge by appending different batches each continue the
    /// numbering independently — ids identify shard *objects* within one
    /// lineage, and the caches live on the objects, so divergence is
    /// harmless).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This shard's cache counters (the per-`(shard_id, AttrSet)` tier).
    pub fn cache_stats(&self) -> ShardCacheStats {
        ShardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .spans
                .read()
                .values()
                .filter(|slot| slot.get().is_some_and(|r| r.is_ok()))
                .count(),
        }
    }

    /// The shard's globally remapped span table for `attrs`, served from
    /// the cache; cold keys are computed **single-flight** (racing threads
    /// block on the entry's slot, never on the whole map, and exactly one
    /// runs the kernel).  Errors are not memoized: the leader removes the
    /// failed slot so later calls retry.
    fn span(
        &self,
        attrs: &AttrSet,
        positions: &[usize],
        budget: ThreadBudget,
    ) -> Result<Arc<SpanGroups>> {
        let slot: SpanSlot = {
            let fast = self.spans.read().get(attrs).cloned();
            match fast {
                Some(slot) => slot,
                None => Arc::clone(self.spans.write().entry(attrs.clone()).or_default()),
            }
        };
        if let Some(done) = slot.get() {
            if done.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return done.clone();
        }
        let mut led = false;
        let result = slot
            .get_or_init(|| {
                led = true;
                let out = self.compute_span(attrs, positions, budget);
                if out.is_ok() {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                out
            })
            .clone();
        if !led {
            if result.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        } else if result.is_err() {
            let mut guard = self.spans.write();
            if guard.get(attrs).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                guard.remove(attrs);
            }
        }
        result
    }

    /// Groups this shard through the flat kernel and remaps its group codes
    /// into the global dictionaries (the cache-bypassing compute path).
    fn compute_span(
        &self,
        attrs: &AttrSet,
        positions: &[usize],
        budget: ThreadBudget,
    ) -> Result<Arc<SpanGroups>> {
        let ids = self.local.group_ids_with(attrs, budget)?;
        let (row_ids, counts, local_codes) = ids.into_parts();
        let k = positions.len();
        let mut group_codes = Vec::with_capacity(local_codes.len());
        for (j, &c) in local_codes.iter().enumerate() {
            group_codes.push(self.remap[positions[j % k]][c as usize]);
        }
        Ok(Arc::new(SpanGroups {
            row_ids,
            counts,
            group_codes,
        }))
    }
}

/// An ordered list of [`RelationShard`]s behaving, for every measure in the
/// workspace, exactly like the flat [`Relation`] of their concatenated rows.
///
/// Shards are held by `Arc`, so `Clone` is **copy-on-append cheap**: a clone
/// shares every shard (and its warm group tables) and only the shard list,
/// dictionaries and counters are copied.  [`ShardedRelation::append_shard`]
/// bumps [`ShardedRelation::epoch`] and assigns the new shard a stable
/// [`RelationShard::id`], leaving every existing shard untouched.
///
/// ```
/// use ajd_relation::{AttrSet, GroupSource, Relation, AttrId};
///
/// let flat = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[
///     &[10, 0][..], &[20, 0][..], &[10, 1][..], &[30, 1][..],
/// ]).unwrap();
/// let sharded = flat.clone().into_shards(3).unwrap();
/// assert_eq!(sharded.num_shards(), 3);
/// assert_eq!(sharded.epoch(), 3); // one epoch bump per appended shard
///
/// // Grouping is bit-identical to the flat relation…
/// let y = AttrSet::singleton(AttrId(0));
/// let a = flat.group_ids(&y).unwrap();
/// let b = sharded.group_ids(&y).unwrap();
/// assert_eq!(a.row_ids(), b.row_ids());
/// assert_eq!(a.counts(), b.counts());
///
/// // …and the round trip reproduces the flat store, dictionaries included.
/// let back = sharded.collect().unwrap();
/// assert_eq!(back.column_codes(AttrId(0)).unwrap(),
///            flat.column_codes(AttrId(0)).unwrap());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardedRelation {
    schema: Vec<AttrId>,
    shards: Vec<Arc<RelationShard>>,
    /// Global per-attribute dictionaries, indexed by schema position.
    dicts: Vec<GlobalDict>,
    rows: usize,
    /// Bumped by every [`ShardedRelation::append_shard`]; equal to the
    /// number of appends this value has seen.
    epoch: u64,
    /// Next stable shard id to assign.
    next_shard_id: u64,
}

impl ShardedRelation {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an empty sharded relation over the given schema (column
    /// order is preserved as given), at epoch 0.
    pub fn new(schema: Vec<AttrId>) -> Result<Self> {
        let mut seen = AttrSet::empty();
        for &a in &schema {
            if !seen.insert(a) {
                return Err(RelationError::DuplicateAttribute(a));
            }
        }
        Ok(ShardedRelation {
            dicts: vec![GlobalDict::default(); schema.len()],
            schema,
            shards: Vec::new(),
            rows: 0,
            epoch: 0,
            next_shard_id: 0,
        })
    }

    /// Builds a sharded relation from explicit shards (all must share the
    /// schema, in the same column order).
    pub fn from_shards<I: IntoIterator<Item = Relation>>(
        schema: Vec<AttrId>,
        shards: I,
    ) -> Result<Self> {
        let mut out = Self::new(schema)?;
        for shard in shards {
            out.append_shard(shard)?;
        }
        Ok(out)
    }

    /// Appends a batch of rows as a **new shard**, leaving every existing
    /// shard — and its warm group-table cache — untouched: only the global
    /// dictionaries grow (by the shard's previously unseen values), the new
    /// shard's local → global remap is recorded, the epoch is bumped and a
    /// stable shard id assigned.
    ///
    /// This is the ingestion path for incremental maintenance: appends
    /// never rewrite shard-local state, so per-shard group tables stay
    /// valid and only the new shard needs grouping before the shard-order
    /// re-merge.
    ///
    /// The shard's schema must equal this relation's schema, including
    /// column order (reorder with [`Relation::reorder_columns`] first if
    /// needed).
    pub fn append_shard(&mut self, shard: Relation) -> Result<()> {
        if shard.schema() != self.schema.as_slice() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "shard schema {:?} does not match the sharded relation's {:?}",
                    shard.schema(),
                    self.schema
                ),
            });
        }
        // Extend the global dictionaries in the shard's local-dictionary
        // order.  Local dictionaries are first-appearance ordered, so new
        // values enter the global dictionary exactly in the order of their
        // first appearance in the concatenated rows — the invariant the
        // bit-identity of the merge rests on.
        let mut remap: Vec<Vec<u32>> = Vec::with_capacity(self.schema.len());
        for (pos, &attr) in self.schema.iter().enumerate() {
            let locals = shard
                .domain(attr)
                .expect("schema equality guarantees the attribute");
            let dict = &mut self.dicts[pos];
            let mut map = Vec::with_capacity(locals.len());
            for &v in locals {
                map.push(dict.intern(v)?);
            }
            remap.push(map);
        }
        let row_offset = self.rows;
        self.rows += shard.len();
        let id = self.next_shard_id;
        self.next_shard_id += 1;
        self.epoch += 1;
        self.shards.push(Arc::new(RelationShard {
            local: shard,
            row_offset,
            id,
            remap,
            spans: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }));
        Ok(())
    }

    /// Concatenates all shards back into one flat [`Relation`].
    ///
    /// Rows are pushed in shard order, so the result's dictionaries, code
    /// columns and row order are exactly those of the flat relation the
    /// shards were split from (or would have been built as).
    pub fn collect(&self) -> Result<Relation> {
        let mut out = Relation::with_capacity(self.schema.clone(), self.rows)?;
        for shard in &self.shards {
            for row in shard.local.iter_rows() {
                out.push_row(row)?;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The column order of this relation.
    #[inline]
    pub fn schema(&self) -> &[AttrId] {
        &self.schema
    }

    /// The attribute set of this relation (schema as a set).
    pub fn attrs(&self) -> AttrSet {
        AttrSet::from_slice(&self.schema)
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Total number of tuples across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if no shard holds any tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of shards (empty shards included).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The monotonically-increasing version of this relation: 0 when empty,
    /// bumped by every [`ShardedRelation::append_shard`].  Higher layers key
    /// merged (whole-relation) results by epoch: a reader holding a
    /// snapshot at epoch `e` sees a consistent shard list for `e`, and an
    /// epoch bump is exactly the signal that merged results must be rebuilt
    /// (per-shard tables stay warm).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shards (each `Arc`-shared with every clone of this relation), in
    /// shard (concatenation) order.
    pub fn shards(&self) -> &[Arc<RelationShard>] {
        &self.shards
    }

    /// One shard by index.
    pub fn shard(&self, s: usize) -> &RelationShard {
        &self.shards[s]
    }

    /// Aggregated counters of the per-shard group-table caches, summed over
    /// all shards.  After an append, re-grouping a warm `AttrSet` adds
    /// exactly **one** miss (the new shard) and one hit per existing shard —
    /// the counter signature of incremental maintenance.
    pub fn shard_cache_stats(&self) -> ShardCacheStats {
        let mut total = ShardCacheStats::default();
        for shard in &self.shards {
            let s = shard.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.entries += s.entries;
        }
        total
    }

    /// Position of an attribute in this relation's column order.
    pub fn attr_pos(&self, attr: AttrId) -> Result<usize> {
        self.schema
            .iter()
            .position(|&a| a == attr)
            .ok_or(RelationError::UnknownAttribute(attr))
    }

    /// Positions (column indices) of each attribute of `attrs`, in the
    /// order of `attrs` (ascending attribute id).
    pub fn attr_positions(&self, attrs: &AttrSet) -> Result<Vec<usize>> {
        attrs.iter().map(|a| self.attr_pos(a)).collect()
    }

    /// The global active domain of an attribute: the distinct values it
    /// takes across all shards, in shard-order first appearance — the same
    /// list the flat relation's dictionary would hold.  O(1), no scan.
    pub fn domain(&self, attr: AttrId) -> Result<&[Value]> {
        let pos = self.attr_pos(attr)?;
        Ok(&self.dicts[pos].values)
    }

    /// Size of the global active domain of an attribute.  O(1).
    pub fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        Ok(self.domain(attr)?.len())
    }

    // ------------------------------------------------------------------
    // Grouping (shard-local kernel + shard-order merge)
    // ------------------------------------------------------------------

    /// Groups the concatenated tuples by their projection onto `attrs`,
    /// serially; bit-identical to [`Relation::group_ids`] on the collected
    /// flat relation.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<GroupIds> {
        self.group_ids_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::group_ids`] under a [`ThreadBudget`]: shards are
    /// grouped shard-locally (fanned out over up to `budget` workers, each
    /// shard running the ordinary flat kernel under its share of the
    /// budget; warm shards answer from their caches) and the per-shard
    /// group tables are merged **in shard order** — the same discipline as
    /// the chunked kernel, so the result is bit-identical to the flat
    /// relation at any shard count and any budget.
    pub fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        self.group_ids_inner(attrs, budget, true)
    }

    /// [`ShardedRelation::group_ids_with`] with the per-shard caches
    /// **bypassed** (neither read nor populated): every shard is regrouped
    /// from scratch.  Bit-identical to the cached path — this is the
    /// from-scratch baseline benches and tests pin incremental re-merges
    /// against.
    pub fn group_ids_uncached_with(
        &self,
        attrs: &AttrSet,
        budget: ThreadBudget,
    ) -> Result<GroupIds> {
        self.group_ids_inner(attrs, budget, false)
    }

    fn group_ids_inner(
        &self,
        attrs: &AttrSet,
        budget: ThreadBudget,
        cached: bool,
    ) -> Result<GroupIds> {
        let positions = self.attr_positions(attrs)?;
        let k = positions.len();
        // Zero attributes: every row projects to the empty tuple.
        if k == 0 {
            return Ok(GroupIds::from_parts(
                attrs.clone(),
                vec![0; self.rows],
                if self.rows == 0 {
                    Vec::new()
                } else {
                    vec![self.rows as u64]
                },
                Vec::new(),
            ));
        }
        let spans = self.shard_spans(attrs, &positions, budget, cached)?;
        let bits: Vec<u32> = positions
            .iter()
            .map(|&p| bit_width(self.dicts[p].values.len()))
            .collect();
        let (row_ids, counts, group_codes) =
            merge_spans(k, &bits, &spans, self.rows, budget.get())?;
        Ok(GroupIds::from_parts(
            attrs.clone(),
            row_ids,
            counts,
            group_codes,
        ))
    }

    /// The shard-local pass: one span table per shard, group codes remapped
    /// from the shard's local dictionaries into the global code space (row
    /// ids stay shard-local; the merge rewrites them).  With `cached`,
    /// warm shards are pure cache reads and cold shards compute
    /// single-flight.
    fn shard_spans(
        &self,
        attrs: &AttrSet,
        positions: &[usize],
        budget: ThreadBudget,
        cached: bool,
    ) -> Result<Vec<Arc<SpanGroups>>> {
        let span_of = |s: usize, share: ThreadBudget| {
            if cached {
                self.shards[s].span(attrs, positions, share)
            } else {
                self.shards[s].compute_span(attrs, positions, share)
            }
        };
        let nshards = self.shards.len();
        let workers = budget.get().min(nshards).min(MAX_CHUNK_WORKERS);
        if workers <= 1 {
            return (0..nshards).map(|s| span_of(s, budget)).collect();
        }
        // Fan out over the shards, work-stealing so a few large shards do
        // not stall the rest; each shard's kernel gets the per-worker share
        // of the budget (layers divide one budget, never multiply).
        let share = ThreadBudget::new((budget.get() / workers).max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceSlot<Result<Arc<SpanGroups>>>> =
            (0..nshards).map(|_| OnceSlot::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= nshards {
                        break;
                    }
                    let out = span_of(s, share);
                    slots[s]
                        .set(out)
                        .unwrap_or_else(|_| unreachable!("shard index claimed twice"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every shard slot is filled by exactly one worker")
            })
            .collect()
    }

    /// Groups by `attrs` and decodes the distinct groups through the global
    /// dictionaries; bit-identical to [`Relation::group_counts`] on the
    /// collected flat relation.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<GroupCounts> {
        self.group_counts_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::group_counts`] under a [`ThreadBudget`] (see
    /// [`ShardedRelation::group_ids_with`]).
    pub fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        let ids = self.group_ids_with(attrs, budget)?;
        Ok(self.decode_group_counts(&ids))
    }

    /// Decodes a [`GroupIds`] of this sharded relation into a
    /// [`GroupCounts`] through the global dictionaries.
    pub fn decode_group_counts(&self, ids: &GroupIds) -> GroupCounts {
        let positions = self
            .attr_positions(ids.attrs())
            .expect("grouping was built from this relation's attributes");
        let arity = positions.len();
        let groups = ids.num_groups();
        let mut keys: Vec<Value> = Vec::with_capacity(groups * arity);
        for g in 0..groups {
            for (j, &p) in positions.iter().enumerate() {
                let code = ids.group_codes()[g * arity + j];
                keys.push(self.dicts[p].values[code as usize]);
            }
        }
        GroupCounts::from_parts(
            ids.attrs().clone(),
            self.rows as u128,
            keys,
            ids.group_codes().to_vec(),
            ids.counts().to_vec(),
        )
    }

    // ------------------------------------------------------------------
    // Set semantics / projection
    // ------------------------------------------------------------------

    /// Projection `Π_Y(R)` with set semantics, as a flat [`Relation`]
    /// (distinct projections are almost always far smaller than the
    /// input); bit-identical to [`Relation::project`] on the collected
    /// flat relation.
    pub fn project(&self, attrs: &AttrSet) -> Result<Relation> {
        self.project_with(attrs, ThreadBudget::serial())
    }

    /// [`ShardedRelation::project`] under a [`ThreadBudget`].
    pub fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let ids = self.group_ids_with(attrs, budget)?;
        let arity = positions.len();
        let mut out = Relation::with_capacity(attrs.as_slice().to_vec(), ids.num_groups())?;
        let mut buf: Vec<Value> = vec![0; arity];
        for g in 0..ids.num_groups() {
            for (j, &p) in positions.iter().enumerate() {
                buf[j] = self.dicts[p].values[ids.group_codes()[g * arity + j] as usize];
            }
            out.push_row(&buf)?;
        }
        Ok(out)
    }

    /// `true` if the concatenated tuples are pairwise distinct.
    pub fn is_set(&self) -> bool {
        let ids = self
            .group_ids(&self.attrs())
            .expect("own attributes are always present");
        ids.num_groups() == self.rows
    }

    /// The distinct tuples across all shards as a flat [`Relation`] (first
    /// occurrence kept, concatenation order preserved, columns in this
    /// relation's schema order) — row-for-row identical to
    /// [`Relation::distinct`] on the collected flat relation.
    pub fn distinct(&self) -> Relation {
        let attrs = self.attrs();
        let ids = self
            .group_ids(&attrs)
            .expect("own attributes are always present");
        // Group codes are in ascending-attribute order; `order[p]` is the
        // index within that order of the attribute at schema position `p`.
        let order: Vec<usize> = self
            .schema
            .iter()
            .map(|&a| {
                attrs
                    .as_slice()
                    .iter()
                    .position(|&b| b == a)
                    .expect("own schema is covered by own attribute set")
            })
            .collect();
        let arity = self.arity();
        let mut out = Relation::with_capacity(self.schema.clone(), ids.num_groups())
            .expect("own schema is duplicate-free");
        let mut buf: Vec<Value> = vec![0; arity];
        for g in 0..ids.num_groups() {
            let codes = ids.group_code(g);
            for (p, slot) in buf.iter_mut().enumerate() {
                *slot = self.dicts[p].values[codes[order[p]] as usize];
            }
            out.push_row(&buf)
                .expect("decoded group rows keep the relation's arity");
        }
        out
    }

    /// Materialises the rows at the given **sorted, strictly increasing**
    /// global row indices as a fresh flat [`Relation`] — bit-identical to
    /// [`Relation::gather_rows`] on the collected flat relation, because
    /// both rebuild from decoded values in global row order (see
    /// [`crate::GroupKernel::gather_rows`]).
    pub fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        crate::relation::validate_gather_indices(sorted_rows, self.rows as u64)?;
        let mut out = Relation::with_capacity(self.schema.clone(), sorted_rows.len())?;
        let mut cursor = 0usize;
        let mut offset = 0u64;
        for shard in &self.shards {
            let end = offset + shard.local.len() as u64;
            while cursor < sorted_rows.len() && sorted_rows[cursor] < end {
                out.push_row(shard.local.row((sorted_rows[cursor] - offset) as usize))?;
                cursor += 1;
            }
            offset = end;
        }
        Ok(out)
    }

    /// Streams the `attrs`-projection of every shard through a seeded
    /// [`KmvSketch`] and merges the shard-local sketches in shard order.
    ///
    /// The sketch hashes *decoded* values and its merge is
    /// order-independent, so the result is **identical** to
    /// [`Relation::distinct_sketch`] on the collected flat relation at any
    /// shard count.
    pub fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        // Validate against the global schema first so an unknown attribute
        // errors identically to the flat path even with zero shards.
        self.attr_positions(attrs)?;
        let mut merged = KmvSketch::new(k, seed);
        for shard in &self.shards {
            merged.merge(&shard.local.distinct_sketch(attrs, k, seed)?);
        }
        Ok(merged)
    }
}

impl Relation {
    /// Splits this relation into `n` contiguous, near-equal row shards
    /// (`n` is clamped to at least 1; when `n` exceeds the row count the
    /// surplus shards are empty), each a self-contained columnar
    /// [`RelationShard`] with its own dictionaries.
    ///
    /// The round trip [`ShardedRelation::collect`] reproduces this relation
    /// exactly, and every grouping over the shards is bit-identical to
    /// grouping this relation directly.
    pub fn into_shards(self, n: usize) -> Result<ShardedRelation> {
        let schema = self.schema().to_vec();
        let mut out = ShardedRelation::new(schema.clone())?;
        for (start, end) in chunk_bounds(self.len(), n.max(1)) {
            let mut shard = Relation::with_capacity(schema.clone(), end - start)?;
            for i in start..end {
                shard.push_row(self.row(i))?;
            }
            out.append_shard(shard)?;
        }
        Ok(out)
    }
}

impl GroupSource for ShardedRelation {
    fn schema(&self) -> &[AttrId] {
        ShardedRelation::schema(self)
    }

    fn num_rows(&self) -> usize {
        self.len()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        ShardedRelation::active_domain_size(self, attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        ShardedRelation::group_counts(self, attrs).map(Arc::new)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        ShardedRelation::group_ids(self, attrs).map(Arc::new)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        ShardedRelation::project(self, attrs).map(Arc::new)
    }
}

impl GroupKernel for ShardedRelation {
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        ShardedRelation::group_counts_with(self, attrs, budget)
    }

    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        ShardedRelation::group_ids_with(self, attrs, budget)
    }

    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        ShardedRelation::project_with(self, attrs, budget)
    }

    fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        ShardedRelation::gather_rows(self, sorted_rows)
    }

    fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        ShardedRelation::distinct_sketch(self, attrs, k, seed)
    }
}

impl fmt::Display for ShardedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedRelation(")?;
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")[{} rows / {} shards]", self.rows, self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[
                &[5, 0, 9][..],
                &[5, 1, 9][..],
                &[7, 0, 8][..],
                &[7, 1, 8][..],
                &[5, 0, 9][..], // duplicate: multiset
            ],
        )
        .unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn assert_ids_eq(a: &GroupIds, b: &GroupIds, ctx: &str) {
        assert_eq!(a.row_ids(), b.row_ids(), "{ctx}");
        assert_eq!(a.counts(), b.counts(), "{ctx}");
        assert_eq!(a.group_codes(), b.group_codes(), "{ctx}");
    }

    #[test]
    fn into_shards_and_collect_roundtrip() {
        let flat = sample();
        for n in [1usize, 2, 3, 5, 9] {
            let sharded = flat.clone().into_shards(n).unwrap();
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.len(), flat.len());
            let back = sharded.collect().unwrap();
            assert_eq!(back.len(), flat.len());
            assert_eq!(back.schema(), flat.schema());
            for (a, b) in back.iter_rows().zip(flat.iter_rows()) {
                assert_eq!(a, b);
            }
            // Dictionaries are reproduced exactly, not just the rows.
            for &attr in flat.schema() {
                assert_eq!(back.domain(attr).unwrap(), flat.domain(attr).unwrap());
                assert_eq!(
                    back.column_codes(attr).unwrap(),
                    flat.column_codes(attr).unwrap()
                );
            }
        }
    }

    #[test]
    fn global_dictionaries_match_flat_dictionaries() {
        let flat = sample();
        let sharded = flat.clone().into_shards(3).unwrap();
        for &attr in flat.schema() {
            assert_eq!(sharded.domain(attr).unwrap(), flat.domain(attr).unwrap());
            assert_eq!(
                sharded.active_domain_size(attr).unwrap(),
                flat.active_domain_size(attr).unwrap()
            );
        }
        assert!(sharded.domain(AttrId(9)).is_err());
    }

    #[test]
    fn grouping_is_bit_identical_to_flat() {
        let flat = sample();
        for n in [1usize, 2, 4, 7] {
            let sharded = flat.clone().into_shards(n).unwrap();
            for attrs in [
                AttrSet::empty(),
                bag(&[0]),
                bag(&[1]),
                bag(&[0, 2]),
                bag(&[0, 1, 2]),
            ] {
                let a = flat.group_ids(&attrs).unwrap();
                for budget in [ThreadBudget::serial(), ThreadBudget::new(4)] {
                    let b = sharded.group_ids_with(&attrs, budget).unwrap();
                    assert_ids_eq(&a, &b, &format!("n={n} attrs={attrs}"));
                    // The cache-bypassing baseline agrees bit-for-bit too.
                    let c = sharded.group_ids_uncached_with(&attrs, budget).unwrap();
                    assert_ids_eq(&a, &c, &format!("uncached n={n} attrs={attrs}"));
                }
                let ca = flat.group_counts(&attrs).unwrap();
                let cb = sharded.group_counts(&attrs).unwrap();
                assert_eq!(ca.total, cb.total);
                assert_eq!(ca.counts(), cb.counts());
                for g in 0..ca.num_groups() {
                    assert_eq!(ca.key(g), cb.key(g));
                    assert_eq!(ca.key_codes(g), cb.key_codes(g));
                }
            }
        }
    }

    #[test]
    fn projection_and_distinct_match_flat() {
        let flat = sample();
        let sharded = flat.clone().into_shards(2).unwrap();
        let attrs = bag(&[0, 1]);
        let pa = flat.project(&attrs).unwrap();
        let pb = sharded.project(&attrs).unwrap();
        assert_eq!(pa.len(), pb.len());
        for (a, b) in pa.iter_rows().zip(pb.iter_rows()) {
            assert_eq!(a, b);
        }
        let da = flat.distinct();
        let db = sharded.distinct();
        assert_eq!(da.len(), db.len());
        assert_eq!(da.schema(), db.schema());
        for (a, b) in da.iter_rows().zip(db.iter_rows()) {
            assert_eq!(a, b);
        }
        assert!(!sharded.is_set());
        assert!(flat.distinct().into_shards(2).unwrap().is_set());
    }

    #[test]
    fn append_shard_rejects_schema_mismatch() {
        let mut sharded = ShardedRelation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let wrong_set = Relation::new(vec![AttrId(0), AttrId(2)]).unwrap();
        assert!(sharded.append_shard(wrong_set).is_err());
        // Same attribute set, different column order: also rejected.
        let wrong_order = Relation::new(vec![AttrId(1), AttrId(0)]).unwrap();
        assert!(sharded.append_shard(wrong_order).is_err());
        let ok = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[&[1, 2][..]]).unwrap();
        sharded.append_shard(ok).unwrap();
        assert_eq!(sharded.len(), 1);
        assert_eq!(sharded.shard(0).row_offset(), 0);
        // A rejected append bumps neither the epoch nor the id counter.
        assert_eq!(sharded.epoch(), 1);
        assert_eq!(sharded.shard(0).id(), 0);
    }

    #[test]
    fn append_as_new_shard_extends_analysis_state() {
        // Appending a batch leaves prior shards untouched and the merged
        // grouping equals the flat relation over all rows seen so far.
        let schema = vec![AttrId(0), AttrId(1)];
        let mut sharded = ShardedRelation::new(schema.clone()).unwrap();
        let mut flat = Relation::new(schema.clone()).unwrap();
        let batches: Vec<Vec<[Value; 2]>> = vec![
            vec![[1, 10], [2, 10]],
            vec![],
            vec![[1, 20], [3, 30], [2, 10]],
            vec![[4, 10]],
        ];
        for batch in batches {
            let rows: Vec<&[Value]> = batch.iter().map(|r| &r[..]).collect();
            let shard = Relation::from_rows(schema.clone(), &rows).unwrap();
            for row in &batch {
                flat.push_row(row).unwrap();
            }
            sharded.append_shard(shard).unwrap();
            for attrs in [bag(&[0]), bag(&[1]), bag(&[0, 1])] {
                let a = flat.group_ids(&attrs).unwrap();
                let b = sharded.group_ids(&attrs).unwrap();
                assert_ids_eq(&a, &b, &format!("attrs={attrs}"));
            }
        }
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.shard(2).row_offset(), 2);
    }

    #[test]
    fn epoch_and_shard_ids_are_stable_and_monotone() {
        let schema = vec![AttrId(0)];
        let mut sharded = ShardedRelation::new(schema.clone()).unwrap();
        assert_eq!(sharded.epoch(), 0);
        for i in 0..3u64 {
            let shard = Relation::from_rows(schema.clone(), &[&[i as Value][..]]).unwrap();
            sharded.append_shard(shard).unwrap();
            assert_eq!(sharded.epoch(), i + 1);
            assert_eq!(sharded.shard(i as usize).id(), i);
        }
        // Clones share the shard objects (and their ids) by Arc.
        let clone = sharded.clone();
        for s in 0..3 {
            assert!(Arc::ptr_eq(&sharded.shards()[s], &clone.shards()[s]));
            assert_eq!(clone.shard(s).id(), s as u64);
        }
        // Appending to the clone bumps only the clone's epoch; the original
        // and its shards are untouched (copy-on-append).
        let mut clone = clone;
        let shard = Relation::from_rows(schema.clone(), &[&[9][..]]).unwrap();
        clone.append_shard(shard).unwrap();
        assert_eq!(clone.epoch(), 4);
        assert_eq!(clone.shard(3).id(), 3);
        assert_eq!(sharded.epoch(), 3);
        assert_eq!(sharded.num_shards(), 3);
    }

    /// The incrementality contract, at the relation layer: after a warm
    /// grouping, appending one shard and re-grouping costs exactly one
    /// per-shard cache miss per attribute set — not `k + 1`.
    #[test]
    fn append_regroups_only_the_new_shard() {
        let flat = sample();
        let k = 3;
        let mut sharded = flat.clone().into_shards(k).unwrap();
        let sets = [bag(&[0]), bag(&[1, 2])];
        for attrs in &sets {
            sharded.group_ids(attrs).unwrap();
        }
        let warm = sharded.shard_cache_stats();
        assert_eq!(warm.misses, (k * sets.len()) as u64, "cold fill: k per set");
        assert_eq!(warm.hits, 0);
        assert_eq!(warm.entries, k * sets.len());

        // Append one batch and re-group the same sets.
        let batch = Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[&[7, 2, 9][..], &[5, 0, 8][..]],
        )
        .unwrap();
        let mut grown_flat = flat.clone();
        for row in batch.iter_rows() {
            grown_flat.push_row(row).unwrap();
        }
        sharded.append_shard(batch).unwrap();
        for attrs in &sets {
            let a = grown_flat.group_ids(attrs).unwrap();
            let b = sharded.group_ids(attrs).unwrap();
            assert_ids_eq(&a, &b, &format!("attrs={attrs}"));
        }
        let after = sharded.shard_cache_stats();
        assert_eq!(
            after.misses - warm.misses,
            sets.len() as u64,
            "exactly one new compute (the appended shard) per attribute set"
        );
        assert_eq!(
            after.hits,
            (k * sets.len()) as u64,
            "every pre-existing shard must answer from its warm table"
        );
    }

    /// Satellite: appending an **empty** shard is a no-op for every
    /// grouping, stays bit-identical to the flat rebuild, and still bumps
    /// the epoch (it is a real append).
    #[test]
    fn appending_an_empty_shard_is_bit_identical_to_flat() {
        let flat = sample();
        let schema = flat.schema().to_vec();
        let mut sharded = flat.clone().into_shards(2).unwrap();
        let epoch_before = sharded.epoch();
        sharded
            .append_shard(Relation::new(schema).unwrap())
            .unwrap();
        assert_eq!(sharded.epoch(), epoch_before + 1);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.len(), flat.len());
        assert!(sharded.shard(2).is_empty());
        for attrs in [bag(&[0]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let a = flat.group_ids(&attrs).unwrap();
            for budget in [ThreadBudget::serial(), ThreadBudget::new(4)] {
                let b = sharded.group_ids_with(&attrs, budget).unwrap();
                assert_ids_eq(&a, &b, &format!("attrs={attrs}"));
            }
        }
    }

    /// Satellite: a shard whose values sit at the u32 extremes exercises
    /// the dictionary remap at the edge of the code/value space — still
    /// bit-identical to the flat rebuild, before and after a second append
    /// re-using those extreme values.
    #[test]
    fn extreme_u32_values_remap_bit_identically() {
        let schema = vec![AttrId(0), AttrId(1)];
        let extremes: Vec<[Value; 2]> = vec![
            [u32::MAX, 0],
            [0, u32::MAX],
            [u32::MAX - 1, u32::MAX],
            [u32::MAX, u32::MAX],
        ];
        let mut flat = Relation::new(schema.clone()).unwrap();
        let mut sharded = ShardedRelation::new(schema.clone()).unwrap();
        let rows: Vec<&[Value]> = extremes.iter().map(|r| &r[..]).collect();
        sharded
            .append_shard(Relation::from_rows(schema.clone(), &rows).unwrap())
            .unwrap();
        for row in &extremes {
            flat.push_row(row).unwrap();
        }
        // Second append re-uses the extreme values (warm remap entries) and
        // adds a fresh one.
        let more: Vec<[Value; 2]> = vec![[u32::MAX, u32::MAX], [1, u32::MAX - 1]];
        let rows: Vec<&[Value]> = more.iter().map(|r| &r[..]).collect();
        sharded
            .append_shard(Relation::from_rows(schema.clone(), &rows).unwrap())
            .unwrap();
        for row in &more {
            flat.push_row(row).unwrap();
        }
        assert_eq!(
            sharded.domain(AttrId(0)).unwrap(),
            flat.domain(AttrId(0)).unwrap()
        );
        for attrs in [bag(&[0]), bag(&[1]), bag(&[0, 1])] {
            let a = flat.group_ids(&attrs).unwrap();
            let b = sharded.group_ids(&attrs).unwrap();
            assert_ids_eq(&a, &b, &format!("attrs={attrs}"));
        }
    }

    /// Satellite: append-after-append with warm caches between every step —
    /// each intermediate state pinned bit-identical to its flat rebuild.
    #[test]
    fn append_after_append_stays_bit_identical_with_warm_caches() {
        let schema = vec![AttrId(0), AttrId(1)];
        let mut flat = Relation::new(schema.clone()).unwrap();
        let mut sharded = ShardedRelation::new(schema.clone()).unwrap();
        let sets = [bag(&[0]), bag(&[1]), bag(&[0, 1])];
        for step in 0..5u32 {
            let batch: Vec<[Value; 2]> = (0..4)
                .map(|i| [(step * 3 + i) % 7, (step + i) % 3])
                .collect();
            let rows: Vec<&[Value]> = batch.iter().map(|r| &r[..]).collect();
            sharded
                .append_shard(Relation::from_rows(schema.clone(), &rows).unwrap())
                .unwrap();
            for row in &batch {
                flat.push_row(row).unwrap();
            }
            // Group (warming the caches), then verify against a flat
            // rebuild of everything seen so far.
            for attrs in &sets {
                let a = flat.group_ids(attrs).unwrap();
                let b = sharded.group_ids(attrs).unwrap();
                assert_ids_eq(&a, &b, &format!("step={step} attrs={attrs}"));
                let c = sharded
                    .group_ids_uncached_with(attrs, ThreadBudget::serial())
                    .unwrap();
                assert_ids_eq(&a, &c, &format!("uncached step={step} attrs={attrs}"));
            }
        }
        assert_eq!(sharded.epoch(), 5);
        assert_eq!(sharded.num_shards(), 5);
    }

    #[test]
    fn empty_sharded_relation_behaves() {
        let sharded = ShardedRelation::new(vec![AttrId(0)]).unwrap();
        assert!(sharded.is_empty());
        assert_eq!(sharded.num_shards(), 0);
        assert_eq!(sharded.epoch(), 0);
        assert!(sharded.is_set());
        let ids = sharded.group_ids(&bag(&[0])).unwrap();
        assert_eq!(ids.num_groups(), 0);
        assert_eq!(sharded.project(&bag(&[0])).unwrap().len(), 0);
        assert_eq!(sharded.collect().unwrap().len(), 0);
        // An empty relation still shards (into empty shards).
        let empty = Relation::new(vec![AttrId(0)])
            .unwrap()
            .into_shards(3)
            .unwrap();
        assert_eq!(empty.num_shards(), 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn duplicate_schema_rejected() {
        assert!(ShardedRelation::new(vec![AttrId(0), AttrId(0)]).is_err());
    }

    /// Regression: a shard count far above `MAX_CHUNK_WORKERS` under a
    /// parallel budget must not fan the merge rewrite out one-thread-per-
    /// shard (the rewrite is capped and partitioned into contiguous runs) —
    /// and the result stays bit-identical to the flat kernel.
    #[test]
    fn thousands_of_shards_group_without_thread_explosion() {
        let schema = vec![AttrId(0), AttrId(1)];
        let mut flat = Relation::new(schema).unwrap();
        for i in 0..4000u32 {
            flat.push_row(&[i % 97, (i * i) % 53]).unwrap();
        }
        let sharded = flat.clone().into_shards(2000).unwrap();
        assert_eq!(sharded.num_shards(), 2000);
        let attrs = bag(&[0, 1]);
        let a = flat.group_ids(&attrs).unwrap();
        for budget in [ThreadBudget::serial(), ThreadBudget::new(8)] {
            let b = sharded.group_ids_with(&attrs, budget).unwrap();
            assert_ids_eq(&a, &b, "2000 shards");
        }
    }

    #[test]
    fn unknown_attribute_errors() {
        let sharded = sample().into_shards(2).unwrap();
        assert!(sharded.group_ids(&bag(&[9])).is_err());
        assert!(sharded.group_counts(&bag(&[9])).is_err());
        assert!(sharded.project(&bag(&[9])).is_err());
        // Failed lookups leave no cache entries behind.
        assert_eq!(sharded.shard_cache_stats(), ShardCacheStats::default());
    }

    #[test]
    fn group_source_metadata_matches_flat() {
        let flat = sample();
        let sharded = flat.clone().into_shards(2).unwrap();
        assert_eq!(GroupSource::schema(&sharded), GroupSource::schema(&flat));
        assert_eq!(
            GroupSource::num_rows(&sharded),
            GroupSource::num_rows(&flat)
        );
        assert_eq!(GroupSource::attrs(&sharded), flat.attrs());
        assert_eq!(GroupSource::arity(&sharded), 3);
        assert_eq!(
            GroupSource::attr_positions(&sharded, &bag(&[0, 2])).unwrap(),
            vec![0, 2]
        );
        assert!(GroupSource::attr_positions(&sharded, &bag(&[9])).is_err());
    }

    #[test]
    fn display_mentions_rows_and_shards() {
        let sharded = sample().into_shards(2).unwrap();
        let s = format!("{sharded}");
        assert!(s.contains("5 rows"));
        assert!(s.contains("2 shards"));
    }
}
