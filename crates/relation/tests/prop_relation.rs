//! Property-based tests of the relational algebra laws that the rest of the
//! workspace relies on.

use ajd_relation::join::{count_natural_join, natural_join, semijoin};
use ajd_relation::{AttrId, AttrSet, Relation, Value};
use proptest::prelude::*;

/// Strategy: a relation over `arity` attributes (ids 0..arity) with values
/// in `0..domain`, up to `max_rows` rows (duplicates allowed).
fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection is idempotent and never increases cardinality.
    #[test]
    fn projection_idempotent_and_shrinking(r in relation_strategy(3, 5, 40)) {
        let attrs = AttrSet::from_ids([0u32, 2]);
        let p = r.project(&attrs).unwrap();
        prop_assert!(p.len() <= r.len());
        prop_assert!(p.is_set());
        let pp = p.project(&attrs).unwrap();
        prop_assert!(pp.set_eq(&p));
    }

    /// Projection onto a subset of a projection equals direct projection.
    #[test]
    fn projection_composes(r in relation_strategy(4, 4, 40)) {
        let big = AttrSet::from_ids([0u32, 1, 3]);
        let small = AttrSet::from_ids([1u32, 3]);
        let via_big = r.project(&big).unwrap().project(&small).unwrap();
        let direct = r.project(&small).unwrap();
        prop_assert!(via_big.set_eq(&direct));
    }

    /// `R ⊆ Π_{AB}(R) ⋈ Π_{BC}(R)` and the join of projections of a *set*
    /// relation is a set.
    #[test]
    fn join_of_projections_contains_original(r in relation_strategy(3, 4, 30)) {
        let r = r.distinct();
        prop_assume!(!r.is_empty());
        let left = r.project(&AttrSet::from_ids([0u32, 1])).unwrap();
        let right = r.project(&AttrSet::from_ids([1u32, 2])).unwrap();
        let joined = natural_join(&left, &right).unwrap();
        prop_assert!(r.is_subset_of(&joined));
        prop_assert!(joined.is_set());
        prop_assert_eq!(joined.len() as u128, count_natural_join(&left, &right).unwrap());
    }

    /// Natural join is commutative up to column order and set equality.
    #[test]
    fn join_commutative(
        a in relation_strategy(2, 4, 25),
        b in relation_strategy(2, 4, 25),
    ) {
        // Rename b's second column so the two relations overlap on attribute 1.
        let b2 = {
            let mut rel = Relation::new(vec![AttrId(1), AttrId(2)]).unwrap();
            for row in b.iter_rows() {
                rel.push_row(row).unwrap();
            }
            rel.distinct()
        };
        let a = a.distinct();
        let ab = natural_join(&a, &b2).unwrap();
        let ba = natural_join(&b2, &a).unwrap();
        prop_assert!(ab.set_eq(&ba));
    }

    /// Semijoin output is contained in the left input and agrees with the
    /// projection of the full join.
    #[test]
    fn semijoin_matches_join_projection(
        a in relation_strategy(2, 4, 25),
        b in relation_strategy(2, 4, 25),
    ) {
        let a = a.distinct();
        let b2 = {
            let mut rel = Relation::new(vec![AttrId(1), AttrId(2)]).unwrap();
            for row in b.iter_rows() {
                rel.push_row(row).unwrap();
            }
            rel.distinct()
        };
        let sj = semijoin(&a, &b2).unwrap();
        prop_assert!(sj.is_subset_of(&a));
        if !a.is_empty() && !b2.is_empty() {
            let full = natural_join(&a, &b2).unwrap();
            let proj = full.project(&a.attrs()).unwrap();
            prop_assert!(proj.set_eq(&sj));
        }
    }

    /// Canonicalisation is a normal form: set-equal relations canonicalise
    /// identically.
    #[test]
    fn canonicalize_is_a_normal_form(r in relation_strategy(3, 4, 30)) {
        let shuffled = r.reorder_columns(&[AttrId(2), AttrId(0), AttrId(1)]).unwrap();
        let c1 = r.distinct().canonicalize();
        let c2 = shuffled.distinct().canonicalize();
        prop_assert_eq!(c1.schema(), c2.schema());
        prop_assert_eq!(c1.len(), c2.len());
        for (x, y) in c1.iter_rows().zip(c2.iter_rows()) {
            prop_assert_eq!(x, y);
        }
    }

    /// Group counts sum to the relation size and match selection sizes.
    #[test]
    fn group_counts_are_consistent_with_selections(r in relation_strategy(2, 4, 40)) {
        let counts = r.group_counts(&AttrSet::singleton(AttrId(0))).unwrap();
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, r.len() as u64);
        for (key, c) in counts.iter() {
            let selected = r.select_eq(AttrId(0), key[0]).unwrap();
            prop_assert_eq!(selected.len() as u64, c);
        }
    }
}
