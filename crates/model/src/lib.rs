//! `ajd-model` — a deterministic concurrency model checker for the
//! workspace's synchronisation core.
//!
//! The checker runs a test body on *virtual threads* (real OS threads,
//! exactly one runnable at a time) and performs a bounded depth-first
//! search over every scheduling decision: which thread runs at each yield
//! point, and which waiter a `notify_one` wakes.  Each schedule is a
//! replayable comma-separated decision list, so a failure found on any
//! machine reproduces exactly on every other.
//!
//! Violations flagged:
//!
//! * **deadlock** — all live threads blocked with no wakeup possible;
//! * **missed wakeup / lost notify** — all threads blocked, but a forced
//!   spurious wakeup (legal per `std::sync::Condvar`) lets the program
//!   finish, proving a waiter slept while its predicate held;
//! * **panic** — an assertion failure in the body (this is how invariant
//!   checks like "exactly one compute per cold key" are expressed);
//! * **livelock** — a run exceeding the per-run operation budget;
//! * **divergence** — a replayed schedule that no longer matches the code.
//!
//! The primitives in [`sync`] and [`thread`] are *dual-mode*: inside a
//! [`Model::check`] body they are instrumented scheduling points; outside
//! a run they behave exactly like their `std` counterparts.  The
//! [`ajd-sync`](https://example.invalid/ajd) facade re-exports them under
//! `--cfg ajd_model` so production code is modelled unchanged.
//!
//! The model explores under **sequential consistency**: atomic `Ordering`
//! arguments are accepted but not weakened.  See `docs/CONCURRENCY.md`
//! for scope and usage, including how to write and replay a model test.
//!
//! ```
//! use ajd_model::{sync::Mutex, thread, Model};
//! use std::sync::Arc;
//!
//! let report = Model::new().max_schedules(1000).explore(|| {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let c2 = Arc::clone(&counter);
//!     let t = thread::spawn(move || *c2.lock() += 1);
//!     *counter.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*counter.lock(), 2);
//! });
//! assert!(report.violation.is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod explore;
mod runtime;
pub mod sync;
pub mod thread;

pub use explore::{yield_point, Model, Report, Violation};
pub use runtime::ViolationKind;
