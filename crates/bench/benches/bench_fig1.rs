//! End-to-end benchmark of one Figure 1 data point: sample a relation from
//! the degenerate random model and compute `I(A_S;B_S)`.  This is the unit
//! of work the `exp_fig1` experiment repeats over the `d` sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_info::mutual_information;
use ajd_random::RandomRelationModel;
use ajd_relation::{AttrId, AttrSet};

fn bench_fig1_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/point");
    group.sample_size(20);
    for &d in &[100u64, 300, 500] {
        let rho = 0.1f64;
        let n = (d as f64 * d as f64 / (1.0 + rho)).round() as u64;
        let model = RandomRelationModel::degenerate(d, d).unwrap();
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("sample_and_mi", d), &d, |b, _| {
            let mut rng = StdRng::seed_from_u64(d);
            b.iter(|| {
                let r = model.sample(&mut rng, n).unwrap();
                mutual_information(
                    &r,
                    &AttrSet::singleton(AttrId(0)),
                    &AttrSet::singleton(AttrId(1)),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1_point);
criterion_main!(benches);
