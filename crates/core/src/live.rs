//! Live (append-while-analyzing) analysis over an epoch-snapshot store.
//!
//! The borrow-based [`Analyzer`] pins one immutable source for its whole
//! life — fine for one-shot analysis, structurally incapable of serving
//! "did last hour's batch break the mined schema?".  [`LiveAnalyzer`]
//! closes that gap with the two-tier incremental design of the relation
//! layer:
//!
//! * **Per-shard tier** (`(shard_id, AttrSet)`): every
//!   [`ajd_relation::RelationShard`] caches its own globally-remapped group
//!   tables.  Shards are immutable and `Arc`-shared across epochs, so these
//!   tables survive every append.
//! * **Merged tier** (`(epoch, AttrSet)`): each epoch gets a fresh
//!   [`Analyzer`] over an `Arc<ShardedRelation>` snapshot; its
//!   [`AnalysisContext`](ajd_relation::AnalysisContext) caches merged
//!   whole-relation results, which an epoch bump invalidates wholesale (the
//!   context is simply replaced).  Rebuilding a warm attribute set costs
//!   one per-shard compute (the appended shard) plus a shard-order
//!   re-merge — never a re-group of the world.
//!
//! Readers call [`LiveAnalyzer::pin`] and get an epoch-consistent
//! [`Analyzer`] handle: every measure they run answers against one snapshot
//! even while appends land concurrently.  Writers call
//! [`LiveAnalyzer::append_shard`]; the swap is built on [`ajd_sync`]
//! primitives and model-checked (`ajd-relation/tests/model_snapshot.rs`).
//!
//! ```
//! use ajd_core::LiveAnalyzer;
//! use ajd_relation::{AttrId, AttrSet, Relation};
//!
//! let schema = vec![AttrId(0), AttrId(1)];
//! let first = Relation::from_rows(schema.clone(), &[&[1, 1][..], &[2, 1][..]]).unwrap();
//! let live = LiveAnalyzer::from_initial_shard(first).unwrap();
//!
//! let y = AttrSet::singleton(AttrId(0));
//! let reader = live.pin();                       // epoch 1
//! let h1 = reader.entropy(&y).unwrap();
//!
//! let batch = Relation::from_rows(schema, &[&[3, 2][..]]).unwrap();
//! live.append_shard(batch).unwrap();             // epoch 2 installed
//!
//! assert_eq!(reader.entropy(&y).unwrap(), h1);   // pinned reader: unchanged
//! assert!(live.pin().entropy(&y).unwrap() > h1); // fresh pin sees the append
//! assert_eq!(live.stats().epoch, 2);
//! ```

use crate::analysis::Analyzer;
use ajd_relation::{
    CacheStats, Relation, Result, ShardCacheStats, ShardedRelation, ShardedStore, ThreadBudget,
};
use ajd_sync::RwLock;
use std::sync::Arc;

/// Incremental-aware cache counters of a [`LiveAnalyzer`], split by tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Epoch of the currently installed snapshot.
    pub epoch: u64,
    /// Merged-result tier: the current epoch's
    /// [`AnalysisContext`](ajd_relation::AnalysisContext) counters.  Reset
    /// on every epoch bump (the tier is invalidated wholesale).
    pub merged: CacheStats,
    /// Per-shard tier: group-table counters summed over the current
    /// snapshot's shards.  Survives epoch bumps — after an append, a warm
    /// attribute set re-groups exactly the new shard (one miss), every
    /// existing shard answering from its warm table (hits).
    pub shards: ShardCacheStats,
}

/// An analyzer over a live, append-only sharded relation: readers pin
/// epoch-consistent [`Analyzer`] snapshots while appends install the next
/// epoch.  See the [module docs](self) for the two-tier cache design.
#[derive(Debug)]
pub struct LiveAnalyzer {
    store: Arc<ShardedStore>,
    /// The analyzer over the newest installed epoch; replaced (never
    /// mutated) on epoch bumps, so a pinned clone stays consistent forever.
    current: RwLock<Analyzer<Arc<ShardedRelation>>>,
    /// Budget handed to each epoch's fresh analyzer.
    budget: ThreadBudget,
}

impl LiveAnalyzer {
    /// Wraps an existing relation (at whatever epoch it carries) with the
    /// default [`ThreadBudget`].
    pub fn new(initial: ShardedRelation) -> Self {
        Self::from_store(Arc::new(ShardedStore::new(initial)))
    }

    /// A live analyzer whose first shard is `first` (epoch 1).
    pub fn from_initial_shard(first: Relation) -> Result<Self> {
        Ok(Self::from_store(Arc::new(
            ShardedStore::from_initial_shard(first)?,
        )))
    }

    /// Wraps a shared [`ShardedStore`] (several live analyzers — or other
    /// writers — may append through the same store; see
    /// [`LiveAnalyzer::refresh`]).
    pub fn from_store(store: Arc<ShardedStore>) -> Self {
        Self::with_thread_budget(store, ThreadBudget::default())
    }

    /// Like [`LiveAnalyzer::from_store`] with an explicit miss-computation
    /// budget for each epoch's analyzer.
    pub fn with_thread_budget(store: Arc<ShardedStore>, budget: ThreadBudget) -> Self {
        let current = Analyzer::with_thread_budget(store.snapshot(), budget);
        LiveAnalyzer {
            store,
            current: RwLock::new(current),
            budget,
        }
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// An epoch-consistent [`Analyzer`] handle over the newest installed
    /// snapshot.  The clone shares the epoch's merged-result cache (and the
    /// snapshot's per-shard tables) with every other pin of the same epoch;
    /// appends landing later never disturb it.
    pub fn pin(&self) -> Analyzer<Arc<ShardedRelation>> {
        self.current.read().clone()
    }

    /// Epoch of the currently installed snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().source().epoch()
    }

    /// Appends `shard` as a new epoch and installs an analyzer over it,
    /// returning the new epoch.  All-or-nothing: on error the current
    /// epoch stays installed.
    ///
    /// Appends are serialized by the store's writer lock; the install is
    /// guarded by epoch so two concurrent appends can never regress the
    /// installed snapshot (the later epoch wins, whichever append's
    /// install runs last).
    pub fn append_shard(&self, shard: Relation) -> Result<u64> {
        let next = self.store.append_shard(shard)?;
        Ok(self.install(next))
    }

    /// Synchronizes with the store (for stores shared with other writers):
    /// if the store has moved past this analyzer's installed epoch, installs
    /// a fresh analyzer over the newest snapshot.  Returns the installed
    /// epoch.
    pub fn refresh(&self) -> u64 {
        let snap = self.store.snapshot();
        self.install(snap)
    }

    /// Installs `snapshot` unless something newer is already installed;
    /// returns the epoch that ends up installed.
    fn install(&self, snapshot: Arc<ShardedRelation>) -> u64 {
        let epoch = snapshot.epoch();
        let mut cur = self.current.write();
        if cur.source().epoch() < epoch {
            *cur = Analyzer::with_thread_budget(snapshot, self.budget);
        }
        cur.source().epoch()
    }

    /// Incremental-aware counters: current epoch, merged-tier cache stats
    /// (this epoch's context) and per-shard-tier stats (survive appends).
    pub fn stats(&self) -> LiveStats {
        let cur = self.current.read();
        LiveStats {
            epoch: cur.source().epoch(),
            merged: cur.cache_stats(),
            shards: cur.source().shard_cache_stats(),
        }
    }
}

impl Analyzer<Arc<ShardedRelation>> {
    /// Re-pins this analyzer to the store's newest snapshot if its epoch
    /// has moved on, keeping the thread budget; returns the epoch analyzed
    /// afterwards.  A no-op (cache kept) when the epoch is unchanged.
    ///
    /// This is the polling flavour of [`LiveAnalyzer`]: hold one `Analyzer`,
    /// call `refresh` between batches.  The replaced context's merged
    /// results are dropped (the epoch invalidates them) but the snapshot's
    /// per-shard group tables carry over, so post-refresh queries only
    /// group the appended shards.
    pub fn refresh(&mut self, store: &ShardedStore) -> u64 {
        let snap = store.snapshot();
        let epoch = snap.epoch();
        if self.source().epoch() != epoch {
            let budget = self.context().thread_budget();
            *self = Analyzer::with_thread_budget(snap, budget);
        }
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::{AttrId, AttrSet};

    fn schema() -> Vec<AttrId> {
        vec![AttrId(0), AttrId(1)]
    }

    fn batch(rows: &[[u32; 2]]) -> Relation {
        let rows: Vec<&[u32]> = rows.iter().map(|r| &r[..]).collect();
        Relation::from_rows(schema(), &rows).unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn pinned_readers_survive_appends() {
        let live = LiveAnalyzer::from_initial_shard(batch(&[[1, 1], [2, 1]])).unwrap();
        let reader = live.pin();
        let y = bag(&[0]);
        let h_before = reader.entropy(&y).unwrap();
        live.append_shard(batch(&[[3, 2], [4, 2]])).unwrap();
        assert_eq!(reader.entropy(&y).unwrap().to_bits(), h_before.to_bits());
        assert_eq!(reader.source().len(), 2);
        let fresh = live.pin();
        assert_eq!(fresh.source().len(), 4);
        assert_eq!(fresh.source().epoch(), 2);
        assert_eq!(live.epoch(), 2);
    }

    #[test]
    fn failed_append_keeps_the_current_epoch() {
        let live = LiveAnalyzer::from_initial_shard(batch(&[[1, 1]])).unwrap();
        let wrong = Relation::new(vec![AttrId(0), AttrId(9)]).unwrap();
        assert!(live.append_shard(wrong).is_err());
        assert_eq!(live.epoch(), 1);
        assert_eq!(live.pin().source().len(), 1);
    }

    /// The acceptance criterion of the incremental design, at the core
    /// layer: appending one shard to a k-shard relation with a warm
    /// analyzer re-groups exactly the new shard — per-shard misses grow by
    /// 1 per warm attribute set, not k+1 — and the merged result is
    /// bit-identical to a cold from-scratch `ShardedRelation`, at every
    /// shard × thread combination.
    #[test]
    fn append_regroups_exactly_the_new_shard_per_cached_set() {
        let sets = [bag(&[0]), bag(&[1]), bag(&[0, 1])];
        for k in [1usize, 2, 3, 5] {
            for threads in [1usize, 4] {
                let base: Vec<[u32; 2]> = (0..12u32).map(|i| [i % 5, (i * i) % 3]).collect();
                let flat = batch(&base);
                let store = Arc::new(ShardedStore::new(flat.clone().into_shards(k).unwrap()));
                let live = LiveAnalyzer::with_thread_budget(store, ThreadBudget::new(threads));

                // Warm the merged tier (and thereby the per-shard tier).
                let warm = live.pin();
                for attrs in &sets {
                    warm.entropy(attrs).unwrap();
                }
                let warm_stats = live.stats();
                assert_eq!(warm_stats.shards.misses, (k * sets.len()) as u64);

                // Append one shard; re-run the same sets on a fresh pin.
                let extra: Vec<[u32; 2]> = vec![[7, 2], [1, 0], [9, 1]];
                live.append_shard(batch(&extra)).unwrap();
                let pinned = live.pin();
                for attrs in &sets {
                    pinned.entropy(attrs).unwrap();
                }
                let after = live.stats();
                assert_eq!(after.epoch, warm_stats.epoch + 1);
                assert_eq!(
                    after.shards.misses - warm_stats.shards.misses,
                    sets.len() as u64,
                    "k={k} threads={threads}: exactly one per-shard compute \
                     (the appended shard) per warm attribute set"
                );
                assert_eq!(
                    after.shards.hits,
                    (k * sets.len()) as u64,
                    "k={k} threads={threads}: every pre-existing shard must \
                     answer from its warm table"
                );
                // The merged tier was invalidated by the epoch bump: the new
                // epoch's context recomputed (merged) each set once.
                assert_eq!(after.merged.misses, sets.len() as u64);

                // Bit-identity against a cold from-scratch sharded relation
                // over the same rows.
                let mut grown = flat.clone();
                for row in &extra {
                    grown.push_row(row).unwrap();
                }
                let cold = grown.into_shards(k + 1).unwrap();
                let cold_rel = cold.collect().unwrap();
                for attrs in &sets {
                    let a = pinned.context().group_ids(attrs).unwrap();
                    let b = cold_rel.group_ids(attrs).unwrap();
                    assert_eq!(a.row_ids(), b.row_ids(), "k={k} threads={threads}");
                    assert_eq!(a.counts(), b.counts(), "k={k} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn analyzer_refresh_follows_the_store() {
        let store = Arc::new(ShardedStore::from_initial_shard(batch(&[[1, 1], [2, 2]])).unwrap());
        let mut analyzer = Analyzer::with_thread_budget(store.snapshot(), ThreadBudget::serial());
        let y = bag(&[0]);
        analyzer.entropy(&y).unwrap();
        assert_eq!(analyzer.refresh(&store), 1, "no-op when nothing appended");
        assert_eq!(analyzer.cache_stats().misses, 1, "no-op keeps the cache");
        store.append_shard(batch(&[[3, 3]])).unwrap();
        assert_eq!(analyzer.refresh(&store), 2);
        assert_eq!(analyzer.source().len(), 3);
        assert!(
            analyzer.context().thread_budget().is_serial(),
            "refresh keeps the analyzer's budget"
        );
        // The refreshed context is cold (merged tier invalidated)…
        assert_eq!(analyzer.cache_stats().misses, 0);
        analyzer.entropy(&y).unwrap();
        // …but the per-shard tier carried over: only the new shard computed.
        assert_eq!(analyzer.source().shard_cache_stats().misses, 2);
        assert_eq!(analyzer.source().shard_cache_stats().hits, 1);
    }

    #[test]
    fn two_live_analyzers_share_one_store_via_refresh() {
        let store = Arc::new(ShardedStore::from_initial_shard(batch(&[[1, 1]])).unwrap());
        let a = LiveAnalyzer::from_store(Arc::clone(&store));
        let b = LiveAnalyzer::from_store(Arc::clone(&store));
        a.append_shard(batch(&[[2, 2]])).unwrap();
        assert_eq!(a.epoch(), 2);
        assert_eq!(b.epoch(), 1, "b has not refreshed yet");
        assert_eq!(b.refresh(), 2);
        assert_eq!(b.pin().source().len(), 2);
    }

    #[test]
    fn stats_report_epoch_and_both_tiers() {
        let live = LiveAnalyzer::from_initial_shard(batch(&[[1, 1], [2, 2]])).unwrap();
        let zero = live.stats();
        assert_eq!(zero.epoch, 1);
        assert_eq!(zero.merged, CacheStats::default());
        assert_eq!(zero.shards, ShardCacheStats::default());
        live.pin().entropy(&bag(&[0])).unwrap();
        let warm = live.stats();
        assert_eq!(warm.merged.misses, 1);
        assert_eq!(warm.shards.misses, 1);
        assert_eq!(warm.shards.entries, 1);
    }
}
