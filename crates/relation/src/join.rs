//! Natural joins, semijoins and join cardinality.
//!
//! The paper's central combinatorial quantity is the size of the acyclic
//! join `|⋈ᵢ R[Ωᵢ]|`, from which the relative number of spurious tuples
//! `ρ(R,S) = (|⋈ᵢ R[Ωᵢ]| − |R|)/|R|` (eq. 1) is computed.  This module
//! provides the generic relational operators:
//!
//! * [`natural_join`] — classic build/probe hash join of two relations on
//!   their shared attributes.
//! * [`natural_join_all`] — left-to-right multiway join (used as the
//!   *materialising baseline* in benchmarks and tests).
//! * [`semijoin`] — `R ⋉ S`, used by Yannakakis-style processing.
//! * [`count_natural_join`] — cardinality of a two-way join without
//!   materialising the output.
//!
//! Joins run on **dictionary codes**: the probe side's codes are remapped
//! into the build side's code space through the column dictionaries (one
//! dictionary lookup per *distinct* value, not per row), the per-row join
//! key packs into a single `u64`, and rows whose key value does not occur on
//! the other side are skipped before any hashing.  Raw-value hashing remains
//! only as a fallback for keys too wide to pack.
//!
//! The asymptotically better way to compute the size of an *acyclic* join is
//! message passing over the join tree; that lives in `ajd-jointree`
//! (`count_acyclic_join`) because it needs the join-tree type, and is
//! validated against [`natural_join_all`] in tests.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap};
use crate::relation::{GroupCounts, Relation, Value};

/// Sentinel key for probe rows whose shared values cannot occur in the build
/// side (the key space is capped at `u64::MAX - 1`, so this never collides).
const MISS: u64 = u64::MAX;

/// Packed `u64` join keys of the two sides over their shared attributes, in
/// the **left** relation's code space.
///
/// `left[i]` is the mixed-radix packing of row `i`'s shared-attribute codes;
/// `right[j]` is the same packing of row `j`'s codes *after remapping into
/// the left dictionaries* — [`MISS`] if some value of the row does not occur
/// in the left relation at all (such a row can never join).  Returns `None`
/// when the packed key space would exceed `u64` (dozens of huge shared
/// columns); callers then fall back to hashing decoded keys.
fn shared_code_keys(
    left: &Relation,
    right: &Relation,
    shared: &AttrSet,
) -> Result<Option<(Vec<u64>, Vec<u64>)>> {
    let mut strides_fit = true;
    let mut key_space: u128 = 1;
    let left_pos = left.attr_positions(shared)?;
    let right_pos = right.attr_positions(shared)?;
    let mut domains: Vec<u64> = Vec::with_capacity(shared.len());
    for &p in &left_pos {
        let d = left.schema()[p];
        // Domain sizes are dictionary lengths, bounded by the u32 code
        // space, so the u64 is exact; only the key-space *product* needs
        // u128 headroom.
        let size = left.domain(d)?.len().max(1) as u64;
        // ajd: allow(silent-arithmetic, "overflow guard, not a count: the product is only compared against u64::MAX to decide whether packed keys fit; saturating at u128::MAX keeps that comparison correct")
        key_space = key_space.saturating_mul(size as u128);
        domains.push(size);
    }
    if key_space > u64::MAX as u128 {
        strides_fit = false;
    }
    if !strides_fit {
        return Ok(None);
    }

    // Per shared attribute: right code → left code (or u32::MAX).
    let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(shared.len());
    for (&lp, &rp) in left_pos.iter().zip(&right_pos) {
        let attr_l = left.schema()[lp];
        let attr_r = right.schema()[rp];
        let remap: Vec<u32> = right
            .domain(attr_r)?
            .iter()
            .map(|&v| {
                left.code_of(attr_l, v)
                    .expect("attribute comes from left's schema")
                    .unwrap_or(u32::MAX)
            })
            .collect();
        remaps.push(remap);
    }

    let n_left = left.len();
    let mut left_keys: Vec<u64> = Vec::with_capacity(n_left);
    for i in 0..n_left {
        let mut key = 0u64;
        for (k, &p) in left_pos.iter().enumerate() {
            let codes = left
                .column_codes(left.schema()[p])
                .expect("own schema attribute");
            key = key * domains[k] + codes[i] as u64;
        }
        left_keys.push(key);
    }

    let n_right = right.len();
    let mut right_keys: Vec<u64> = Vec::with_capacity(n_right);
    'rows: for j in 0..n_right {
        let mut key = 0u64;
        for (k, &p) in right_pos.iter().enumerate() {
            let codes = right
                .column_codes(right.schema()[p])
                .expect("own schema attribute");
            let mapped = remaps[k][codes[j] as usize];
            if mapped == u32::MAX {
                right_keys.push(MISS);
                continue 'rows;
            }
            key = key * domains[k] + mapped as u64;
        }
        right_keys.push(key);
    }

    Ok(Some((left_keys, right_keys)))
}

/// Decoded (raw-value) join key of one row — the fallback key type.
fn decoded_key(row: &[Value], positions: &[usize]) -> Box<[Value]> {
    positions
        .iter()
        .map(|&p| row[p])
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

/// Computes the natural join `left ⋈ right` on their shared attributes.
///
/// If the relations share no attribute the result is the Cartesian product.
/// The output schema is `left`'s columns followed by `right`'s non-shared
/// columns.  Output rows are **not** deduplicated (joining two sets always
/// yields a set, so no deduplication is needed in that case).
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());

    let right_extra: Vec<AttrId> = right
        .schema()
        .iter()
        .copied()
        .filter(|a| !shared.contains(*a))
        .collect();
    let right_extra_pos: Vec<usize> = right_extra
        .iter()
        .map(|&a| right.attr_pos(a).expect("attribute from own schema"))
        .collect();

    let mut out_schema: Vec<AttrId> = left.schema().to_vec();
    out_schema.extend_from_slice(&right_extra);
    let mut out = Relation::new(out_schema)?;
    let mut out_row = vec![0u32; left.arity() + right_extra.len()];

    let emit =
        |out: &mut Relation, out_row: &mut [u32], lrow: &[Value], matches: &[u32]| -> Result<()> {
            out_row[..left.arity()].copy_from_slice(lrow);
            for &ri in matches {
                let rrow = right.row(ri as usize);
                for (k, &p) in right_extra_pos.iter().enumerate() {
                    out_row[left.arity() + k] = rrow[p];
                }
                out.push_row(out_row)?;
            }
            Ok(())
        };

    if let Some((left_keys, right_keys)) = shared_code_keys(left, right, &shared)? {
        // Build on `right` (output-order stability), keyed by packed codes.
        let mut build: FxHashMap<u64, Vec<u32>> = map_with_capacity(right.len());
        for (j, &key) in right_keys.iter().enumerate() {
            if key != MISS {
                build.entry(key).or_default().push(j as u32);
            }
        }
        for (i, lrow) in left.iter_rows().enumerate() {
            if let Some(matches) = build.get(&left_keys[i]) {
                emit(&mut out, &mut out_row, lrow, matches)?;
            }
        }
    } else {
        // Fallback for very wide keys: hash decoded shared values.
        let left_key_pos = left.attr_positions(&shared)?;
        let right_key_pos = right.attr_positions(&shared)?;
        let mut build: FxHashMap<Box<[Value]>, Vec<u32>> = map_with_capacity(right.len());
        for (j, rrow) in right.iter_rows().enumerate() {
            build
                .entry(decoded_key(rrow, &right_key_pos))
                .or_default()
                .push(j as u32);
        }
        for lrow in left.iter_rows() {
            if let Some(matches) = build.get(&decoded_key(lrow, &left_key_pos)) {
                emit(&mut out, &mut out_row, lrow, matches)?;
            }
        }
    }
    Ok(out)
}

/// Counts `|left ⋈ right|` without materialising the join output.
///
/// The count is `Σ_k c_left(k) · c_right(k)` over the shared-attribute
/// groups of the two sides, accumulated in `u128` with checked arithmetic
/// (two-way joins reach `N²`, which exceeds `u64` at production scale);
/// a result beyond `u128` yields [`RelationError::CountOverflow`].
pub fn count_natural_join(left: &Relation, right: &Relation) -> Result<u128> {
    let shared = left.attrs().intersection(&right.attrs());
    let left_counts = left.group_counts(&shared)?;
    let right_counts = right.group_counts(&shared)?;
    count_join_of_group_counts(&left_counts, &right_counts)
}

/// Counts the join size `Σ_k c_left(k) · c_right(k)` from pre-grouped
/// counts of the two sides on their shared attributes.
///
/// This is the arithmetic core of [`count_natural_join`], exposed so cached
/// group counts (see [`crate::AnalysisContext`]) can be combined without
/// re-grouping, and so the overflow behaviour is testable with synthetic
/// counts.  Both inputs must be grouped by the same attribute set.
pub fn count_join_of_group_counts(left: &GroupCounts, right: &GroupCounts) -> Result<u128> {
    if left.attrs != right.attrs {
        return Err(RelationError::SchemaMismatch {
            detail: format!(
                "join counting needs both sides grouped by the same attributes, got {} and {}",
                left.attrs, right.attrs
            ),
        });
    }
    // Probe the smaller side against the larger one.
    let (probe, build) = if left.num_groups() <= right.num_groups() {
        (left, right)
    } else {
        (right, left)
    };
    let mut total: u128 = 0;
    for (key, count) in probe.iter() {
        let other = build.count_of(key);
        if other > 0 {
            // A product of two u64 counts always fits in u128; only the
            // accumulated sum can overflow.
            let pairs = (count as u128) * (other as u128);
            total = total
                .checked_add(pairs)
                .ok_or(RelationError::CountOverflow(
                    "two-way join size exceeds u128",
                ))?;
        }
    }
    Ok(total)
}

/// Joins a sequence of relations left to right: `r₁ ⋈ r₂ ⋈ … ⋈ r_k`.
///
/// This is the *materialising baseline* used to validate the join-tree based
/// counting; for cyclic join orders intermediate results can explode, which
/// is exactly the behaviour the ablation benchmark demonstrates.
pub fn natural_join_all(relations: &[Relation]) -> Result<Relation> {
    let mut iter = relations.iter();
    let first = iter.next().ok_or(RelationError::EmptyInput(
        "natural_join_all of zero relations",
    ))?;
    let mut acc = first.clone();
    for r in iter {
        acc = natural_join(&acc, r)?;
    }
    Ok(acc)
}

/// Computes the semijoin `left ⋉ right`: the tuples of `left` that agree
/// with at least one tuple of `right` on their shared attributes.
pub fn semijoin(left: &Relation, right: &Relation) -> Result<Relation> {
    let shared = left.attrs().intersection(&right.attrs());
    let mut out = Relation::new(left.schema().to_vec())?;

    if let Some((left_keys, right_keys)) = shared_code_keys(left, right, &shared)? {
        let mut keys = set_with_capacity(right.len());
        for &k in &right_keys {
            if k != MISS {
                keys.insert(k);
            }
        }
        for (i, row) in left.iter_rows().enumerate() {
            if keys.contains(&left_keys[i]) {
                out.push_row(row)?;
            }
        }
    } else {
        let left_key_pos = left.attr_positions(&shared)?;
        let right_key_pos = right.attr_positions(&shared)?;
        let mut keys = set_with_capacity(right.len());
        for row in right.iter_rows() {
            keys.insert(decoded_key(row, &right_key_pos));
        }
        for row in left.iter_rows() {
            if keys.contains(&decoded_key(row, &left_key_pos)) {
                out.push_row(row)?;
            }
        }
    }
    Ok(out)
}

/// Decomposes `r` onto a database schema: returns `[Π_{Ω₁}(R), …, Π_{Ω_m}(R)]`.
pub fn decompose(r: &Relation, schema: &[AttrSet]) -> Result<Vec<Relation>> {
    schema.iter().map(|bag| r.project(bag)).collect()
}

/// Computes the *loss* of a database schema with respect to `r`:
/// `(|⋈ᵢ Π_{Ωᵢ}(R)| − |R|) / |R|` — eq. (1) of the paper — by fully
/// materialising the join.  Prefer the join-tree counting in `ajd-jointree`
/// for acyclic schemas; this function is the reference implementation.
///
/// `|R|` is the number of distinct tuples of `R` projected onto the
/// schema's attributes (equal to `r.len()` in the paper's setting of a set
/// relation fully covered by the schema), so the loss is never negative.
pub fn loss_materialized(r: &Relation, schema: &[AttrSet]) -> Result<f64> {
    if r.is_empty() {
        return Err(RelationError::EmptyInput("relation for loss computation"));
    }
    let projections = decompose(r, schema)?;
    let joined = natural_join_all(&projections)?;
    let covered = schema.iter().fold(AttrSet::empty(), |acc, b| acc.union(b));
    let base = r.group_counts(&covered)?.num_groups() as f64;
    Ok((joined.len() as f64 - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[Value]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    #[test]
    fn join_on_shared_attribute() {
        // R(A,B) ⋈ S(B,C)
        let r = rel(&[0, 1], &[&[1, 10], &[2, 10], &[3, 20]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 200], &[30, 300]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.attrs(), AttrSet::from_ids([0, 1, 2]));
        assert_eq!(j.len(), 4); // (1,10)x2 + (2,10)x2
        assert!(j.contains_row(&[1, 10, 100]));
        assert!(j.contains_row(&[2, 10, 200]));
        assert!(!j.contains_row(&[3, 20, 300]));
        assert_eq!(count_natural_join(&r, &s).unwrap(), 4);
    }

    #[test]
    fn join_without_shared_attributes_is_cartesian_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7], &[8], &[9]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 6);
        assert_eq!(count_natural_join(&r, &s).unwrap(), 6);
    }

    #[test]
    fn join_with_identical_schemas_is_intersection() {
        let r = rel(&[0, 1], &[&[1, 1], &[2, 2]]);
        let s = rel(&[0, 1], &[&[2, 2], &[3, 3]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[2, 2]));
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[2, 30]]);
        let s = rel(&[1, 2], &[&[10, 5], &[20, 6], &[20, 7]]);
        let a = natural_join(&r, &s).unwrap();
        let b = natural_join(&s, &r).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn join_handles_values_missing_from_either_dictionary() {
        // Values 20 and 30 occur on only one side each: rows carrying them
        // must silently not join (code remapping yields a MISS).
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 5], &[30, 6]]);
        let j = natural_join(&r, &s).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[1, 10, 5]));
        let sj = semijoin(&r, &s).unwrap();
        assert_eq!(sj.len(), 1);
        assert!(sj.contains_row(&[1, 10]));
    }

    #[test]
    fn multiway_join_reconstructs_lossless_decomposition() {
        // R(A,B,C) that satisfies the MVD A ->> B | C  (so lossless).
        let mut rows = Vec::new();
        for a in 0..3u32 {
            for b in 0..2u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([0, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(joined.set_eq(&r));
        assert_eq!(loss_materialized(&r, &schema).unwrap(), 0.0);
    }

    #[test]
    fn lossy_decomposition_produces_spurious_tuples() {
        // Example 4.1: a bijection between A and B; schema {{A},{B}}.
        let n = 5u32;
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        let rho = loss_materialized(&r, &schema).unwrap();
        assert!((rho - (n as f64 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn join_always_contains_original_relation() {
        let r = rel(&[0, 1, 2], &[&[0, 1, 2], &[0, 2, 1], &[1, 1, 1]]);
        let schema = vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2])];
        let parts = decompose(&r, &schema).unwrap();
        let joined = natural_join_all(&parts).unwrap();
        assert!(r.is_subset_of(&joined));
        assert!(joined.len() >= r.len());
    }

    #[test]
    fn semijoin_filters_left_side() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&[1], &[&[10], &[30]]);
        let sj = semijoin(&r, &s).unwrap();
        assert_eq!(sj.len(), 2);
        assert!(sj.contains_row(&[1, 10]));
        assert!(sj.contains_row(&[3, 30]));
        assert_eq!(sj.schema(), r.schema());
    }

    #[test]
    fn join_all_of_nothing_is_an_error() {
        assert!(natural_join_all(&[]).is_err());
    }

    #[test]
    fn loss_of_empty_relation_is_an_error() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let schema = vec![AttrSet::singleton(AttrId(0)), AttrSet::singleton(AttrId(1))];
        assert!(loss_materialized(&r, &schema).is_err());
    }

    #[test]
    fn count_matches_materialised_join_size() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]]);
        let s = rel(&[1, 2], &[&[1, 9], &[1, 8], &[2, 7], &[4, 6]]);
        assert_eq!(
            count_natural_join(&r, &s).unwrap(),
            natural_join(&r, &s).unwrap().len() as u128
        );
    }

    fn synthetic_counts(attr: u32, counts: &[(Value, u64)]) -> GroupCounts {
        let mut g = GroupCounts::new(AttrSet::singleton(AttrId(attr)));
        for &(v, c) in counts {
            // `insert` maintains `total` with checked u128 accumulation, so
            // the synthetic overflow scenarios below stay exactly
            // representable without saturation.
            g.insert(&[v], c).unwrap();
        }
        g
    }

    /// Regression: the count used to accumulate in `u64`, silently wrapping
    /// for joins beyond `2^64` pairs; it now widens to `u128` with checked
    /// arithmetic.
    #[test]
    fn count_from_group_counts_handles_beyond_u64() {
        // A single shared key with 2^40 matches on each side: the join has
        // 2^80 tuples, far beyond u64, and must be reported exactly.
        let big = 1u64 << 40;
        let left = synthetic_counts(0, &[(7, big)]);
        let right = synthetic_counts(0, &[(7, big)]);
        assert_eq!(
            count_join_of_group_counts(&left, &right).unwrap(),
            1u128 << 80
        );
    }

    /// Regression: counts whose sum exceeds `u128` must error out instead of
    /// wrapping or saturating (a clamped join size yields a wrong loss).
    #[test]
    fn count_from_group_counts_overflow_is_an_error() {
        let huge = u64::MAX;
        let left = synthetic_counts(0, &[(0, huge), (1, huge), (2, huge)]);
        let right = synthetic_counts(0, &[(0, huge), (1, huge), (2, huge)]);
        let err = count_join_of_group_counts(&left, &right).unwrap_err();
        assert!(matches!(err, RelationError::CountOverflow(_)));
    }

    #[test]
    fn count_from_group_counts_rejects_mismatched_groupings() {
        let left = synthetic_counts(0, &[(0, 1)]);
        let right = synthetic_counts(1, &[(0, 1)]);
        assert!(count_join_of_group_counts(&left, &right).is_err());
    }
}
