//! Virtual-thread spawning: the model-backed twins of `std::thread`'s
//! `spawn`, `scope`, and `yield_now`.
//!
//! Under an active model run, "threads" are virtual: real OS threads, of
//! which exactly one is runnable at a time (the crate-private scheduler
//! enforces the turn handshake).  A
//! spawned closure parks immediately and only begins when the controller
//! first schedules it; `join` blocks virtually, so the explorer can
//! interleave other threads around it.  Outside a run everything falls
//! back to plain `std::thread`.
//!
//! A panic inside a virtual thread (other than the runtime's own abort
//! sentinel) is recorded as a [`crate::ViolationKind::Panic`] violation
//! and aborts the run — `join` never returns the payload in modelled
//! mode, because the whole schedule is already a counterexample.

use crate::runtime::{self, Block, Handle, Runtime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

// ajd: allow-file(raw-sync-primitive, "the virtual-thread result slots live below the instrumented layer: they are written by a finishing thread and read only after its virtual join, so they must be plain std primitives to avoid recursing into the model")

/// Result of joining a thread, mirroring `std::thread::Result`.
pub type JoinResult<T> = std::thread::Result<T>;

type Slot<T> = Arc<StdMutex<Option<JoinResult<T>>>>;

fn take_slot<T>(slot: &Slot<T>) -> JoinResult<T> {
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("virtual thread finished without storing a result")
}

/// Runs `f` as virtual thread `vid` of `rt`: installs the thread-local
/// handle, parks until first scheduled, stores the result, and marks the
/// thread finished.  Used by both `spawn` and `Scope::spawn`.
fn virtual_thread_body<T, F>(rt: Arc<Runtime>, vid: usize, slot: Slot<T>, f: F)
where
    F: FnOnce() -> T,
{
    let handle = Handle {
        rt: Arc::clone(&rt),
        me: vid,
    };
    runtime::with_handle(handle, || {
        // `wait_first` sits INSIDE the catch: a run that aborts before
        // this thread is ever scheduled delivers its abort sentinel from
        // there, and the thread must still store a result and mark itself
        // finished — otherwise the controller (and any scope OS-joining
        // this thread) waits on it forever.
        let result = match catch_unwind(AssertUnwindSafe(|| {
            rt.wait_first(vid);
            f()
        })) {
            Ok(value) => Ok(value),
            Err(payload) => {
                rt.record_panic(&payload);
                Err(payload)
            }
        };
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        rt.finish(vid);
    });
}

/// Runs `f` as the root virtual thread of a run (used by the explorer;
/// the result slot is discarded — the root returns unit and its panics
/// are recorded as run failures).
pub(crate) fn run_virtual<F: FnOnce()>(rt: Arc<Runtime>, vid: usize, f: F) {
    let slot: Slot<()> = Arc::new(StdMutex::new(None));
    virtual_thread_body(rt, vid, slot, f);
}

/// Blocks the calling *virtual* thread until thread `vid` finishes.
fn virtual_join(h: &Handle, vid: usize) {
    // Check-then-park is race-free: the caller holds the turn, so `vid`
    // cannot finish between the check and the yield; if it finishes while
    // we are parked, `finish` wakes every `Join(vid)` waiter.
    while !h.rt.is_finished(vid) {
        h.rt.yield_as(h.me, Block::Join(vid));
    }
}

/// Yields the calling thread: a scheduling point under a model run, a
/// plain `std::thread::yield_now` otherwise.
pub fn yield_now() {
    if let Some(h) = runtime::current() {
        h.rt.yield_runnable(h.me);
        return;
    }
    std::thread::yield_now();
}

/// A handle to a spawned thread; virtual under a model run, `std` otherwise.
pub struct JoinHandle<T> {
    mode: HandleMode<T>,
}

enum HandleMode<T> {
    Model {
        rt: Arc<Runtime>,
        vid: usize,
        slot: Slot<T>,
        os: std::thread::JoinHandle<()>,
    },
    Std(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.  In
    /// modelled mode the wait is virtual (a scheduling point) and a panic
    /// in the target aborts the run before this returns.
    pub fn join(self) -> JoinResult<T> {
        match self.mode {
            HandleMode::Model { rt, vid, slot, os } => {
                let h = runtime::current()
                    .expect("virtual JoinHandle joined from outside its model run");
                debug_assert!(Arc::ptr_eq(&h.rt, &rt));
                virtual_join(&h, vid);
                // The OS thread is past its last runtime call; this join
                // only covers its final unwinding, never a virtual wait.
                let _ = os.join();
                take_slot(&slot)
            }
            HandleMode::Std(os) => os.join(),
        }
    }
}

/// Spawns a thread; virtual (parked until scheduled) under a model run.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some(h) = runtime::current() {
        let vid = h.rt.register();
        let slot: Slot<T> = Arc::new(StdMutex::new(None));
        let rt = Arc::clone(&h.rt);
        let slot2 = Arc::clone(&slot);
        // ajd: allow(raw-spawn, "virtual threads are real OS threads parked by the runtime; this is the spawn site the model is built on, not workspace parallelism")
        let os = std::thread::spawn(move || virtual_thread_body(rt, vid, slot2, f));
        return JoinHandle {
            mode: HandleMode::Model {
                rt: Arc::clone(&h.rt),
                vid,
                slot,
                os,
            },
        };
    }
    JoinHandle {
        // ajd: allow(raw-spawn, "outside a model run this facade defers to std spawn verbatim; budgeted callers never reach it")
        mode: HandleMode::Std(std::thread::spawn(f)),
    }
}

/// A scope for spawning borrowing threads, mirroring `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    /// `Some` when the enclosing `scope` call runs inside a model run.
    model: Option<Arc<Runtime>>,
    /// Virtual ids spawned through this scope (virtually joined on exit).
    spawned: StdMutex<Vec<usize>>,
}

/// A handle to a scoped thread, mirroring `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    mode: ScopedMode<'scope, T>,
}

enum ScopedMode<'scope, T> {
    Model {
        vid: usize,
        slot: Slot<T>,
        os: std::thread::ScopedJoinHandle<'scope, ()>,
    },
    Std(std::thread::ScopedJoinHandle<'scope, T>),
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread within the scope; it may borrow from `'env`.
    pub fn spawn<T, F>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        if let Some(rt) = &self.model {
            let vid = rt.register();
            self.spawned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(vid);
            let slot: Slot<T> = Arc::new(StdMutex::new(None));
            let rt2 = Arc::clone(rt);
            let slot2 = Arc::clone(&slot);
            let os = self
                .inner
                .spawn(move || virtual_thread_body(rt2, vid, slot2, f));
            return ScopedJoinHandle {
                mode: ScopedMode::Model { vid, slot, os },
            };
        }
        ScopedJoinHandle {
            mode: ScopedMode::Std(self.inner.spawn(f)),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result; virtual
    /// under a model run (see [`JoinHandle::join`]).
    pub fn join(self) -> JoinResult<T> {
        match self.mode {
            ScopedMode::Model { vid, slot, os } => {
                let h = runtime::current()
                    .expect("virtual ScopedJoinHandle joined from outside its model run");
                virtual_join(&h, vid);
                let _ = os.join();
                take_slot(&slot)
            }
            ScopedMode::Std(os) => os.join(),
        }
    }
}

/// Creates a scope for spawning borrowing threads; all threads spawned in
/// it are joined (virtually, under a model run) before `scope` returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let model = runtime::current();
    std::thread::scope(|std_scope| {
        let scope = Scope {
            inner: std_scope,
            model: model.as_ref().map(|h| Arc::clone(&h.rt)),
            spawned: StdMutex::new(Vec::new()),
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        if let Some(h) = &model {
            match &out {
                // Virtually join every spawned thread BEFORE
                // std::thread::scope's implicit OS-level join: the caller
                // still holds the turn here, so a real join would deadlock
                // the run (the scoped virtual threads can only progress
                // once we yield).
                Ok(_) => {
                    let vids: Vec<usize> = std::mem::take(
                        &mut *scope.spawned.lock().unwrap_or_else(PoisonError::into_inner),
                    );
                    for vid in vids {
                        virtual_join(h, vid);
                    }
                }
                // The owner is unwinding (its own panic, or the abort
                // sentinel thrown mid-join after a child panicked).  It
                // cannot yield any more, yet std::thread::scope below will
                // OS-join every scoped thread — including ones still
                // parked awaiting their first turn.  Record the failure,
                // then release the turn so the controller's abort drain
                // can run those children to their (aborting) completion;
                // only then does the OS join — and this unwind — make
                // progress.
                Err(payload) => {
                    h.rt.record_panic(payload);
                    h.rt.abort_and_release(h.me);
                }
            }
        }
        match out {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}
