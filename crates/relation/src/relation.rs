//! Relation instances over a columnar, dictionary-encoded store.
//!
//! A [`Relation`] is the concrete representation of a relation instance `R`
//! over a set of attributes `Ω` (the paper's `R ∈ Rel(Ω)`).  Every quantity
//! the paper defines — entropies, the J-measure, KL-to-tree, the exact loss
//! `ρ` — reduces to *group counts* over projections of one relation, so the
//! store is organised around making grouping cheap:
//!
//! * each attribute owns a **per-column dictionary** mapping its raw
//!   [`Value`]s to dense `u32` codes (assigned in first-appearance order)
//!   and a flat `Vec<u32>` **code column**;
//! * a row-major decoded mirror backs the classic tuple API
//!   ([`Relation::row`], [`Relation::iter_rows`]) so ingestion and
//!   inspection look exactly like a row store;
//! * grouping ([`Relation::group_counts`], [`Relation::group_ids`]),
//!   projection and deduplication run on the integer codes: when the product
//!   of the grouped domains is small the kernel counts into a dense
//!   mixed-radix table (no hashing at all), otherwise it hashes a single
//!   packed `u64` per row — never a heap-allocated key per row.
//!
//! A relation may be a *set* (all tuples distinct — the common case in the
//! paper) or a *multiset* (duplicates allowed — used for empirical
//! distributions of multisets of tuples); [`Relation::is_set`] distinguishes
//! the two and [`Relation::distinct`] converts.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{map_with_capacity, set_with_capacity, FxHashMap};
use crate::parallel::{chunk_bounds, ThreadBudget};
use crate::sketch::KmvSketch;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::fmt;

/// A raw attribute value.
///
/// Values are opaque `u32`s supplied by the caller (or by a
/// [`crate::Catalog`] when ingesting labelled data); internally every column
/// re-encodes them as dense dictionary codes.
pub type Value = u32;

/// Largest dense mixed-radix table the grouping kernel will allocate
/// (entries, i.e. 4 bytes each).  Beyond this the kernel switches to hashing
/// packed keys.
const RADIX_TABLE_CAP: u128 = 1 << 26;

/// One column of a [`Relation`]: a dictionary (code ⇄ value) plus the dense
/// code of every row.
#[derive(Debug, Clone, Default)]
struct Column {
    /// `code → value`, in first-appearance order.
    values: Vec<Value>,
    /// `value → code`.
    index: FxHashMap<Value, u32>,
    /// Per-row dictionary codes.
    codes: Vec<u32>,
}

impl Column {
    /// Interns `v`, returning its dense code.
    fn encode(&mut self, v: Value) -> Result<u32> {
        if let Some(&c) = self.index.get(&v) {
            return Ok(c);
        }
        let code = u32::try_from(self.values.len()).map_err(|_| {
            RelationError::CountOverflow("column dictionary exceeds the u32 code space")
        })?;
        self.values.push(v);
        self.index.insert(v, code);
        Ok(code)
    }

    /// Number of distinct values interned (the active domain size).
    fn domain_size(&self) -> usize {
        self.values.len()
    }
}

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

/// Interned group keys: a dense renaming of the distinct `Y`-projections of
/// a relation's tuples, with ids assigned in first-appearance order.
///
/// For a relation `R` with `N` rows and an attribute set `Y`, the distinct
/// projections `Π_Y(R)` are numbered `0..g`; [`GroupIds::row_ids`] labels
/// every row of `R` with its group id, [`GroupIds::counts`] holds the
/// multiplicity of each group, and [`GroupIds::group_codes`] holds each
/// group's dictionary-code tuple (the *code-level* view; decode through
/// [`Relation::group_counts`] or [`GroupIds::decoded_group`] when raw values
/// are needed).  This is the layout the join-size message passing and the
/// two-way co-grouping algorithms in `ajd-jointree` consume: dense integer
/// ids and flat vectors, no hash lookups on boxed key tuples.
#[derive(Debug, Clone)]
pub struct GroupIds {
    attrs: AttrSet,
    row_ids: Vec<u32>,
    counts: Vec<u64>,
    /// Flattened code tuples, `attrs.len()` codes per group.
    group_codes: Vec<u32>,
}

impl GroupIds {
    /// The attribute set the rows are grouped by.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of distinct groups `g = |Π_Y(R)|`.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// The interned group id of every row of the source relation, in row
    /// order (ids are assigned in order of first appearance).
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// Multiplicity of each group, indexed by group id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of grouped rows (the `N` of the relation).
    pub fn total(&self) -> u64 {
        self.row_ids.len() as u64
    }

    /// The flattened dictionary-code tuples of all groups
    /// (`attrs.len()` codes per group, ascending attribute order).
    pub fn group_codes(&self) -> &[u32] {
        &self.group_codes
    }

    /// The dictionary-code tuple of group `g`.
    pub fn group_code(&self, g: usize) -> &[u32] {
        let a = self.attrs.len();
        &self.group_codes[g * a..(g + 1) * a]
    }

    /// Decodes group `g` back to raw values through the dictionaries of the
    /// relation the grouping was built from.
    ///
    /// Errors if `r` does not contain the grouped attributes (i.e. it is not
    /// the source relation or a schema-compatible copy).
    pub fn decoded_group(&self, r: &Relation, g: usize) -> Result<Vec<Value>> {
        let positions = r.attr_positions(&self.attrs)?;
        self.group_code(g)
            .iter()
            .zip(&positions)
            .map(|(&code, &p)| {
                r.columns[p].values.get(code as usize).copied().ok_or(
                    RelationError::SchemaMismatch {
                        detail: "group code outside the relation's dictionary".to_owned(),
                    },
                )
            })
            .collect()
    }

    /// Assembles a grouping from its parts (used by the sharded relation's
    /// shard-order merge; the flat kernels build theirs inline).
    pub(crate) fn from_parts(
        attrs: AttrSet,
        row_ids: Vec<u32>,
        counts: Vec<u64>,
        group_codes: Vec<u32>,
    ) -> Self {
        GroupIds {
            attrs,
            row_ids,
            counts,
            group_codes,
        }
    }

    /// Decomposes the grouping into `(row_ids, counts, group_codes)` — the
    /// sharded merge consumes per-shard groupings wholesale instead of
    /// copying their vectors.
    pub(crate) fn into_parts(self) -> (Vec<u32>, Vec<u64>, Vec<u32>) {
        (self.row_ids, self.counts, self.group_codes)
    }

    /// Maps every group id of this (finer) grouping to the id of the group
    /// it belongs to in a *coarser* grouping of the same relation
    /// (`coarser.attrs() ⊆ self.attrs()`).
    ///
    /// Rows with equal projections onto `self.attrs()` agree on any subset
    /// of those attributes, so any representative row determines the coarse
    /// group; the map is recovered in one linear pass over the two per-row
    /// id vectors.  This is the co-grouping primitive behind the interned
    /// join-size algorithms in `ajd-jointree`.
    ///
    /// Panics if `coarser` does not group by a subset of this grouping's
    /// attributes, or if the two groupings come from relations of different
    /// sizes (programming errors — a silently wrong map would corrupt every
    /// count derived from it).
    pub fn map_to(&self, coarser: &GroupIds) -> Vec<u32> {
        assert!(
            coarser.attrs.is_subset_of(&self.attrs),
            "map_to target must group by a subset of this grouping's attributes"
        );
        assert_eq!(
            self.row_ids.len(),
            coarser.row_ids.len(),
            "map_to requires groupings of the same relation"
        );
        let mut map = vec![0u32; self.num_groups()];
        for (&fine, &coarse) in self.row_ids.iter().zip(&coarser.row_ids) {
            map[fine as usize] = coarse;
        }
        map
    }
}

/// Counts of distinct grouped rows: the multiplicity of every distinct
/// projection of a relation onto some attribute set.
///
/// This is the basic object from which all marginal probabilities and
/// entropies are computed: for `Y ⊆ Ω`, the empirical marginal is
/// `P[Y=y] = count(y) / N`.  Groups are stored in first-appearance order and
/// expose both views the analysis stack needs: the **decoded** keys
/// ([`GroupCounts::iter`], [`GroupCounts::key`], [`GroupCounts::count_of`])
/// and the **code-level** keys ([`GroupCounts::key_codes`]).
///
/// The key → count lookup index is built **lazily** on the first
/// [`GroupCounts::count_of`] call: the hot consumers (entropies) only scan
/// the flat count vector, so a grouping with many distinct groups never
/// pays for a hash table it will not probe.
#[derive(Debug, Clone, Default)]
pub struct GroupCounts {
    /// Attribute set the rows are grouped by (ascending attribute order).
    pub attrs: AttrSet,
    /// Total number of rows that were grouped (the `N` of the relation).
    ///
    /// Carried as `u128` so synthetic tables whose per-group counts sum
    /// beyond `u64` (the overflow scenarios the join-size tests pin) stay
    /// *exactly* representable — the counting discipline never saturates.
    pub total: u128,
    arity: usize,
    /// Flattened decoded group keys, `arity` values per group.
    keys: Vec<Value>,
    /// Flattened dictionary-code group keys, `arity` codes per group.
    key_codes: Vec<u32>,
    /// Multiplicity of each group, indexed by group id.
    counts: Vec<u64>,
    /// Decoded key → group id, built on first point lookup.
    index: ajd_sync::OnceSlot<FxHashMap<Box<[Value]>, u32>>,
}

impl GroupCounts {
    /// Creates an empty count table grouped by `attrs` (used by synthetic
    /// constructions in tests and bounds code; relation-backed counts come
    /// from [`Relation::group_counts`]).
    pub fn new(attrs: AttrSet) -> Self {
        GroupCounts {
            arity: attrs.len(),
            attrs,
            ..GroupCounts::default()
        }
    }

    /// Inserts (or overwrites) the multiplicity of a grouped key, keeping
    /// [`GroupCounts::total`] in sync with **checked** `u128` accumulation.
    ///
    /// `key` must have exactly `attrs.len()` values.  An overwrite replaces
    /// the previous multiplicity in the total (subtract old, add new); an
    /// accumulation that leaves `u128` — only reachable when `total` was
    /// poked directly, since `u128::MAX / u64::MAX` inserts don't happen —
    /// fails with [`RelationError::CountOverflow`] instead of saturating:
    /// a clamped `N` would silently corrupt every ρ/J quantity derived
    /// from it.
    ///
    /// Intended for tables built from scratch via [`GroupCounts::new`]
    /// (synthetic counts in tests and bounds code): there is no backing
    /// dictionary, so the inserted key doubles as its own code tuple.  Do
    /// not mix inserts into counts produced by [`Relation::group_counts`] —
    /// the code-level view ([`GroupCounts::key_codes`]) of inserted groups
    /// would not correspond to any dictionary code.
    pub fn insert(&mut self, key: &[Value], count: u64) -> Result<()> {
        assert_eq!(key.len(), self.arity, "group key arity mismatch");
        const OVERFLOW: RelationError =
            RelationError::CountOverflow("synthetic group-count total exceeds u128");
        if let Some(&g) = self.index().get(key) {
            let old = self.counts[g as usize];
            self.total = self
                .total
                .checked_sub(old as u128)
                .and_then(|t| t.checked_add(count as u128))
                .ok_or(OVERFLOW)?;
            self.counts[g as usize] = count;
            return Ok(());
        }
        self.total = self.total.checked_add(count as u128).ok_or(OVERFLOW)?;
        let g = self.counts.len() as u32;
        self.keys.extend_from_slice(key);
        // Synthetic keys have no dictionary; mirror the values as codes so
        // the code-level view stays well-formed.
        self.key_codes.extend_from_slice(key);
        self.counts.push(count);
        self.index
            .get_mut()
            .expect("index() above initialised the lookup table")
            .insert(key.to_vec().into_boxed_slice(), g);
        Ok(())
    }

    /// Assembles a decoded count table from its parts (used by the sharded
    /// relation, which decodes group codes through its global dictionaries;
    /// the flat path goes through [`Relation::decode_group_counts`]).
    pub(crate) fn from_parts(
        attrs: AttrSet,
        total: u128,
        keys: Vec<Value>,
        key_codes: Vec<u32>,
        counts: Vec<u64>,
    ) -> Self {
        GroupCounts {
            arity: attrs.len(),
            attrs,
            total,
            keys,
            key_codes,
            counts,
            index: ajd_sync::OnceSlot::new(),
        }
    }

    /// Number of values per group key.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }

    /// The lazily-built decoded-key lookup table.
    fn index(&self) -> &FxHashMap<Box<[Value]>, u32> {
        self.index.get_or_init(|| {
            let mut index: FxHashMap<Box<[Value]>, u32> = map_with_capacity(self.num_groups());
            for g in 0..self.num_groups() {
                index.insert(self.key(g).to_vec().into_boxed_slice(), g as u32);
            }
            index
        })
    }

    /// Looks up the multiplicity of a specific decoded group key.
    ///
    /// The first call builds the lookup index (O(groups)); later calls are
    /// O(1) hash probes.
    pub fn count_of(&self, key: &[Value]) -> u64 {
        self.index()
            .get(key)
            .map(|&g| self.counts[g as usize])
            .unwrap_or(0)
    }

    /// The decoded key of group `g` (ascending attribute order).
    pub fn key(&self, g: usize) -> &[Value] {
        &self.keys[g * self.arity..(g + 1) * self.arity]
    }

    /// The dictionary-code key of group `g`.
    pub fn key_codes(&self, g: usize) -> &[u32] {
        &self.key_codes[g * self.arity..(g + 1) * self.arity]
    }

    /// Multiplicity of each group, indexed by group id (first-appearance
    /// order).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterates over `(decoded key, count)` pairs in group-id
    /// (first-appearance) order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u64)> + '_ {
        (0..self.num_groups()).map(|g| (self.key(g), self.counts[g]))
    }
}

/// Checks a gather index list: every index in range, strictly increasing.
///
/// Shared by the flat and sharded [`crate::GroupKernel::gather_rows`]
/// implementations so both reject malformed draws identically.
pub(crate) fn validate_gather_indices(sorted_rows: &[u64], num_rows: u64) -> Result<()> {
    let mut prev: Option<u64> = None;
    for &i in sorted_rows {
        if i >= num_rows {
            return Err(RelationError::InvalidParameter {
                what: "row index",
                detail: format!("index {i} out of range for {num_rows} rows"),
            });
        }
        if let Some(p) = prev {
            if i <= p {
                return Err(RelationError::InvalidParameter {
                    what: "row indices",
                    detail: format!("must be strictly increasing, got {p} then {i}"),
                });
            }
        }
        prev = Some(i);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

/// A relation instance: an ordered schema, per-column dictionaries with code
/// columns, and a row-major decoded mirror for tuple access.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relation {
    schema: Vec<AttrId>,
    /// Row-major decoded tuples (the compatibility view behind
    /// [`Relation::row`] / [`Relation::iter_rows`]).
    data: Vec<Value>,
    /// The columnar dictionary-encoded store all grouping runs on.
    columns: Vec<Column>,
    rows: usize,
}

impl Relation {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates an empty relation over the given schema (column order is
    /// preserved as given).
    pub fn new(schema: Vec<AttrId>) -> Result<Self> {
        let mut seen = AttrSet::empty();
        for &a in &schema {
            if !seen.insert(a) {
                return Err(RelationError::DuplicateAttribute(a));
            }
        }
        Ok(Relation {
            columns: vec![Column::default(); schema.len()],
            schema,
            data: Vec::new(),
            rows: 0,
        })
    }

    /// Creates an empty relation with pre-allocated capacity for `rows`
    /// tuples.
    pub fn with_capacity(schema: Vec<AttrId>, rows: usize) -> Result<Self> {
        let mut r = Self::new(schema)?;
        r.data.reserve(rows * r.arity());
        for c in &mut r.columns {
            c.codes.reserve(rows);
        }
        Ok(r)
    }

    /// Builds a relation from explicit rows.
    pub fn from_rows<R: AsRef<[Value]>>(schema: Vec<AttrId>, rows: &[R]) -> Result<Self> {
        let mut rel = Self::with_capacity(schema, rows.len())?;
        for row in rows {
            rel.push_row(row.as_ref())?;
        }
        Ok(rel)
    }

    /// Appends a tuple, dictionary-encoding each value into its column.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            let code = col.encode(v)?;
            col.codes.push(code);
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Materialises the rows at the given **sorted, strictly increasing**
    /// row indices as a fresh relation over the same schema.
    ///
    /// The result is rebuilt row by row from decoded values, so its
    /// dictionaries follow first-appearance order *of the sampled rows* —
    /// the property that makes a gathered sample layout-independent (see
    /// [`crate::GroupKernel::gather_rows`]).
    pub fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        validate_gather_indices(sorted_rows, self.rows as u64)?;
        let mut out = Relation::with_capacity(self.schema.clone(), sorted_rows.len())?;
        for &i in sorted_rows {
            out.push_row(self.row(i as usize))?;
        }
        Ok(out)
    }

    /// Streams the `attrs`-projection of every row through a seeded
    /// [`KmvSketch`] with `k` minimum values (see
    /// [`crate::GroupKernel::distinct_sketch`]).
    pub fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        let positions = self.attr_positions(attrs)?;
        let mut sketch = KmvSketch::new(k, seed);
        let mut key = vec![0 as Value; positions.len()];
        for row in self.iter_rows() {
            for (slot, &p) in key.iter_mut().zip(&positions) {
                *slot = row[p];
            }
            sketch.observe(&key);
        }
        Ok(sketch)
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    /// The column order of this relation.
    #[inline]
    pub fn schema(&self) -> &[AttrId] {
        &self.schema
    }

    /// The attribute set of this relation (schema as a set).
    pub fn attrs(&self) -> AttrSet {
        AttrSet::from_slice(&self.schema)
    }

    /// Number of attributes per tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of tuples `N = |R|` (with multiplicity, if this is a multiset).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Returns the `i`-th tuple as a slice of raw values.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter_rows(&self) -> RowIter<'_> {
        RowIter {
            arity: self.arity(),
            data: &self.data,
            pos: 0,
            rows: self.rows,
        }
    }

    /// Position of an attribute in this relation's column order.
    pub fn attr_pos(&self, attr: AttrId) -> Result<usize> {
        self.schema
            .iter()
            .position(|&a| a == attr)
            .ok_or(RelationError::UnknownAttribute(attr))
    }

    /// Positions (column indices) of each attribute of `attrs`, in the order
    /// of `attrs` (ascending attribute id).
    pub fn attr_positions(&self, attrs: &AttrSet) -> Result<Vec<usize>> {
        attrs.iter().map(|a| self.attr_pos(a)).collect()
    }

    /// The active domain of an attribute: the distinct values it takes in
    /// this relation, in first-appearance order (`Π_A(R)` as a value list).
    ///
    /// Served straight from the column dictionary — O(1), no scan.
    pub fn domain(&self, attr: AttrId) -> Result<&[Value]> {
        let pos = self.attr_pos(attr)?;
        Ok(&self.columns[pos].values)
    }

    /// Size of the active domain of an attribute: the number of distinct
    /// values it takes in this relation (`d_A = |Π_A(R)|` in the paper).
    ///
    /// O(1): the length of the column dictionary.
    pub fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        Ok(self.domain(attr)?.len())
    }

    /// The dense dictionary codes of a column, one per row.
    ///
    /// Codes are assigned in first-appearance order; decode through
    /// [`Relation::domain`] (`domain(attr)[code as usize]`).
    pub fn column_codes(&self, attr: AttrId) -> Result<&[u32]> {
        let pos = self.attr_pos(attr)?;
        Ok(&self.columns[pos].codes)
    }

    /// Looks up the dictionary code of a raw value in a column, if the value
    /// occurs in this relation.
    pub fn code_of(&self, attr: AttrId, value: Value) -> Result<Option<u32>> {
        let pos = self.attr_pos(attr)?;
        Ok(self.columns[pos].index.get(&value).copied())
    }

    /// Verifies the **dictionary occupancy invariant**: every code of every
    /// column dictionary occurs in at least one row, and the value → code
    /// index is exactly the inverse of the code → value table.
    ///
    /// Every constructor in this crate (row pushes, projections, joins,
    /// column moves) preserves this invariant; the single-column
    /// [`Relation::group_ids`] fast path *relies* on it (the code column is
    /// taken to be its own grouping, so a zero-occurrence code would
    /// fabricate a phantom group).  Exposed so tests — and any future
    /// constructor that builds columns wholesale — can check themselves
    /// against it; O(rows × arity).
    pub fn dictionaries_fully_occupied(&self) -> bool {
        self.columns.iter().all(|col| {
            if col.index.len() != col.values.len() || col.codes.len() != self.rows {
                return false;
            }
            let mut seen = vec![false; col.values.len()];
            for &c in &col.codes {
                match seen.get_mut(c as usize) {
                    Some(slot) => *slot = true,
                    None => return false, // code outside the dictionary
                }
            }
            seen.into_iter().all(|s| s)
        })
    }

    // ------------------------------------------------------------------
    // Grouping (the columnar kernel)
    // ------------------------------------------------------------------

    /// Groups the tuples by their projection onto `attrs`, returning dense
    /// interned group ids (see [`GroupIds`]).
    ///
    /// This is the grouping kernel every measure in the workspace reduces
    /// to.  It runs entirely on dictionary codes: a single column *is* its
    /// own grouping (the codes are already dense ids); several columns whose
    /// domain-size product is small are counted through a dense mixed-radix
    /// table with no hashing; wider keys are packed into one `u64` per row
    /// and hashed without any per-row allocation.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<GroupIds> {
        let positions = self.attr_positions(attrs)?;
        let k = positions.len();

        // Zero attributes: every row projects to the empty tuple.
        if k == 0 {
            return Ok(GroupIds {
                attrs: attrs.clone(),
                row_ids: vec![0; self.rows],
                counts: if self.rows == 0 {
                    Vec::new()
                } else {
                    vec![self.rows as u64]
                },
                group_codes: Vec::new(),
            });
        }

        // One attribute: the code column is already a dense first-appearance
        // numbering of the distinct values.
        if k == 1 {
            let col = &self.columns[positions[0]];
            let d = col.domain_size();
            let mut counts = vec![0u64; d];
            for &c in &col.codes {
                counts[c as usize] += 1;
            }
            // Every dictionary code must occur in at least one row (the
            // occupancy invariant every constructor preserves); a
            // zero-occurrence code would make this fast path fabricate an
            // empty group that no row maps to.
            debug_assert!(
                counts.iter().all(|&c| c > 0),
                "column dictionary holds zero-occurrence codes; \
                 single-column grouping would emit phantom groups"
            );
            return Ok(GroupIds {
                attrs: attrs.clone(),
                row_ids: col.codes.clone(),
                counts,
                group_codes: (0..d as u32).collect(),
            });
        }

        let cols: Vec<&Column> = positions.iter().map(|&p| &self.columns[p]).collect();
        let span = group_span(&cols, 0, self.rows)?;
        Ok(GroupIds {
            attrs: attrs.clone(),
            row_ids: span.row_ids,
            counts: span.counts,
            group_codes: span.group_codes,
        })
    }

    /// [`Relation::group_ids`] under a [`ThreadBudget`]: the grouping kernel
    /// partitions the row scan across up to `budget` worker threads (never
    /// sharding below [`crate::parallel::MIN_CHUNK_ROWS`] rows per worker)
    /// and merges the per-chunk groupings **in chunk order**, so the result
    /// is bit-identical to the serial kernel at any budget.
    pub fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        let workers = budget.workers_for_rows(self.rows);
        if workers <= 1 {
            return self.group_ids(attrs);
        }
        self.group_ids_chunked(attrs, workers)
    }

    /// The chunked parallel grouping kernel behind
    /// [`Relation::group_ids_with`], with the worker count fixed by the
    /// caller (no minimum-chunk clamp — exposed so the determinism property
    /// is testable on small relations).  One OS thread is spawned per
    /// chunk, so `workers` is clamped to the row count and to
    /// [`crate::parallel::MAX_CHUNK_WORKERS`] — an absurd request cannot
    /// exhaust the process's thread limit.
    ///
    /// Rows are partitioned into `workers` contiguous chunks; each chunk is
    /// grouped independently through the same dense mixed-radix / packed
    /// `u64` paths as the serial kernel, then the per-chunk group tables are
    /// merged **in chunk order**.  A group's first appearance across the
    /// whole relation is in the earliest chunk that contains it, and within
    /// that chunk the local first-appearance order equals the global row
    /// order — so the merged numbering, counts, group codes and remapped
    /// per-row ids are **bit-identical** to [`Relation::group_ids`].
    ///
    /// Zero- and one-attribute groupings delegate to the serial fast paths
    /// (a code column already *is* its grouping; there is nothing to shard).
    pub fn group_ids_chunked(&self, attrs: &AttrSet, workers: usize) -> Result<GroupIds> {
        let positions = self.attr_positions(attrs)?;
        let k = positions.len();
        if k <= 1 || workers <= 1 || self.rows == 0 {
            return self.group_ids(attrs);
        }
        let cols: Vec<&Column> = positions.iter().map(|&p| &self.columns[p]).collect();
        let chunks = chunk_bounds(
            self.rows,
            workers
                .min(self.rows)
                .min(crate::parallel::MAX_CHUNK_WORKERS),
        );

        // Pass 1 (parallel): group every chunk independently.
        let cols_ref = &cols;
        let spans: Result<Vec<SpanGroups>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&(start, end)| scope.spawn(move || group_span(cols_ref, start, end)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("grouping worker panicked"))
                .collect()
        });
        let spans = spans?;

        let bits: Vec<u32> = cols.iter().map(|c| bit_width(c.domain_size())).collect();
        let (row_ids, counts, group_codes) = merge_spans(k, &bits, &spans, self.rows, spans.len())?;
        Ok(GroupIds {
            attrs: attrs.clone(),
            row_ids,
            counts,
            group_codes,
        })
    }

    /// Groups the tuples by their projection onto `attrs`, returning the
    /// multiplicity of every distinct group (`R(Y=y)` cardinalities) with
    /// decoded keys.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<GroupCounts> {
        let ids = self.group_ids(attrs)?;
        Ok(self.decode_group_counts(&ids))
    }

    /// [`Relation::group_counts`] under a [`ThreadBudget`] (see
    /// [`Relation::group_ids_with`]); bit-identical to the serial result at
    /// any budget.
    pub fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        let ids = self.group_ids_with(attrs, budget)?;
        Ok(self.decode_group_counts(&ids))
    }

    /// Decodes a [`GroupIds`] of this relation into a [`GroupCounts`]
    /// (per-group decoded keys plus a point-lookup index).
    pub fn decode_group_counts(&self, ids: &GroupIds) -> GroupCounts {
        let positions = self
            .attr_positions(ids.attrs())
            .expect("grouping was built from this relation's attributes");
        let arity = positions.len();
        let groups = ids.num_groups();
        let mut keys: Vec<Value> = Vec::with_capacity(groups * arity);
        for g in 0..groups {
            for (j, &p) in positions.iter().enumerate() {
                let code = ids.group_codes[g * arity + j];
                keys.push(self.columns[p].values[code as usize]);
            }
        }
        GroupCounts {
            attrs: ids.attrs().clone(),
            total: self.rows as u128,
            arity,
            keys,
            key_codes: ids.group_codes.clone(),
            counts: ids.counts.clone(),
            index: ajd_sync::OnceSlot::new(),
        }
    }

    // ------------------------------------------------------------------
    // Set semantics
    // ------------------------------------------------------------------

    /// `true` if all tuples are pairwise distinct (the relation is a set).
    pub fn is_set(&self) -> bool {
        let ids = self
            .group_ids(&self.attrs())
            .expect("own attributes are always present");
        ids.num_groups() == self.rows
    }

    /// Returns a copy with duplicate tuples removed (first occurrence kept,
    /// insertion order preserved).
    pub fn distinct(&self) -> Relation {
        let ids = self
            .group_ids(&self.attrs())
            .expect("own attributes are always present");
        let mut seen = vec![false; ids.num_groups()];
        let mut out = Relation::with_capacity(self.schema.clone(), ids.num_groups())
            .expect("own schema is duplicate-free");
        for (i, &id) in ids.row_ids().iter().enumerate() {
            if !seen[id as usize] {
                seen[id as usize] = true;
                out.push_row(self.row(i))
                    .expect("rows of the same relation share its arity");
            }
        }
        out
    }

    /// Membership test for a full tuple (given in this relation's column
    /// order).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        if row.len() != self.arity() {
            return false;
        }
        // A tuple whose value is absent from some column dictionary cannot
        // occur; otherwise compare dense codes row-wise.
        let mut codes: Vec<u32> = Vec::with_capacity(row.len());
        for (col, &v) in self.columns.iter().zip(row) {
            match col.index.get(&v) {
                Some(&c) => codes.push(c),
                None => return false,
            }
        }
        (0..self.rows).any(|i| {
            self.columns
                .iter()
                .zip(&codes)
                .all(|(col, &c)| col.codes[i] == c)
        })
    }

    /// `true` if every tuple of `self` also appears in `other`
    /// (schemas must cover the same attribute set; column order may differ).
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        if self.attrs() != other.attrs() {
            return false;
        }
        // Reorder our rows into other's column order and probe a hash set.
        let perm: Vec<usize> = other
            .schema
            .iter()
            .map(|&a| {
                self.attr_pos(a)
                    .expect("attrs() equality guarantees presence")
            })
            .collect();
        let mut set = set_with_capacity(other.rows);
        for row in other.iter_rows() {
            set.insert(row.to_vec().into_boxed_slice());
        }
        let mut buf = vec![0u32; self.arity()];
        for row in self.iter_rows() {
            for (k, &p) in perm.iter().enumerate() {
                buf[k] = row[p];
            }
            if !set.contains(buf.as_slice()) {
                return false;
            }
        }
        true
    }

    /// Set equality: same attribute set and same set of tuples (duplicates
    /// and column order ignored).
    pub fn set_eq(&self, other: &Relation) -> bool {
        let a = self.distinct();
        let b = other.distinct();
        a.len() == b.len() && a.is_subset_of(&b)
    }

    /// Returns a canonical copy: columns reordered to ascending attribute id
    /// and rows sorted lexicographically.  Useful for snapshot-style tests.
    pub fn canonicalize(&self) -> Relation {
        let attrs = self.attrs();
        let perm = self
            .attr_positions(&attrs)
            .expect("own attributes are always present");
        let mut rows: Vec<Vec<Value>> = self
            .iter_rows()
            .map(|r| perm.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        let mut out = Relation::with_capacity(attrs.as_slice().to_vec(), rows.len())
            .expect("attribute sets are duplicate-free");
        for r in rows {
            out.push_row(&r)
                .expect("permuted rows keep the relation's arity");
        }
        out
    }

    // ------------------------------------------------------------------
    // Projection / selection
    // ------------------------------------------------------------------

    /// Projection `Π_Y(R)` with set semantics (duplicates removed).
    ///
    /// Runs on the grouping kernel: the output rows are exactly the distinct
    /// groups, decoded once each.  Errors if `attrs` is not a subset of the
    /// schema — library code never panics on caller input.
    pub fn project(&self, attrs: &AttrSet) -> Result<Relation> {
        self.project_with(attrs, ThreadBudget::serial())
    }

    /// [`Relation::project`] under a [`ThreadBudget`]: the deduplicating
    /// grouping pass runs on the parallel kernel, the (identical) distinct
    /// groups are decoded serially.  Output is bit-identical to
    /// [`Relation::project`] at any budget.
    pub fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let ids = self.group_ids_with(attrs, budget)?;
        let arity = positions.len();
        let mut out = Relation::with_capacity(attrs.as_slice().to_vec(), ids.num_groups())?;
        let mut buf: Vec<Value> = vec![0; arity];
        for g in 0..ids.num_groups() {
            for (j, &p) in positions.iter().enumerate() {
                buf[j] = self.columns[p].values[ids.group_codes[g * arity + j] as usize];
            }
            out.push_row(&buf)?;
        }
        Ok(out)
    }

    /// Projection with multiset (bag) semantics: keeps one output tuple per
    /// input tuple, duplicates included.
    ///
    /// Columnar fast path: every row is kept, so each projected column —
    /// dictionary and code vector — carries over verbatim; only the decoded
    /// row-major mirror is re-gathered.
    pub fn project_multiset(&self, attrs: &AttrSet) -> Result<Relation> {
        let positions = self.attr_positions(attrs)?;
        let arity = positions.len();
        let columns: Vec<Column> = positions.iter().map(|&p| self.columns[p].clone()).collect();
        let mut data: Vec<Value> = Vec::with_capacity(self.rows * arity);
        for row in self.iter_rows() {
            for &p in &positions {
                data.push(row[p]);
            }
        }
        Ok(Relation {
            schema: attrs.as_slice().to_vec(),
            data,
            columns,
            rows: self.rows,
        })
    }

    /// Selection `σ_{attr=value}(R)`.
    pub fn select_eq(&self, attr: AttrId, value: Value) -> Result<Relation> {
        let pos = self.attr_pos(attr)?;
        let mut out = Relation::new(self.schema.clone())?;
        // A value absent from the dictionary selects nothing.
        let Some(&code) = self.columns[pos].index.get(&value) else {
            return Ok(out);
        };
        for (i, &c) in self.columns[pos].codes.iter().enumerate() {
            if c == code {
                out.push_row(self.row(i))?;
            }
        }
        Ok(out)
    }

    /// Reorders the columns of every tuple to the target schema (which must
    /// be a permutation of the current schema).
    pub fn reorder_columns(&self, target: &[AttrId]) -> Result<Relation> {
        if AttrSet::from_slice(target) != self.attrs() || target.len() != self.arity() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "target schema {:?} is not a permutation of {:?}",
                    target, self.schema
                ),
            });
        }
        let perm: Vec<usize> = target
            .iter()
            .map(|&a| self.attr_pos(a).expect("checked above"))
            .collect();
        // Columns move wholesale (dictionaries included); only the decoded
        // mirror is re-gathered.
        let columns: Vec<Column> = perm.iter().map(|&p| self.columns[p].clone()).collect();
        let mut data: Vec<Value> = Vec::with_capacity(self.data.len());
        for row in self.iter_rows() {
            for &p in &perm {
                data.push(row[p]);
            }
        }
        Ok(Relation {
            schema: target.to_vec(),
            data,
            columns,
            rows: self.rows,
        })
    }
}

/// The grouping of one contiguous row span: local first-appearance ids per
/// row, per-group multiplicities and flattened code tuples.  Produced by
/// [`group_span`] for the serial kernel (the full span) and for every chunk
/// of the parallel kernel; the sharded relation builds one per shard (with
/// group codes remapped into its global dictionaries) and feeds them to the
/// same [`merge_spans`] discipline.
#[derive(Debug)]
pub(crate) struct SpanGroups {
    /// Local group id of every row in the span, in row order.
    pub(crate) row_ids: Vec<u32>,
    /// Multiplicity of each local group.
    pub(crate) counts: Vec<u64>,
    /// Flattened code tuples, `cols.len()` codes per local group.
    pub(crate) group_codes: Vec<u32>,
}

/// Merges per-span group tables — whose `group_codes` all live in one common
/// code space — **in span order** into the global first-appearance
/// numbering, then rewrites every span's local row ids through its
/// local → global map into one flat id vector.
///
/// This is the deterministic merge discipline shared by the chunked parallel
/// kernel (spans = row chunks of one relation, codes = that relation's
/// dictionary codes) and by [`crate::ShardedRelation`] (spans = shards,
/// codes = the global shard-order dictionaries): a group's first appearance
/// across the whole input lies in the earliest span that contains it, and
/// within a span the local first-appearance order equals the row order — so
/// the merged numbering, counts, group codes and per-row ids are
/// bit-identical to grouping the concatenated rows serially.
///
/// `bits` gives the bit width of each grouped column's (common-code-space)
/// domain; when the widths pack into 64 bits the merge interns packed keys,
/// otherwise boxed tuples.  `rewrite_workers` caps the scoped threads the
/// per-span row-id rewrite may fan out over; it is clamped to the span
/// count and to [`crate::parallel::MAX_CHUNK_WORKERS`], so a many-shard
/// input can never spawn one thread per shard (pass 1 for a fully inline
/// rewrite).
///
/// Spans are taken by [`Borrow`](std::borrow::Borrow) so the chunked kernel
/// can pass owned `SpanGroups` while the sharded relation re-merges
/// `Arc<SpanGroups>` straight out of its per-shard caches without cloning a
/// single group table.
pub(crate) fn merge_spans<S: std::borrow::Borrow<SpanGroups> + Sync>(
    k: usize,
    bits: &[u32],
    spans: &[S],
    total_rows: usize,
    rewrite_workers: usize,
) -> Result<(Vec<u32>, Vec<u64>, Vec<u32>)> {
    debug_assert_eq!(bits.len(), k);
    let packable = bits.iter().sum::<u32>() <= 64;
    let total_local: usize = spans.iter().map(|s| s.borrow().counts.len()).sum();
    let mut counts: Vec<u64> = Vec::new();
    let mut group_codes: Vec<u32> = Vec::new();
    let mut packed: FxHashMap<u64, u32> = map_with_capacity(if packable { total_local } else { 0 });
    let mut wide: FxHashMap<Box<[u32]>, u32> =
        map_with_capacity(if packable { 0 } else { total_local });
    let mut local_to_global: Vec<Vec<u32>> = Vec::with_capacity(spans.len());
    for span in spans {
        let span = span.borrow();
        let groups = span.counts.len();
        let mut map = Vec::with_capacity(groups);
        for g in 0..groups {
            let codes = &span.group_codes[g * k..(g + 1) * k];
            let id = if packable {
                let mut key = 0u64;
                for (&c, &b) in codes.iter().zip(bits) {
                    key = (key << b) | c as u64;
                }
                match packed.entry(key) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(v) => {
                        let id = new_group_id(&counts)?;
                        v.insert(id);
                        counts.push(0);
                        group_codes.extend_from_slice(codes);
                        id
                    }
                }
            } else {
                match wide.entry(codes.to_vec().into_boxed_slice()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(v) => {
                        let id = new_group_id(&counts)?;
                        v.insert(id);
                        counts.push(0);
                        group_codes.extend_from_slice(codes);
                        id
                    }
                }
            };
            counts[id as usize] += span.counts[g];
            map.push(id);
        }
        local_to_global.push(map);
    }

    // Rewrite each span's local row ids through its local → global map,
    // into disjoint slices of the output.  Spans are partitioned into at
    // most `workers` contiguous runs — never one thread per span, which for
    // a many-shard relation would spawn thousands of OS threads.
    let mut row_ids = vec![0u32; total_rows];
    let workers = rewrite_workers
        .min(spans.len())
        .clamp(1, crate::parallel::MAX_CHUNK_WORKERS);
    fn rewrite_run<S: std::borrow::Borrow<SpanGroups>>(
        out: &mut [u32],
        run: &[S],
        maps: &[Vec<u32>],
    ) {
        let mut rest = out;
        for (span, map) in run.iter().zip(maps) {
            let span = span.borrow();
            let (head, tail) = rest.split_at_mut(span.row_ids.len());
            rest = tail;
            for (slot, &local) in head.iter_mut().zip(&span.row_ids) {
                *slot = map[local as usize];
            }
        }
    }
    if workers <= 1 {
        rewrite_run(&mut row_ids, spans, &local_to_global);
    } else {
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut row_ids;
            for (s0, s1) in chunk_bounds(spans.len(), workers) {
                let run = &spans[s0..s1];
                let maps = &local_to_global[s0..s1];
                let run_rows: usize = run.iter().map(|s| s.borrow().row_ids.len()).sum();
                let (head, tail) = rest.split_at_mut(run_rows);
                rest = tail;
                scope.spawn(move || rewrite_run(head, run, maps));
            }
        });
    }

    Ok((row_ids, counts, group_codes))
}

/// Groups the rows `start..end` by the code tuples of `cols`, assigning
/// dense ids in first-appearance order *within the span*.
///
/// This is the multi-column grouping kernel shared by the serial path
/// (span = all rows) and the chunked parallel path (span = one chunk): a
/// dense mixed-radix table when the domain product is small relative to the
/// span, a hashed packed `u64` per row when the code tuple fits 64 bits,
/// and a hashed boxed tuple as the wide-key fallback.
fn group_span(cols: &[&Column], start: usize, end: usize) -> Result<SpanGroups> {
    let rows = end - start;
    let radix: u128 = cols.iter().map(|c| c.domain_size() as u128).product();
    // ajd: allow(silent-arithmetic, "capacity heuristic choosing dense vs hashed grouping; clamping only steers the strategy choice, results are identical either way")
    let dense_cap = RADIX_TABLE_CAP.min((rows as u128).saturating_mul(8).max(4096));

    let mut row_ids: Vec<u32> = Vec::with_capacity(rows);
    let mut counts: Vec<u64> = Vec::new();
    let mut group_codes: Vec<u32> = Vec::new();

    if radix <= dense_cap {
        // Dense mixed-radix table: one array slot per possible code tuple,
        // ids assigned in first-appearance order.
        let mut table = vec![u32::MAX; radix as usize];
        for i in start..end {
            let mut key = 0usize;
            for c in cols {
                key = key * c.domain_size() + c.codes[i] as usize;
            }
            let mut id = table[key];
            if id == u32::MAX {
                id = new_group_id(&counts)?;
                table[key] = id;
                counts.push(0);
                for c in cols {
                    group_codes.push(c.codes[i]);
                }
            }
            counts[id as usize] += 1;
            row_ids.push(id);
        }
    } else {
        let bits: Vec<u32> = cols.iter().map(|c| bit_width(c.domain_size())).collect();
        if bits.iter().sum::<u32>() <= 64 {
            // Pack the code tuple into one u64 and hash that — no
            // allocation per row.
            let mut intern: FxHashMap<u64, u32> = map_with_capacity(rows.min(1 << 20));
            for i in start..end {
                let mut key = 0u64;
                for (c, &b) in cols.iter().zip(&bits) {
                    key = (key << b) | c.codes[i] as u64;
                }
                let next = new_group_id(&counts)?;
                let id = *intern.entry(key).or_insert(next);
                if id == next {
                    counts.push(0);
                    for c in cols {
                        group_codes.push(c.codes[i]);
                    }
                }
                counts[id as usize] += 1;
                row_ids.push(id);
            }
        } else {
            // Very wide keys (only reachable with dozens of columns):
            // hash the boxed code tuple.
            let k = cols.len();
            let mut intern: FxHashMap<Box<[u32]>, u32> = map_with_capacity(rows.min(1 << 20));
            let mut buf: Vec<u32> = vec![0; k];
            for i in start..end {
                for (j, c) in cols.iter().enumerate() {
                    buf[j] = c.codes[i];
                }
                let next = new_group_id(&counts)?;
                let id = *intern.entry(buf.clone().into_boxed_slice()).or_insert(next);
                if id == next {
                    counts.push(0);
                    group_codes.extend_from_slice(&buf);
                }
                counts[id as usize] += 1;
                row_ids.push(id);
            }
        }
    }

    Ok(SpanGroups {
        row_ids,
        counts,
        group_codes,
    })
}

/// Allocates the next dense group id, failing (instead of wrapping into an
/// aliased id) if the `u32` intern space is exhausted.
fn new_group_id(counts: &[u64]) -> Result<u32> {
    u32::try_from(counts.len()).map_err(|_| {
        RelationError::CountOverflow("number of distinct groups exceeds the u32 intern id space")
    })
}

/// Number of bits needed to represent every code of a domain of size `d`.
///
/// Takes `usize` so a full 2³²-entry dictionary (codes `0..=u32::MAX`)
/// reports 32 bits instead of wrapping to 0 — an aliased packed key would
/// silently merge unrelated groups.
pub(crate) fn bit_width(d: usize) -> u32 {
    // ajd: allow(silent-arithmetic, "d=0 must clamp to 0, not underflow: a zero-size domain needs 0 bits, and the doc above pins the full-u32 edge")
    usize::BITS - d.saturating_sub(1).leading_zeros()
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(")?;
        for (i, a) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")[{} rows]", self.rows)
    }
}

/// Iterator over the tuples of a [`Relation`], yielding row slices.
///
/// Handles the zero-arity corner case (projections onto the empty attribute
/// set yield rows that are empty slices).
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    arity: usize,
    data: &'a [Value],
    pos: usize,
    rows: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.rows {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        if self.arity == 0 {
            Some(&[])
        } else {
            Some(&self.data[i * self.arity..(i + 1) * self.arity])
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.rows - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (AttrId, AttrId, AttrId) {
        (AttrId(0), AttrId(1), AttrId(2))
    }

    fn sample() -> Relation {
        let (a, b, c) = abc();
        Relation::from_rows(
            vec![a, b, c],
            &[
                &[0, 0, 0][..],
                &[0, 1, 0][..],
                &[1, 0, 1][..],
                &[1, 1, 1][..],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let r = sample();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.row(2), &[1, 0, 1]);
        assert_eq!(r.attrs(), AttrSet::range(3));
        assert_eq!(r.attr_pos(AttrId(1)).unwrap(), 1);
        assert!(r.attr_pos(AttrId(9)).is_err());
    }

    #[test]
    fn duplicate_schema_rejected() {
        assert!(Relation::new(vec![AttrId(0), AttrId(0)]).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        assert!(r.push_row(&[1]).is_err());
        assert!(r.push_row(&[1, 2, 3]).is_err());
        assert!(r.push_row(&[1, 2]).is_ok());
    }

    #[test]
    fn dictionary_codes_are_dense_and_decodable() {
        let mut r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        r.push_row(&[700, 9]).unwrap();
        r.push_row(&[u32::MAX, 9]).unwrap();
        r.push_row(&[700, 0]).unwrap();
        assert_eq!(r.domain(AttrId(0)).unwrap(), &[700, u32::MAX]);
        assert_eq!(r.domain(AttrId(1)).unwrap(), &[9, 0]);
        assert_eq!(r.column_codes(AttrId(0)).unwrap(), &[0, 1, 0]);
        assert_eq!(r.code_of(AttrId(0), u32::MAX).unwrap(), Some(1));
        assert_eq!(r.code_of(AttrId(0), 3).unwrap(), None);
        assert!(r.code_of(AttrId(7), 3).is_err());
        // The decoded view round-trips the raw values untouched.
        assert_eq!(r.row(1), &[u32::MAX, 9]);
    }

    #[test]
    fn projection_dedups() {
        let r = sample();
        let pa = r.project(&AttrSet::singleton(AttrId(0))).unwrap();
        assert_eq!(pa.len(), 2);
        let pac = r.project(&AttrSet::from_ids([0, 2])).unwrap();
        assert_eq!(pac.len(), 2); // (0,0) and (1,1) only
        let pall = r.project(&AttrSet::range(3)).unwrap();
        assert_eq!(pall.len(), 4);
    }

    #[test]
    fn projection_multiset_keeps_duplicates() {
        let r = sample();
        let pa = r.project_multiset(&AttrSet::singleton(AttrId(0))).unwrap();
        assert_eq!(pa.len(), 4);
        assert!(!pa.is_set());
        assert_eq!(pa.distinct().len(), 2);
    }

    #[test]
    fn project_unknown_attr_errors() {
        let r = sample();
        assert!(r.project(&AttrSet::singleton(AttrId(7))).is_err());
        assert!(r.project_multiset(&AttrSet::singleton(AttrId(7))).is_err());
    }

    #[test]
    fn selection_filters_rows() {
        let r = sample();
        let s = r.select_eq(AttrId(0), 1).unwrap();
        assert_eq!(s.len(), 2);
        for row in s.iter_rows() {
            assert_eq!(row[0], 1);
        }
        assert_eq!(r.select_eq(AttrId(0), 99).unwrap().len(), 0);
        assert!(r.select_eq(AttrId(5), 0).is_err());
    }

    #[test]
    fn group_counts_match_manual_counts() {
        let r = sample();
        let g = r.group_counts(&AttrSet::singleton(AttrId(1))).unwrap();
        assert_eq!(g.total, 4);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.count_of(&[0]), 2);
        assert_eq!(g.count_of(&[1]), 2);
        assert_eq!(g.count_of(&[9]), 0);
        let g2 = r.group_counts(&AttrSet::range(3)).unwrap();
        assert_eq!(g2.num_groups(), 4);
        assert!(g2.iter().all(|(_, c)| c == 1));
    }

    #[test]
    fn group_counts_expose_decoded_and_code_views() {
        let mut r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        r.push_row(&[500, 7]).unwrap();
        r.push_row(&[500, 7]).unwrap();
        r.push_row(&[600, 7]).unwrap();
        let g = r.group_counts(&AttrSet::from_ids([0, 1])).unwrap();
        assert_eq!(g.arity(), 2);
        assert_eq!(g.num_groups(), 2);
        // First-appearance order: (500,7) then (600,7).
        assert_eq!(g.key(0), &[500, 7]);
        assert_eq!(g.key(1), &[600, 7]);
        assert_eq!(g.key_codes(0), &[0, 0]);
        assert_eq!(g.key_codes(1), &[1, 0]);
        assert_eq!(g.counts(), &[2, 1]);
        assert_eq!(g.count_of(&[500, 7]), 2);
    }

    #[test]
    fn group_ids_expose_codes_and_decode() {
        let r = sample();
        let attrs = AttrSet::from_ids([0, 2]);
        let ids = r.group_ids(&attrs).unwrap();
        assert_eq!(ids.num_groups(), 2);
        assert_eq!(ids.total(), 4);
        assert_eq!(ids.group_codes().len(), 2 * 2);
        assert_eq!(ids.decoded_group(&r, 0).unwrap(), vec![0, 0]);
        assert_eq!(ids.decoded_group(&r, 1).unwrap(), vec![1, 1]);
        // Rows with equal projections share an id; counts are per group.
        assert_eq!(ids.row_ids(), &[0, 0, 1, 1]);
        assert_eq!(ids.counts(), &[2, 2]);
    }

    #[test]
    fn grouping_kernel_paths_agree() {
        // Force the packed-u64 path by making the radix product enormous
        // relative to the row count, and compare against the dense path on
        // an identical relation with a tame domain.
        let mut wide = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let mut tame = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let rows: Vec<[Value; 2]> = (0..200u32).map(|i| [i % 7, (i * i) % 11]).collect();
        for row in &rows {
            // Spread the raw values so the dictionaries stay aligned but the
            // wide relation *looks* like it has the same structure.
            wide.push_row(&[row[0], row[1]]).unwrap();
            tame.push_row(&[row[0], row[1]]).unwrap();
        }
        let attrs = AttrSet::from_ids([0, 1]);
        let a = wide.group_ids(&attrs).unwrap();
        let b = tame.group_ids(&attrs).unwrap();
        assert_eq!(a.row_ids(), b.row_ids());
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.group_codes(), b.group_codes());
    }

    #[test]
    fn set_semantics_helpers() {
        let r = sample();
        assert!(r.is_set());
        assert!(r.contains_row(&[0, 1, 0]));
        assert!(!r.contains_row(&[9, 9, 9]));
        assert!(!r.contains_row(&[0, 1]));
        let mut dup = r.clone();
        dup.push_row(&[0, 0, 0]).unwrap();
        assert!(!dup.is_set());
        assert_eq!(dup.distinct().len(), 4);
        assert!(dup.set_eq(&r));
        assert!(r.is_subset_of(&dup));
    }

    #[test]
    fn subset_requires_same_attrs() {
        let r = sample();
        let p = r.project(&AttrSet::from_ids([0, 1])).unwrap();
        assert!(!p.is_subset_of(&r));
    }

    #[test]
    fn canonicalize_sorts_rows_and_columns() {
        let (a, b, _c) = abc();
        let r1 = Relation::from_rows(vec![b, a], &[&[5, 1][..], &[4, 0][..]]).unwrap();
        let r2 = Relation::from_rows(vec![a, b], &[&[0, 4][..], &[1, 5][..]]).unwrap();
        assert_eq!(r1.canonicalize().row(0), r2.canonicalize().row(0));
        assert_eq!(r1.canonicalize().schema(), r2.canonicalize().schema());
        assert!(r1.set_eq(&r2));
    }

    #[test]
    fn reorder_columns_roundtrip() {
        let r = sample();
        let reordered = r
            .reorder_columns(&[AttrId(2), AttrId(0), AttrId(1)])
            .unwrap();
        assert_eq!(reordered.row(0), &[0, 0, 0]);
        assert_eq!(reordered.row(2), &[1, 1, 0]);
        assert!(reordered.set_eq(&r));
        assert!(r.reorder_columns(&[AttrId(0), AttrId(1)]).is_err());
        // The reordered relation's columnar view stays coherent.
        assert_eq!(
            reordered.domain(AttrId(2)).unwrap(),
            r.domain(AttrId(2)).unwrap()
        );
        assert!(reordered.is_set());
    }

    #[test]
    fn active_domain_size_counts_distinct_values() {
        let r = sample();
        assert_eq!(r.active_domain_size(AttrId(0)).unwrap(), 2);
        assert_eq!(r.active_domain_size(AttrId(2)).unwrap(), 2);
        assert!(r.active_domain_size(AttrId(9)).is_err());
        assert!(r.domain(AttrId(9)).is_err());
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::new(vec![AttrId(0)]).unwrap();
        assert!(r.is_empty());
        assert!(r.is_set());
        assert_eq!(r.project(&AttrSet::singleton(AttrId(0))).unwrap().len(), 0);
        assert_eq!(r.iter_rows().count(), 0);
        assert_eq!(r.domain(AttrId(0)).unwrap().len(), 0);
        let ids = r.group_ids(&AttrSet::empty()).unwrap();
        assert_eq!(ids.num_groups(), 0);
    }

    #[test]
    fn zero_arity_grouping_is_one_group() {
        let r = sample();
        let ids = r.group_ids(&AttrSet::empty()).unwrap();
        assert_eq!(ids.num_groups(), 1);
        assert_eq!(ids.counts(), &[4]);
        let counts = r.group_counts(&AttrSet::empty()).unwrap();
        assert_eq!(counts.count_of(&[]), 4);
    }

    #[test]
    fn synthetic_group_counts_support_insert() {
        let mut g = GroupCounts::new(AttrSet::singleton(AttrId(0)));
        g.insert(&[7], 3).unwrap();
        g.insert(&[9], 1).unwrap();
        assert_eq!(g.total, 4);
        g.insert(&[7], 5).unwrap(); // overwrite: total swaps 3 for 5
        assert_eq!(g.total, 6);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.count_of(&[7]), 5);
        assert_eq!(g.count_of(&[9]), 1);
        assert_eq!(g.count_of(&[8]), 0);
    }

    #[test]
    fn synthetic_group_counts_insert_reports_overflow() {
        let mut g = GroupCounts::new(AttrSet::singleton(AttrId(0)));
        g.insert(&[1], u64::MAX).unwrap();
        assert_eq!(g.total, u64::MAX as u128);
        // Poke the (public) total to the ceiling: the next accumulation
        // must error, never saturate — a clamped N corrupts ρ/J silently.
        g.total = u128::MAX;
        assert!(matches!(
            g.insert(&[2], 1),
            Err(RelationError::CountOverflow(_))
        ));
        // The failed insert must not half-apply: no new group appeared.
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.count_of(&[2]), 0);
    }

    #[test]
    fn display_mentions_schema_and_size() {
        let r = sample();
        let s = format!("{r}");
        assert!(s.contains("X0"));
        assert!(s.contains("4 rows"));
    }

    #[test]
    fn bit_width_boundaries() {
        assert_eq!(bit_width(1), 0);
        assert_eq!(bit_width(2), 1);
        assert_eq!(bit_width(3), 2);
        assert_eq!(bit_width(4), 2);
        assert_eq!(bit_width(5), 3);
        assert_eq!(bit_width(u32::MAX as usize), 32);
        // A full 2^32-entry dictionary must not wrap to width 0.
        assert_eq!(bit_width(1usize << 32), 32);
    }
}
