//! Sharded relation benchmark: shard-local grouping + shard-order merge
//! versus the flat kernel, and a full analysis sweep over sharded input.
//!
//! Three workloads on 100k-row relations:
//!
//! * `shard_group_dense_100k` — 4 small-domain columns (each shard groups
//!   through the dense mixed-radix kernel) at 1 / 4 / 16 / 64 shards;
//! * `shard_group_hash_100k`  — 4 correlated wide-domain columns (each
//!   shard groups through the packed-`u64` hashing kernel);
//! * `shard_analyze_30k`      — a full `Analyzer::analyze` sweep over a
//!   sharded warehouse-style relation, flat vs 8 shards.
//!
//! Before timing anything the sharded results are asserted **bit-identical**
//! to the flat kernel at every shard count and budget — scale never at the
//! cost of the determinism guarantee.  Results are printed and written to
//! `BENCH_sharded.json` (path overridable via `AJD_BENCH_JSON`); each
//! sharded record carries the flat median as its baseline, so the JSON
//! records the shard overhead/speedup directly.
//!
//! Wall-clock ratios on shared CI runners are recorded, never gated: the
//! point of sharding is the memory model (shard-local buffers, bounded
//! merge state), not single-node speed.

use std::path::PathBuf;
use std::time::Duration;

use ajd_bench::{time_median, BenchJson};
use ajd_core::Analyzer;
use ajd_jointree::JoinTree;
use ajd_relation::{AttrId, AttrSet, Relation, ShardedRelation, ThreadBudget};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SHARDS: [usize; 4] = [1, 4, 16, 64];

/// Output path: `$AJD_BENCH_JSON` or `BENCH_sharded.json`.
fn out_path() -> PathBuf {
    std::env::var_os("AJD_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_sharded.json"))
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// 100k rows, four independent columns with domain `d` each.
fn dense_relation(n: usize, d: u32) -> Relation {
    let mut rng = StdRng::seed_from_u64(20230618);
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n).unwrap();
    for _ in 0..n {
        let row = [
            rng.random_range(0..d),
            rng.random_range(0..d),
            rng.random_range(0..d),
            rng.random_range(0..d),
        ];
        r.push_row(&row).unwrap();
    }
    r
}

/// 100k rows whose four columns are all functions of one hidden key:
/// wide domains force the hashing kernel inside every shard while the
/// group count stays at ~`keys`.
fn correlated_relation(n: usize, keys: u32) -> Relation {
    let mut rng = StdRng::seed_from_u64(97);
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n).unwrap();
    for _ in 0..n {
        let k = rng.random_range(0..keys);
        let row = [
            k.wrapping_mul(2_654_435_761),
            k.wrapping_mul(0x9e37_79b9).rotate_left(7),
            k ^ 0x5bd1_e995,
            k.wrapping_add(0x85eb_ca6b).wrapping_mul(3),
        ];
        r.push_row(&row).unwrap();
    }
    r
}

/// A warehouse-style relation (order, product, city, region) for the
/// end-to-end analysis workload.
fn warehouse_relation(n: u32) -> Relation {
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n as usize).unwrap();
    let mut x = 0x9e37_79b9u32;
    for o in 0..n {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        r.push_row(&[o, x % 8, (x >> 8) % 12, ((x >> 8) % 12) % 3])
            .unwrap();
    }
    r
}

/// Panics unless the sharded grouping is bit-identical to the flat kernel
/// on this exact workload, at every benchmarked shard count and at serial
/// and default budgets.
fn assert_deterministic(flat: &Relation, sharded: &[ShardedRelation], attrs: &AttrSet) {
    let serial = flat.group_ids(attrs).unwrap();
    for s in sharded {
        for budget in [ThreadBudget::serial(), ThreadBudget::default()] {
            let got = s.group_ids_with(attrs, budget).unwrap();
            assert_eq!(
                got.row_ids(),
                serial.row_ids(),
                "row_ids differ at {} shards",
                s.num_shards()
            );
            assert_eq!(got.counts(), serial.counts());
            assert_eq!(got.group_codes(), serial.group_codes());
        }
    }
}

fn main() {
    let budget = Duration::from_millis(400);
    let n = 100_000usize;
    let mut json = BenchJson::new();
    println!("sharded grouping vs flat kernel, N = {n} rows");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "flat", "s1", "s4", "s16", "s64"
    );

    // --- grouping workloads -------------------------------------------------
    let workloads: Vec<(&str, Relation)> = vec![
        ("shard_group_dense_100k", dense_relation(n, 12)),
        ("shard_group_hash_100k", correlated_relation(n, 5000)),
    ];
    let attrs = bag(&[0, 1, 2, 3]);
    for (name, flat) in &workloads {
        let sharded: Vec<ShardedRelation> = SHARDS
            .iter()
            .map(|&s| flat.clone().into_shards(s).unwrap())
            .collect();
        assert_deterministic(flat, &sharded, &attrs);

        let kernel_budget = ThreadBudget::default();
        let flat_median = time_median(budget, || {
            flat.group_ids_with(&attrs, kernel_budget).unwrap()
        });
        json.record(&format!("sharded/{name}/flat"), flat_median);
        let mut medians = Vec::with_capacity(SHARDS.len());
        for s in &sharded {
            let m = time_median(budget, || s.group_ids_with(&attrs, kernel_budget).unwrap());
            json.record_vs_baseline(
                &format!("sharded/{name}/s{}", s.num_shards()),
                m,
                flat_median,
            );
            medians.push(m);
        }
        println!(
            "{name:<26} {flat_median:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
            medians[0], medians[1], medians[2], medians[3]
        );
    }

    // --- end-to-end analysis over sharded input -----------------------------
    let wn = 30_000u32;
    let flat = warehouse_relation(wn);
    let sharded = flat.clone().into_shards(8).unwrap();
    let tree = JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap();
    // Reports must agree bit-for-bit before being timed.
    let a = Analyzer::new(&flat).analyze(&tree).unwrap();
    let b = Analyzer::new(&sharded).analyze(&tree).unwrap();
    assert_eq!(a.join_size, b.join_size);
    assert_eq!(a.rho.to_bits(), b.rho.to_bits());
    assert_eq!(a.j_measure.to_bits(), b.j_measure.to_bits());
    assert_eq!(a.kl_nats.to_bits(), b.kl_nats.to_bits());

    let flat_median = time_median(budget, || Analyzer::new(&flat).analyze(&tree).unwrap());
    let sharded_median = time_median(budget, || Analyzer::new(&sharded).analyze(&tree).unwrap());
    json.record(
        &format!("sharded/shard_analyze_{}k/flat", wn / 1000),
        flat_median,
    );
    json.record_vs_baseline(
        &format!("sharded/shard_analyze_{}k/s8", wn / 1000),
        sharded_median,
        flat_median,
    );
    println!(
        "{:<26} {flat_median:>12.2?} {sharded_median:>12.2?} (8 shards, cold analyzer)",
        format!("shard_analyze_{}k", wn / 1000)
    );

    json.emit(&out_path());
    println!("sharded grouping is bit-identical to the flat kernel at every shard count ✓");
}
