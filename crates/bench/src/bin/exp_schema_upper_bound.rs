//! Experiment `prop53_schema` — Proposition 5.3: schema-level probabilistic
//! upper bounds on `log(1+ρ(R,S))`.
//!
//! Workload: the `approximate_mvd_relation` generator produces relations
//! that satisfy `C ↠ A | B` up to a controlled noise fraction.  For each
//! noise level we analyse the two-bag schema `{AC, BC}` and report the
//! measured `log(1+ρ)`, the J-measure, and the two Proposition 5.3 bounds
//! (`ΣI + Σε` and `(m−1)·J + Σε`, with ε from Theorem 5.1 at the measured
//! active-domain sizes).

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::{fraction_where, Summary};
use ajd_bench::table::{f, Table};
use ajd_core::Analyzer;
use ajd_jointree::JoinTree;
use ajd_random::generators::approximate_mvd_relation;
use ajd_relation::{AttrSet, ThreadBudget};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn main() {
    let args = ExperimentArgs::from_env();
    let delta = 0.1f64;
    let noises: Vec<f64> = if args.quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.4]
    };
    let (d_a, d_b, d_c, per_a, per_b) = (32u32, 32u32, 8u32, 16u32, 16u32);
    let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();

    let mut table = Table::new(
        "Proposition 5.3: schema-level bounds on log(1+rho) for approximate MVD data (nats)",
        &[
            "noise",
            "N_mean",
            "log1p_rho",
            "J",
            "sum_cmi",
            "eps_total",
            "cmi_viol",
            "bound_viol",
        ],
    );

    for &noise in &noises {
        let rows = parallel_trials(
            args.trials,
            args.seed ^ ((noise * 1000.0) as u64),
            |_, rng| {
                let r = approximate_mvd_relation(rng, d_a, d_b, d_c, per_a, per_b, noise)
                    .expect("generator parameters are valid");
                // Trials already own the machine's cores; serial kernel per trial.
                let rep = Analyzer::with_thread_budget(&r, ThreadBudget::serial())
                    .analyze(&tree)
                    .expect("analysis");
                let cb = rep.confidence_bounds(delta).expect("delta is in (0,1)");
                (
                    r.len() as f64,
                    rep.log1p_rho,
                    rep.j_measure,
                    cb.schema_bound.sum_cmi_bound,
                    cb.schema_bound.total_epsilon,
                    rep.theorem22.sum_cmi,
                )
            },
        );
        let ns: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let lhs: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let js: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let sum_cmi: Vec<f64> = rows.iter().map(|r| r.5).collect();
        let eps_total: Vec<f64> = rows.iter().map(|r| r.4).collect();
        // How often does log(1+rho) exceed the *bare* sum of CMIs (no eps)?
        let cmi_viol = fraction_where(&rows, |r| r.1 > r.5 + 1e-9);
        // The full Prop 5.3 bound is sum of CMIs plus the eps terms.
        let bound_viol = fraction_where(&rows, |r| r.1 > r.3 + 1e-9);
        table.push_row(vec![
            format!("{noise:.2}"),
            format!("{:.0}", Summary::of(&ns).mean),
            f(Summary::of(&lhs).mean),
            f(Summary::of(&js).mean),
            f(Summary::of(&sum_cmi).mean),
            format!("{:.1}", Summary::of(&eps_total).mean),
            format!("{cmi_viol:.3}"),
            format!("{bound_viol:.3}"),
        ]);
    }

    table.emit(args.csv_dir.as_deref(), "prop53_schema");
    println!(
        "Paper's shape: bound_viol is 0.000 (the eps-inflated Prop 5.3 bound always holds here);\n\
         log(1+rho) and J grow together with the noise level, and for this structured (non-random)\n\
         data the bare sum of CMIs can be exceeded (cmi_viol > 0), which is exactly why the paper\n\
         needs the random relation model for the upper bound."
    );
}
