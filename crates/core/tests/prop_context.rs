//! Property tests of the shared-computation layer: every measure computed
//! through an [`Analyzer`] / `AnalysisContext` (or a [`BatchAnalyzer`]) must
//! be **bit-identical** to its uncached `&Relation` counterpart, across
//! random relations (sets and multisets) and assorted join trees.
//!
//! Since the API redesign both paths run the *same* generic function over a
//! different `GroupSource`; these tests pin down that the memoization layer
//! never changes a value.

use ajd_core::{Analyzer, BatchAnalyzer};
use ajd_info::{
    conditional_mutual_information, entropy, j_measure, j_measure_bounds, kl_divergence_to_tree,
};
use ajd_jointree::mvd::{ordered_support, support};
use ajd_jointree::{count_acyclic_join, JoinTree};
use ajd_relation::{AttrId, AttrSet, Relation, Value};
use proptest::prelude::*;

fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 1..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// The tree shapes of a discovery-style sweep over four attributes.
fn sweep_trees() -> Vec<JoinTree> {
    vec![
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
        JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        JoinTree::new(
            vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
            vec![(0, 1), (1, 2), (2, 3)],
        )
        .unwrap(),
        JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        JoinTree::new(vec![bag(&[0, 1, 2, 3])], vec![]).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Entropies and CMIs served from an analyzer are bit-identical to the
    /// uncached computations, for every attribute subset queried twice.
    #[test]
    fn cached_entropies_and_cmis_are_bit_identical(r in relation_strategy(4, 4, 50)) {
        let analyzer = Analyzer::new(&r);
        let subsets = [
            AttrSet::empty(),
            bag(&[0]),
            bag(&[1, 3]),
            bag(&[0, 1, 2]),
            bag(&[0, 1, 2, 3]),
        ];
        for attrs in &subsets {
            let direct = entropy(&r, attrs).unwrap();
            // Query twice: the second answer comes from the cache.
            let first = analyzer.entropy(attrs).unwrap();
            let second = analyzer.entropy(attrs).unwrap();
            prop_assert_eq!(direct.to_bits(), first.to_bits());
            prop_assert_eq!(direct.to_bits(), second.to_bits());
        }
        for (a, b, c) in [
            (bag(&[0]), bag(&[1]), bag(&[2, 3])),
            (bag(&[0, 1]), bag(&[2]), AttrSet::empty()),
            (bag(&[0]), bag(&[2, 3]), bag(&[1])),
        ] {
            let direct = conditional_mutual_information(&r, &a, &b, &c).unwrap();
            let cached = analyzer.cmi(&a, &b, &c).unwrap();
            prop_assert_eq!(direct.to_bits(), cached.to_bits());
        }
        prop_assert!(analyzer.cache_stats().hits > 0);
    }

    /// J, KL, Theorem 2.2 bounds and acyclic join counts agree between the
    /// analyzer and the uncached free functions on every tree of the sweep.
    #[test]
    fn cached_tree_measures_are_bit_identical(r in relation_strategy(4, 3, 40)) {
        let analyzer = Analyzer::new(&r);
        for tree in sweep_trees() {
            prop_assert_eq!(
                count_acyclic_join(&r, &tree).unwrap(),
                analyzer.join_size(&tree).unwrap()
            );
            prop_assert_eq!(
                j_measure(&r, &tree).unwrap().to_bits(),
                analyzer.j_measure(&tree).unwrap().to_bits()
            );
            prop_assert_eq!(
                kl_divergence_to_tree(&r, &tree).unwrap().to_bits(),
                analyzer.kl(&tree).unwrap().to_bits()
            );
            let direct = j_measure_bounds(&r, &tree, 0).unwrap();
            let cached = analyzer.j_measure_bounds(&tree, 0).unwrap();
            prop_assert_eq!(direct.j.to_bits(), cached.j.to_bits());
            prop_assert_eq!(direct.max_cmi.to_bits(), cached.max_cmi.to_bits());
            prop_assert_eq!(direct.sum_cmi.to_bits(), cached.sum_cmi.to_bits());
        }
    }

    /// MVD join sizes and losses agree between the fresh and the cached
    /// evaluation, for both edge supports and ordered supports.
    #[test]
    fn cached_mvd_measures_are_bit_identical(r in relation_strategy(4, 3, 40)) {
        let analyzer = Analyzer::new(&r);
        for tree in sweep_trees() {
            for mvd in support(&tree) {
                prop_assert_eq!(
                    mvd.join_size(&r).unwrap(),
                    analyzer.mvd_join_size(&mvd).unwrap()
                );
                prop_assert_eq!(
                    mvd.loss(&r).unwrap().to_bits(),
                    analyzer.mvd_loss(&mvd).unwrap().to_bits()
                );
            }
            for mvd in ordered_support(&tree.rooted(0).unwrap()) {
                prop_assert_eq!(
                    mvd.join_size(&r).unwrap(),
                    analyzer.mvd_join_size(&mvd).unwrap()
                );
            }
        }
    }

    /// Full loss reports from a shared `BatchAnalyzer` are bit-identical to
    /// per-tree `Analyzer::analyze` reports — the acceptance property of
    /// the shared-computation engine.  Relations are multisets here
    /// (duplicates allowed), exercising the distinct-count baseline.
    #[test]
    fn batch_reports_are_bit_identical_to_fresh_reports(r in relation_strategy(4, 3, 30)) {
        let trees = sweep_trees();
        let batch = BatchAnalyzer::new(&r);
        let batched = batch.analyze_all(&trees);
        for (tree, batched) in trees.iter().zip(&batched) {
            let batched = batched.as_ref().unwrap();
            let fresh = Analyzer::new(&r).analyze(tree).unwrap();
            prop_assert_eq!(fresh.n, batched.n);
            prop_assert_eq!(fresh.distinct_n, batched.distinct_n);
            prop_assert_eq!(fresh.join_size, batched.join_size);
            prop_assert_eq!(fresh.spurious, batched.spurious);
            prop_assert_eq!(fresh.rho.to_bits(), batched.rho.to_bits());
            prop_assert_eq!(fresh.log1p_rho.to_bits(), batched.log1p_rho.to_bits());
            prop_assert_eq!(fresh.j_measure.to_bits(), batched.j_measure.to_bits());
            prop_assert_eq!(fresh.kl_nats.to_bits(), batched.kl_nats.to_bits());
            prop_assert_eq!(fresh.prop51_bound.to_bits(), batched.prop51_bound.to_bits());
            prop_assert_eq!(fresh.per_mvd.len(), batched.per_mvd.len());
            for (a, b) in fresh.per_mvd.iter().zip(&batched.per_mvd) {
                prop_assert_eq!(a.cmi_nats.to_bits(), b.cmi_nats.to_bits());
                prop_assert_eq!(a.rho.to_bits(), b.rho.to_bits());
                prop_assert_eq!(a.log1p_rho.to_bits(), b.log1p_rho.to_bits());
                prop_assert_eq!(a.domain_sizes, b.domain_sizes);
            }
            // Multisets may have join_size < N but never < distinct(R).
            prop_assert!(batched.join_size >= batched.distinct_n as u128);
            prop_assert!(batched.rho >= 0.0);
        }
    }
}
