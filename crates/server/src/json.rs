//! A minimal JSON value type with a parser and a compact serializer.
//!
//! The workspace's `serde` dependency is an offline derive-only shim (see
//! `shims/serde`), so the wire format of `ajd-server` is implemented
//! directly: [`Json`] is the value tree, [`Json::parse`] is a recursive
//! descent parser over the full JSON grammar, and the [`std::fmt::Display`]
//! impl renders the compact single-line form the protocol requires
//! (no interior newlines, so one value is always one frame).
//!
//! Two deliberate deviations from a general-purpose JSON library, both
//! specified in `docs/PROTOCOL.md`:
//!
//! * **Object key order is preserved** (insertion order), so serialised
//!   frames are deterministic and the spec's examples can be compared
//!   byte-for-byte in tests.  Duplicate keys are rejected at parse time.
//! * **Numbers are `f64`**.  Integral values within `±2^53` are printed
//!   without a fractional part; `u128`-valued protocol fields (join sizes)
//!   are therefore transported as decimal *strings* by the protocol layer,
//!   never as numbers.  Non-finite values serialise as `null` (the parser
//!   never produces them).
//!
//! The parser is hardened for untrusted network input: nesting depth is
//! capped at [`MAX_DEPTH`] so a deeply nested frame cannot overflow the
//! stack.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts before reporting an
/// error — network input must not be able to recurse the parser off the
/// stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects preserve insertion order (see the module docs); numbers are
/// `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// that is integral and exactly representable (`0 ≤ n ≤ 2^53`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one JSON value from `input` (surrounding whitespace allowed,
    /// trailing non-whitespace rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the value"));
        }
        Ok(value)
    }
}

/// Compact (single-line) serialisation; the inverse of [`Json::parse`] for
/// every value the protocol produces.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // The protocol never produces non-finite measures; `null` is the
        // defensive rendering if one ever slips through.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        write!(f, "{}", n as i64)
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected character '{}'", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so byte runs between ASCII delimiters
                // are valid UTF-8 — but a wire parser still reports rather
                // than panics if that reasoning ever breaks.
                let run = self
                    .bytes
                    .get(start..self.pos)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| self.error("malformed UTF-8 inside string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.error("unterminated escape sequence"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uXXXX low half.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(cp).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.error(format!("invalid escape '\\{}'", b as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("number has no digits"));
        }
        // JSON forbids leading zeros like 007.
        if self.pos - digits_start > 1 && self.bytes.get(digits_start) == Some(&b'0') {
            return Err(self.error("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("number has no digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("number has no digits in exponent"));
            }
        }
        // The scanned span is ASCII digits/sign/dot/exponent by
        // construction; report instead of panicking all the same.
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("malformed bytes inside number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.error(format!("unparseable number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.error(format!("number '{text}' overflows an f64")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let v = Json::parse(text).unwrap();
        let rendered = v.to_string();
        let again = Json::parse(&rendered).unwrap();
        assert_eq!(v, again, "serialise/parse must round-trip for {text}");
        v
    }

    #[test]
    fn scalars_parse_and_roundtrip() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("false"), Json::Bool(false));
        assert_eq!(roundtrip("0"), Json::Num(0.0));
        assert_eq!(roundtrip("-12"), Json::Num(-12.0));
        assert_eq!(roundtrip("3.5"), Json::Num(3.5));
        assert_eq!(roundtrip("1e3"), Json::Num(1000.0));
        assert_eq!(roundtrip("2.5e-1"), Json::Num(0.25));
        assert_eq!(roundtrip("\"hi\""), Json::str("hi"));
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn containers_preserve_order() {
        let v = roundtrip(r#"{"b":1,"a":[2,{"z":null}],"c":true}"#);
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[2,{"z":null}],"c":true}"#);
        assert_eq!(roundtrip("[]"), Json::Arr(vec![]));
        assert_eq!(roundtrip("{}"), Json::Obj(vec![]));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","n":4,"b":false,"a":[1],"o":{}}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("o").unwrap().as_obj().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn string_escapes() {
        let v = roundtrip(r#""a\"b\\c\/d\n\t\r\b\f e""#);
        assert_eq!(v.as_str(), Some("a\"b\\c/d\n\t\r\u{8}\u{c} e"));
        let v = roundtrip(r#""\u0041\u00e9\u05d0""#);
        assert_eq!(v.as_str(), Some("Aéא"));
        // Surrogate pair: U+1F600.
        let v = roundtrip(r#""\ud83d\ude00""#);
        assert_eq!(v.as_str(), Some("😀"));
        // Control characters are re-escaped on output.
        assert_eq!(Json::str("\u{01}").to_string(), r#""\u0001""#);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12g4\"",
            "\"\\ud800\"",
            "\"\\udc00x\"",
            "01",
            "1.",
            "1e",
            "--1",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_protects_the_stack() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&deep_bad).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2]}"#);
    }
}
