//! Batch evaluation of many join trees over one relation.
//!
//! Schema discovery, bound sweeps and serving scenarios all ask the same
//! question — "what does this tree cost on `R`?" — for *many* trees over
//! *one* relation.  The trees overlap heavily: candidate contractions share
//! most of their bags, path and star shapes share separators, and every
//! tree needs `H(Ω)` and the full-relation group counts.  [`BatchAnalyzer`]
//! co-owns one [`AnalysisContext`] (usually the one behind a
//! [`crate::Analyzer`] — see [`crate::Analyzer::batch`]) so all of that work
//! is paid for once, and fans the per-tree evaluation out over
//! `std::thread::scope` workers that share the context's striped,
//! single-flight caches (two workers racing on the same cold attribute set
//! never compute it twice — one computes, the other blocks on that entry).
//!
//! Results are exactly those of the corresponding one-shot calls
//! ([`crate::Analyzer::analyze`], `j_measure(&r, …)`, `loss_acyclic(&r, …)`):
//! the context serves bit-identical values, and the output `Vec` is in
//! input order regardless of which worker computed which tree.

use crate::analysis::{report_for, LossReport};
use ajd_jointree::{count_acyclic_join, loss_acyclic, JoinTree};
use ajd_relation::{
    AnalysisContext, AttrId, AttrSet, CacheStats, GroupCounts, GroupIds, GroupKernel, GroupSource,
    Relation, Result, ThreadBudget,
};
use ajd_sync::Mutex;
use std::sync::Arc;

/// Shared-cache, multi-threaded evaluator of join trees over one relation.
///
/// ```
/// use ajd_core::Analyzer;
/// use ajd_jointree::JoinTree;
/// use ajd_random::generators::bijection_relation;
/// use ajd_relation::{AttrId, AttrSet};
///
/// let r = bijection_relation(16);
/// let bags = |ids: &[&[u32]]| -> Vec<AttrSet> {
///     ids.iter().map(|b| AttrSet::from_ids(b.iter().copied())).collect()
/// };
/// let trees = vec![
///     JoinTree::path(bags(&[&[0], &[1]])).unwrap(),
///     JoinTree::path(bags(&[&[0, 1]])).unwrap(),
/// ];
/// let analyzer = Analyzer::new(&r);
/// let reports = analyzer.batch().analyze_all(&trees);
/// assert_eq!(reports[0].as_ref().unwrap().spurious, 16 * 16 - 16);
/// assert_eq!(reports[1].as_ref().unwrap().spurious, 0);
/// ```
#[derive(Debug)]
pub struct BatchAnalyzer<S = Relation> {
    ctx: Arc<AnalysisContext<S>>,
    threads: usize,
}

impl<S: GroupKernel> BatchAnalyzer<S> {
    /// Creates a standalone batch analyzer over `src` — a flat
    /// [`Relation`] or an [`ajd_relation::ShardedRelation`] — with a fresh
    /// cache, using all available parallelism (the workspace's default
    /// [`ThreadBudget`]).  To share a cache with other analysis of the same
    /// relation, go through [`crate::Analyzer::batch`] instead.
    ///
    /// Like [`crate::Analyzer::new`], `src` is a handle: a `&Relation`
    /// borrow or an `Arc<ShardedRelation>` snapshot.
    pub fn new(src: S) -> Self {
        Self::from_shared(Arc::new(AnalysisContext::new(src)))
    }

    /// Wraps a co-owned context (the handle behind [`crate::Analyzer`]),
    /// inheriting the context's thread budget — an analyzer configured
    /// serial (e.g. per-trial inside a parallel experiment loop) produces
    /// serial batches, not full-fan-out ones.
    pub(crate) fn from_shared(ctx: Arc<AnalysisContext<S>>) -> Self {
        let threads = ctx.thread_budget().get();
        BatchAnalyzer { ctx, threads }
    }

    /// Sets the batch's [`ThreadBudget`] (1 forces fully sequential
    /// evaluation).
    ///
    /// This is the **one coherent knob**: `threads` caps the *total* the
    /// batch may use.  During a sweep the tree-level fan-out takes
    /// `w ≤ threads` workers and each worker computes cache misses under
    /// the per-worker kernel share `threads / w` (passed call-locally —
    /// the shared context is never mutated), so the two layers never
    /// multiply into `threads²` OS threads and a temporary batch never
    /// retunes the [`crate::Analyzer`] it borrowed its cache from.
    /// Results are bit-identical at any setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = ThreadBudget::new(threads).get();
        self
    }

    /// The tree-level fan-out budget this batch runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The grouping source being analysed.
    pub fn source(&self) -> &S {
        self.ctx.source()
    }

    /// The shared context; useful for mixing one-off generic measure calls
    /// into a batch, or for inspecting [`AnalysisContext::stats`].
    pub fn context(&self) -> &AnalysisContext<S> {
        &self.ctx
    }

    /// Snapshot of the shared cache's effectiveness.
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.stats()
    }

    /// Full [`LossReport`] of one tree through the shared cache, computing
    /// any misses under this batch's thread budget (a single tree has no
    /// fan-out to share with, so the kernel gets the whole budget).
    pub fn analyze(&self, tree: &JoinTree) -> Result<LossReport> {
        let src = BudgetedContext {
            ctx: &self.ctx,
            budget: ThreadBudget::new(self.threads),
        };
        report_for(&src, tree)
    }

    /// Full [`LossReport`]s of many trees, evaluated in parallel over the
    /// shared cache; results are in input order.
    pub fn analyze_all(&self, trees: &[JoinTree]) -> Vec<Result<LossReport>> {
        self.parallel_map(trees, |src, tree| report_for(src, tree))
    }

    /// J-measures (eq. 7) of many trees, in parallel, in input order.
    pub fn j_measures(&self, trees: &[JoinTree]) -> Vec<Result<f64>> {
        self.parallel_map(trees, |src, tree| ajd_info::jmeasure::j_measure(src, tree))
    }

    /// Exact losses `ρ(R,S)` (eq. 1) of many trees, in parallel, in input
    /// order.
    pub fn losses(&self, trees: &[JoinTree]) -> Vec<Result<f64>> {
        self.parallel_map(trees, |src, tree| loss_acyclic(src, tree))
    }

    /// Exact acyclic join sizes of many trees, in parallel, in input order.
    pub fn join_sizes(&self, trees: &[JoinTree]) -> Vec<Result<u128>> {
        self.parallel_map(trees, |src, tree| count_acyclic_join(src, tree))
    }

    /// Work-stealing fan-out over `std::thread::scope`: workers pull tree
    /// indices from a shared counter, so a few expensive trees do not stall
    /// the rest of the batch behind a static partition.
    ///
    /// Each worker evaluates through a [`BudgetedContext`] carrying the
    /// per-worker kernel share `self.threads / workers`, so the fan-out and
    /// the grouping kernel split one budget instead of multiplying — the
    /// share travels with the call, and the shared context's standing
    /// budget is never touched (concurrent sweeps cannot interfere).
    fn parallel_map<T, F>(&self, trees: &[JoinTree], f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: for<'s> Fn(&'s BudgetedContext<'s, S>, &JoinTree) -> Result<T> + Sync,
    {
        let workers = self.threads.min(trees.len().max(1));
        let src = BudgetedContext {
            ctx: &self.ctx,
            budget: ThreadBudget::new((self.threads / workers).max(1)),
        };
        if workers <= 1 || trees.len() <= 1 {
            return trees.iter().map(|tree| f(&src, tree)).collect();
        }
        let results: Mutex<Vec<(usize, Result<T>)>> = Mutex::new(Vec::with_capacity(trees.len()));
        let next: Mutex<usize> = Mutex::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = {
                        let mut guard = next.lock();
                        if *guard >= trees.len() {
                            break;
                        }
                        let i = *guard;
                        *guard += 1;
                        i
                    };
                    let out = f(&src, &trees[i]);
                    results.lock().push((i, out));
                });
            }
        });
        let mut collected = results.into_inner();
        collected.sort_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, t)| t).collect()
    }
}

impl<'a> BatchAnalyzer<&'a Relation> {
    /// The flat relation being analysed (for batches over an
    /// [`ajd_relation::ShardedRelation`], use [`BatchAnalyzer::source`]).
    pub fn relation(&self) -> &'a Relation {
        self.ctx.relation()
    }
}

/// A [`GroupSource`] view of a shared [`AnalysisContext`] that computes
/// cache misses under an explicit per-sweep kernel [`ThreadBudget`] —
/// call-local state, so handing a budget share to one sweep's workers
/// cannot disturb the context's standing budget or any concurrent sweep.
/// Hits and memoized values are exactly the context's.
struct BudgetedContext<'b, S = Relation> {
    ctx: &'b AnalysisContext<S>,
    budget: ThreadBudget,
}

impl<S: GroupKernel> GroupSource for BudgetedContext<'_, S> {
    fn schema(&self) -> &[AttrId] {
        self.ctx.source().schema()
    }

    fn num_rows(&self) -> usize {
        self.ctx.source().num_rows()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        self.ctx.source().active_domain_size(attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        self.ctx.group_counts_budgeted(attrs, self.budget)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        self.ctx.group_ids_budgeted(attrs, self.budget)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        self.ctx.projection_budgeted(attrs, self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use ajd_info::j_measure;
    use ajd_jointree::loss_acyclic;
    use ajd_random::RandomRelationModel;
    use ajd_relation::AttrSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn sweep_trees() -> Vec<JoinTree> {
        vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
            JoinTree::new(
                vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
                vec![(0, 1), (1, 2), (2, 3)],
            )
            .unwrap(),
            JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
            JoinTree::new(vec![bag(&[0, 1, 2, 3])], vec![]).unwrap(),
        ]
    }

    fn sample_relation(seed: u64) -> ajd_relation::Relation {
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![5, 4, 4, 3]).unwrap());
        model.sample(&mut StdRng::seed_from_u64(seed), 60).unwrap()
    }

    #[test]
    fn batch_reports_match_single_tree_analysis() {
        let r = sample_relation(3);
        let trees = sweep_trees();
        let batch = BatchAnalyzer::new(&r);
        let reports = batch.analyze_all(&trees);
        assert_eq!(reports.len(), trees.len());
        for (tree, report) in trees.iter().zip(&reports) {
            let batched = report.as_ref().unwrap();
            let fresh = Analyzer::new(&r).analyze(tree).unwrap();
            assert_eq!(batched.join_size, fresh.join_size);
            assert_eq!(batched.rho.to_bits(), fresh.rho.to_bits());
            assert_eq!(batched.j_measure.to_bits(), fresh.j_measure.to_bits());
            assert_eq!(batched.kl_nats.to_bits(), fresh.kl_nats.to_bits());
        }
        let stats = batch.cache_stats();
        assert!(stats.hits > 0, "the sweep must share grouping work");
    }

    #[test]
    fn analyzer_batch_shares_the_analyzer_cache() {
        let r = sample_relation(5);
        let trees = sweep_trees();
        let analyzer = Analyzer::new(&r);
        let batch = analyzer.batch();
        let _ = batch.analyze_all(&trees);
        // The batch populated the analyzer's own cache: a follow-up scalar
        // query is answered without recomputation.
        let before = analyzer.cache_stats();
        let _ = analyzer.j_measure(&trees[0]).unwrap();
        let after = analyzer.cache_stats();
        assert!(after.hits > before.hits);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn j_measures_and_losses_match_uncached_calls() {
        let r = sample_relation(7);
        let trees = sweep_trees();
        let batch = BatchAnalyzer::new(&r);
        for (tree, j) in trees.iter().zip(batch.j_measures(&trees)) {
            assert_eq!(j.unwrap().to_bits(), j_measure(&r, tree).unwrap().to_bits());
        }
        for (tree, rho) in trees.iter().zip(batch.losses(&trees)) {
            assert_eq!(
                rho.unwrap().to_bits(),
                loss_acyclic(&r, tree).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let r = sample_relation(9);
        let trees = sweep_trees();
        let seq = BatchAnalyzer::new(&r).with_threads(1);
        let par = BatchAnalyzer::new(&r).with_threads(4);
        for (a, b) in seq.join_sizes(&trees).iter().zip(par.join_sizes(&trees)) {
            assert_eq!(*a.as_ref().unwrap(), b.unwrap());
        }
    }

    /// Regression: `losses()` and `analyze_all()` must agree on the loss of
    /// the same tree even for multiset relations — both measure against the
    /// distinct-tuple baseline (a negative `losses()` next to a positive
    /// `analyze()` rho was possible when the quick path divided by `N`).
    #[test]
    fn losses_agree_with_full_reports_on_multisets() {
        let r = ajd_relation::Relation::from_rows(
            vec![ajd_relation::AttrId(0), ajd_relation::AttrId(1)],
            &[
                &[0, 0][..],
                &[0, 0][..],
                &[0, 0][..],
                &[1, 0][..],
                &[1, 1][..],
            ],
        )
        .unwrap();
        assert!(!r.is_set());
        let trees = vec![
            JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap(),
            JoinTree::new(vec![bag(&[0, 1])], vec![]).unwrap(),
        ];
        let batch = BatchAnalyzer::new(&r);
        let quick = batch.losses(&trees);
        let full = batch.analyze_all(&trees);
        for (rho, report) in quick.iter().zip(&full) {
            let rho = rho.as_ref().unwrap();
            assert!(*rho >= 0.0, "loss must never be negative, got {rho}");
            assert_eq!(rho.to_bits(), report.as_ref().unwrap().rho.to_bits());
        }
    }

    /// Regression: `with_threads` used to write the shared context's kernel
    /// budget permanently, so a throwaway `analyzer.batch().with_threads(1)`
    /// silently serialised every later miss of the analyzer it borrowed its
    /// cache from.  The per-sweep kernel share now travels call-locally
    /// (`BudgetedContext`); the shared context is never written at all.
    #[test]
    fn temporary_batch_does_not_retune_the_shared_context() {
        let r = sample_relation(11);
        let analyzer = Analyzer::new(&r);
        let before = analyzer.context().thread_budget();
        let batch = analyzer.batch().with_threads(1);
        // Configuring the batch leaves the context untouched…
        assert_eq!(analyzer.context().thread_budget(), before);
        // …and so does running a sweep through it (the share is call-local).
        let _ = batch.j_measures(&sweep_trees());
        assert_eq!(analyzer.context().thread_budget(), before);
        drop(batch);
        assert_eq!(analyzer.context().thread_budget(), before);
    }

    /// A serial analyzer hands out serial batches: `from_shared` inherits
    /// the context's budget instead of resetting to the machine default,
    /// so per-trial analyzers inside an already-parallel loop never fan
    /// out behind the caller's back.
    #[test]
    fn batch_inherits_the_analyzers_thread_budget() {
        let r = sample_relation(13);
        let serial = Analyzer::with_thread_budget(&r, ajd_relation::ThreadBudget::serial());
        assert_eq!(serial.batch().threads(), 1);
        let wide = Analyzer::with_thread_budget(&r, ajd_relation::ThreadBudget::new(3));
        assert_eq!(wide.batch().threads(), 3);
        // An explicit with_threads still overrides the inherited value.
        assert_eq!(serial.batch().with_threads(2).threads(), 2);
    }

    #[test]
    fn per_tree_errors_do_not_poison_the_batch() {
        let r = sample_relation(1);
        let good = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        // Mentions attribute 9, which the relation does not have.
        let bad = JoinTree::path(vec![bag(&[0, 9]), bag(&[9, 2])]).unwrap();
        let batch = BatchAnalyzer::new(&r);
        let out = batch.analyze_all(&[good, bad]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn empty_tree_list_is_fine() {
        let r = sample_relation(2);
        assert!(BatchAnalyzer::new(&r).analyze_all(&[]).is_empty());
    }
}
