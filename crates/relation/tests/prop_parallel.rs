//! Determinism property tests of the chunked parallel grouping kernel.
//!
//! The contract of `Relation::group_ids_chunked` / `group_ids_with` is
//! **bit-identity** with the serial kernel: for any relation, any attribute
//! subset, and any worker count, the parallel grouping must produce exactly
//! the same per-row ids, per-group counts, group code tuples and decoded
//! keys — first-appearance numbering included.  Both kernel flavours are
//! exercised: dense small domains drive the mixed-radix path, scattered
//! values drive the packed-`u64` hashing path.

use ajd_relation::relation::GroupIds;
use ajd_relation::{AttrId, AttrSet, Relation, ThreadBudget, Value};
use proptest::prelude::*;

/// Multiplies values by a large odd constant so raw values are scattered
/// over the whole `u32` range (domains get large, forcing the hashing path).
fn scatter(v: u32) -> u32 {
    v.wrapping_mul(2_654_435_761).wrapping_add(0xdead_beef)
}

/// A relation over `arity` attributes with (possibly duplicated) rows.
fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
    scattered: bool,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            let rows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|v| if scattered { scatter(v) } else { v })
                        .collect()
                })
                .collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

/// Asserts every observable field of two groupings is identical.
fn assert_bit_identical(serial: &GroupIds, parallel: &GroupIds, what: &str) -> Result<(), String> {
    if parallel.row_ids() != serial.row_ids() {
        return Err(format!("{what}: row_ids differ"));
    }
    if parallel.counts() != serial.counts() {
        return Err(format!("{what}: counts differ"));
    }
    if parallel.group_codes() != serial.group_codes() {
        return Err(format!("{what}: group_codes differ"));
    }
    if parallel.attrs() != serial.attrs() {
        return Err(format!("{what}: attrs differ"));
    }
    Ok(())
}

/// Serial vs chunked at worker counts {1, 2, 4, 8}, plus decoded-key
/// equality through `decode_group_counts`.
fn check_parallel_matches_serial(r: &Relation, attrs: &AttrSet) -> Result<(), String> {
    let serial = r.group_ids(attrs).map_err(|e| e.to_string())?;
    for workers in [1usize, 2, 4, 8] {
        let par = r
            .group_ids_chunked(attrs, workers)
            .map_err(|e| e.to_string())?;
        assert_bit_identical(&serial, &par, &format!("workers={workers} attrs={attrs}"))?;
        // Decoded keys (the GroupCounts view) are identical too.
        let sc = r.decode_group_counts(&serial);
        let pc = r.decode_group_counts(&par);
        for g in 0..sc.num_groups() {
            if sc.key(g) != pc.key(g) || sc.key_codes(g) != pc.key_codes(g) {
                return Err(format!(
                    "decoded key of group {g} differs (workers={workers})"
                ));
            }
        }
        if sc.counts() != pc.counts() || sc.total != pc.total {
            return Err(format!("decoded counts differ (workers={workers})"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense small domains: every chunk groups through the mixed-radix
    /// table; the merge must reproduce global first-appearance order.
    #[test]
    fn chunked_matches_serial_dense(r in relation_strategy(4, 4, 80, false)) {
        for attrs in [
            AttrSet::from_ids([0u32, 1]),
            AttrSet::from_ids([1u32, 3]),
            AttrSet::from_ids([0u32, 1, 2]),
            AttrSet::from_ids([0u32, 1, 2, 3]),
        ] {
            check_parallel_matches_serial(&r, &attrs)?;
        }
    }

    /// Scattered values: domains are near the row count, so the domain
    /// product overflows the dense cap and chunks group through the packed
    /// `u64` hashing path.
    #[test]
    fn chunked_matches_serial_packed(r in relation_strategy(3, 40, 80, true)) {
        for attrs in [
            AttrSet::from_ids([0u32, 1]),
            AttrSet::from_ids([0u32, 2]),
            AttrSet::from_ids([0u32, 1, 2]),
        ] {
            check_parallel_matches_serial(&r, &attrs)?;
        }
    }

    /// Worker counts beyond the row count (empty chunks) and degenerate
    /// single-row relations are handled.
    #[test]
    fn more_workers_than_rows(r in relation_strategy(2, 3, 6, false)) {
        let attrs = AttrSet::from_ids([0u32, 1]);
        let serial = r.group_ids(&attrs).unwrap();
        for workers in [3usize, 16] {
            let par = r.group_ids_chunked(&attrs, workers).unwrap();
            assert_bit_identical(&serial, &par, "tiny relation")?;
        }
    }
}

/// End-to-end through the budgeted entry points on a relation large enough
/// to clear the minimum-chunk gate: `group_ids_with`, `group_counts_with`
/// and `project_with` agree bit-for-bit with their serial counterparts at
/// every budget.
#[test]
fn budgeted_paths_match_serial_on_large_relation() {
    // 20k rows, mixed dense/correlated columns; deterministic xorshift.
    let mut r = Relation::new(vec![AttrId(0), AttrId(1), AttrId(2)]).unwrap();
    let mut x = 7u32;
    for _ in 0..20_000 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        r.push_row(&[x % 19, scatter(x % 700), (x >> 7) % 13])
            .unwrap();
    }
    for attrs in [
        AttrSet::from_ids([0u32, 2]),
        AttrSet::from_ids([0u32, 1]),
        AttrSet::from_ids([0u32, 1, 2]),
    ] {
        let serial_ids = r.group_ids(&attrs).unwrap();
        let serial_counts = r.group_counts(&attrs).unwrap();
        let serial_proj = r.project(&attrs).unwrap();
        for budget in [
            ThreadBudget::serial(),
            ThreadBudget::new(2),
            ThreadBudget::new(8),
        ] {
            let ids = r.group_ids_with(&attrs, budget).unwrap();
            assert_eq!(ids.row_ids(), serial_ids.row_ids());
            assert_eq!(ids.counts(), serial_ids.counts());
            assert_eq!(ids.group_codes(), serial_ids.group_codes());

            let counts = r.group_counts_with(&attrs, budget).unwrap();
            assert_eq!(counts.counts(), serial_counts.counts());
            assert_eq!(counts.num_groups(), serial_counts.num_groups());
            for g in 0..counts.num_groups() {
                assert_eq!(counts.key(g), serial_counts.key(g));
            }

            let proj = r.project_with(&attrs, budget).unwrap();
            assert_eq!(proj.len(), serial_proj.len());
            for (a, b) in proj.iter_rows().zip(serial_proj.iter_rows()) {
                assert_eq!(a, b);
            }
        }
    }
}

/// An absurd worker request is clamped (to the row count and the
/// `MAX_CHUNK_WORKERS` ceiling) instead of attempting one thread per row —
/// and still produces the bit-identical grouping.
#[test]
fn huge_worker_counts_are_clamped_not_spawned() {
    let mut r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
    let mut x = 3u32;
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        r.push_row(&[x % 31, x % 17]).unwrap();
    }
    let attrs = AttrSet::from_ids([0u32, 1]);
    let serial = r.group_ids(&attrs).unwrap();
    let par = r.group_ids_chunked(&attrs, usize::MAX).unwrap();
    assert_eq!(par.row_ids(), serial.row_ids());
    assert_eq!(par.counts(), serial.counts());
    assert_eq!(par.group_codes(), serial.group_codes());
}

/// The single-column and empty-set fast paths are shared verbatim with the
/// serial kernel (nothing to shard), at any worker count.
#[test]
fn trivial_arity_paths_delegate_to_serial() {
    let r = Relation::from_rows(
        vec![AttrId(0), AttrId(1)],
        &[&[5, 1][..], &[5, 2][..], &[6, 1][..]],
    )
    .unwrap();
    for attrs in [AttrSet::empty(), AttrSet::from_ids([0u32])] {
        let serial = r.group_ids(&attrs).unwrap();
        let par = r.group_ids_chunked(&attrs, 8).unwrap();
        assert_eq!(par.row_ids(), serial.row_ids());
        assert_eq!(par.counts(), serial.counts());
        assert_eq!(par.group_codes(), serial.group_codes());
    }
}
