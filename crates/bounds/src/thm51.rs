//! Theorem 5.1: the high-probability upper bound on the loss of a single
//! MVD in terms of its conditional mutual information.
//!
//! For an MVD `φ = C ↠ A | B` with domain sizes `d_A ≥ d_B`, `d_C`, and a
//! relation of `N` tuples drawn from the random relation model, Theorem 5.1
//! states that with probability at least `1 − δ`:
//!
//! ```text
//! log(1 + ρ(R_S, φ)) ≤ I(A_S; B_S | C_S) + ε*(φ, N, δ)
//! ε*(φ, N, δ) = 60 · √( d_A · d · log³(6·N·d_C/δ) / N ),    d = max{d_A, d_C}
//! ```
//!
//! provided the qualifying condition (37) holds:
//! `N ≥ 256·d_A·d·log(384·d/δ)`.

use serde::{Deserialize, Serialize};

/// Parameters of a single-MVD instance of the random relation model, as used
/// by Theorem 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thm51Params {
    /// Domain size of the `A` side.
    pub d_a: u64,
    /// Domain size of the `B` side.
    pub d_b: u64,
    /// Domain size of the conditioning set `C` (1 for the degenerate model).
    pub d_c: u64,
    /// Number of tuples `N` of the sampled relation.
    pub n: u64,
    /// Confidence parameter `δ ∈ (0,1)`.
    pub delta: f64,
}

impl Thm51Params {
    /// Creates the parameter set, normalising so that `d_A ≥ d_B` (the
    /// theorem assumes this w.l.o.g.; swapping `A` and `B` changes nothing).
    pub fn new(d_a: u64, d_b: u64, d_c: u64, n: u64, delta: f64) -> Self {
        assert!(
            d_a >= 1 && d_b >= 1 && d_c >= 1,
            "domain sizes must be positive"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let (d_a, d_b) = if d_a >= d_b { (d_a, d_b) } else { (d_b, d_a) };
        Thm51Params {
            d_a,
            d_b,
            d_c,
            n,
            delta,
        }
    }

    /// `d = max{d_A, d_C}` as used in the theorem.
    pub fn d(&self) -> u64 {
        self.d_a.max(self.d_c)
    }
}

/// The qualifying condition (37): `N ≥ 256·d_A·d·log(384·d/δ)`.
pub fn thm51_qualifying_condition(p: &Thm51Params) -> bool {
    let d = p.d() as f64;
    (p.n as f64) >= 256.0 * p.d_a as f64 * d * (384.0 * d / p.delta).ln()
}

/// The smallest `N` satisfying the qualifying condition (37), rounded up.
pub fn thm51_minimum_n(d_a: u64, d_b: u64, d_c: u64, delta: f64) -> u64 {
    let p = Thm51Params::new(d_a, d_b, d_c, 1, delta);
    let d = p.d() as f64;
    (256.0 * p.d_a as f64 * d * (384.0 * d / delta).ln()).ceil() as u64
}

/// The deviation term `ε*(φ, N, δ)` of eq. (38), in nats.
pub fn epsilon_star(p: &Thm51Params) -> f64 {
    let d = p.d() as f64;
    let n = p.n as f64;
    assert!(n > 0.0, "N must be positive");
    let log_term = (6.0 * n * p.d_c as f64 / p.delta).ln();
    60.0 * (p.d_a as f64 * d * log_term.powi(3) / n).sqrt()
}

/// The Theorem 5.1 upper bound on `log(1 + ρ(R,φ))` given the measured
/// conditional mutual information `I(A;B|C)` (in nats):
/// `cmi + ε*(φ, N, δ)`.
pub fn thm51_upper_bound(cmi_nats: f64, p: &Thm51Params) -> f64 {
    assert!(cmi_nats >= -1e-9, "conditional MI is non-negative");
    cmi_nats.max(0.0) + epsilon_star(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_normalise_da_ge_db() {
        let p = Thm51Params::new(10, 50, 3, 1000, 0.05);
        assert_eq!(p.d_a, 50);
        assert_eq!(p.d_b, 10);
        assert_eq!(p.d(), 50);
        let q = Thm51Params::new(10, 5, 40, 1000, 0.05);
        assert_eq!(q.d(), 40);
    }

    #[test]
    #[should_panic]
    fn invalid_delta_rejected() {
        Thm51Params::new(10, 10, 1, 100, 1.5);
    }

    #[test]
    fn qualifying_condition_matches_minimum_n() {
        for (da, db, dc) in [(16u64, 16u64, 1u64), (64, 32, 4), (8, 8, 8)] {
            let n_min = thm51_minimum_n(da, db, dc, 0.1);
            let below = Thm51Params::new(da, db, dc, n_min.saturating_sub(2), 0.1);
            let at = Thm51Params::new(da, db, dc, n_min + 1, 0.1);
            assert!(!thm51_qualifying_condition(&below));
            assert!(thm51_qualifying_condition(&at));
        }
    }

    #[test]
    fn epsilon_star_vanishes_with_n() {
        // For fixed domains, eps* ~ sqrt(log^3 N / N) -> 0. The constants of
        // the theorem are large, so we check the rate rather than absolute
        // smallness: multiplying N by 100 shrinks eps* by roughly 10x
        // (modulo log growth).
        let mk = |n| Thm51Params::new(100, 100, 4, n, 0.05);
        let e1 = epsilon_star(&mk(1_000_000));
        let e2 = epsilon_star(&mk(100_000_000));
        assert!(e2 < e1 / 5.0);
        let e3 = epsilon_star(&mk(10_000_000_000));
        assert!(e3 < e2 / 5.0);
    }

    #[test]
    fn epsilon_star_grows_with_domains_and_confidence() {
        let base = Thm51Params::new(50, 50, 2, 1_000_000, 0.05);
        let bigger_domain = Thm51Params::new(200, 200, 2, 1_000_000, 0.05);
        let tighter_delta = Thm51Params::new(50, 50, 2, 1_000_000, 1e-6);
        assert!(epsilon_star(&bigger_domain) > epsilon_star(&base));
        assert!(epsilon_star(&tighter_delta) > epsilon_star(&base));
    }

    #[test]
    fn epsilon_star_example_from_paper_scaling() {
        // Paper remark: with d_A = d_B = d_C = d and N = d^3/2 the deviation
        // is O(sqrt(log^3 d / d)), vanishing with d.
        let eps_at = |d: u64| {
            let n = d.pow(3) / 2;
            epsilon_star(&Thm51Params::new(d, d, d, n, 0.05))
        };
        let e_small = eps_at(100);
        let e_large = eps_at(10_000);
        assert!(e_large < e_small);
    }

    #[test]
    fn upper_bound_adds_cmi_and_epsilon() {
        let p = Thm51Params::new(32, 32, 2, 1_000_000, 0.1);
        let eps = epsilon_star(&p);
        assert!((thm51_upper_bound(0.0, &p) - eps).abs() < 1e-12);
        assert!((thm51_upper_bound(0.7, &p) - (0.7 + eps)).abs() < 1e-12);
        // Tiny negative CMI (floating point noise) is clamped.
        assert!((thm51_upper_bound(-1e-12, &p) - eps).abs() < 1e-9);
    }
}
