//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal, deterministic PRNG with the same API shape as `rand` 0.9:
//!
//! * [`Rng`] — core trait producing raw `u64`s.
//! * [`RngExt`] — extension trait with `random_range` over integer and float
//!   ranges (blanket-implemented for every [`Rng`]).
//! * [`SeedableRng`] — `seed_from_u64` construction.
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64.
//!
//! Every experiment seeds its RNG explicitly, so determinism across runs and
//! platforms is a feature here, not a bug. Statistical quality of
//! xoshiro256++ is more than sufficient for the paper's randomised workloads
//! (its output passes BigCrush); it is *not* cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods for [`Rng`] mirroring `rand`'s sampling surface.
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports half-open (`a..b`) and inclusive (`a..=b`) ranges over the
    /// integer types used in the workspace, and half-open `f64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the construction recommended by the
    /// xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a raw `u64` to a `f64` uniform in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`RngExt::random_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample from `self` using `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64 arithmetic; raw draws
    // at or above it are rejected so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Width of the sampling window as a u64; 0 encodes the full
                // 2^64-wide inclusive window (only reachable for 64-bit types).
                let span = if inclusive {
                    (high as u64).wrapping_sub(low as u64).wrapping_add(1)
                } else {
                    (high as u64).wrapping_sub(low as u64)
                };
                if span == 0 {
                    return (low as u64).wrapping_add(rng.next_u64()) as $t;
                }
                (low as u64).wrapping_add(uniform_below(rng, span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        let u = unit_f64(rng.next_u64());
        // Standard uniform transform; may round to `high` for extreme ranges,
        // which matches rand's documented caveat for floats.
        low + (high - low) * u
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed on every platform. Not
    /// cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into full state.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 60_000;
        let k = 6u64;
        let mut hits = [0u32; 6];
        for _ in 0..trials {
            hits[rng.random_range(0..k) as usize] += 1;
        }
        let expected = trials as f64 / k as f64;
        for &h in &hits {
            assert!((f64::from(h) - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.random_range(5..5);
    }
}
