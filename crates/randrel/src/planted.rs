//! Planted acyclic-schema relations.
//!
//! The `approximate_mvd_relation` generator covers the single-MVD case; the
//! experiments on multi-bag schemas (Proposition 5.1 / 5.3, discovery) also
//! need relations that *approximately* satisfy an arbitrary acyclic join
//! dependency.  [`PlantedTreeRelation`] builds them in three steps:
//!
//! 1. draw a small *seed* relation uniformly from the product domain;
//! 2. close it under the target join tree by taking the acyclic join of its
//!    bag projections — the closure models the tree exactly (zero J-measure,
//!    zero loss);
//! 3. perturb a `noise` fraction of the closure's tuples by replacing them
//!    with fresh uniform tuples (keeping all tuples distinct), which
//!    re-introduces a controlled amount of loss.
//!
//! The generator reports the closure size so experiments can relate the
//! injected noise to the measured `ρ` and `J`.

use crate::product::ProductDomain;
use crate::sampling::sample_distinct;
use ajd_jointree::{acyclic_join, JoinTree};
use ajd_relation::hash::FxHashSet;
use ajd_relation::{Relation, RelationError, Result, Value};
use rand::{Rng, RngExt};

/// Configuration and builder for planted approximate-AJD relations.
#[derive(Debug, Clone)]
pub struct PlantedTreeRelation {
    /// The acyclic schema the relation should (approximately) satisfy.
    pub tree: JoinTree,
    /// Per-attribute domain sizes, indexed by attribute id.
    pub dims: Vec<u64>,
    /// Number of seed tuples drawn before closing under the tree.
    pub seed_tuples: u64,
    /// Fraction of the closure's tuples replaced by uniform random tuples.
    pub noise: f64,
}

/// The result of planting: the relation plus bookkeeping about how it was
/// built.
#[derive(Debug, Clone)]
pub struct PlantedRelation {
    /// The generated relation (always a set).
    pub relation: Relation,
    /// Size of the lossless closure before noise was applied.
    pub closure_size: usize,
    /// Number of tuples that were replaced by noise.
    pub perturbed: usize,
}

impl PlantedTreeRelation {
    /// Creates a builder.  The tree's attributes must be exactly
    /// `{X₀,…,X_{dims.len()-1}}`.
    pub fn new(tree: JoinTree, dims: Vec<u64>, seed_tuples: u64, noise: f64) -> Result<Self> {
        let domain = ProductDomain::new(dims.clone())?; // validates dims
        if !(0.0..=1.0).contains(&noise) {
            return Err(RelationError::SchemaMismatch {
                detail: format!("noise fraction {noise} outside [0,1]"),
            });
        }
        let expected_attrs = ajd_relation::AttrSet::range(dims.len());
        if tree.attributes() != expected_attrs {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "tree attributes {} do not match the {} declared domains",
                    tree.attributes(),
                    dims.len()
                ),
            });
        }
        if seed_tuples == 0 || seed_tuples > domain.size() {
            return Err(RelationError::DomainExhausted {
                requested: seed_tuples,
                available: domain.size(),
            });
        }
        Ok(PlantedTreeRelation {
            tree,
            dims,
            seed_tuples,
            noise,
        })
    }

    /// Generates a planted relation.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<PlantedRelation> {
        let domain = ProductDomain::new(self.dims.clone())?;

        // 1. seed relation.
        let seed_indices = sample_distinct(rng, domain.size(), self.seed_tuples)?;
        let schema: Vec<ajd_relation::AttrId> = (0..domain.arity())
            .map(ajd_relation::AttrId::from)
            .collect();
        let mut seed = Relation::with_capacity(schema, seed_indices.len())?;
        let mut buf = vec![0 as Value; domain.arity()];
        for idx in seed_indices {
            domain.decode_into(idx, &mut buf);
            seed.push_row(&buf)?;
        }

        // 2. lossless closure under the tree.
        let closure = acyclic_join(&seed, &self.tree)?;
        let closure = closure.reorder_columns(seed.schema())?;
        let closure_size = closure.len();

        // 3. noise: replace a fraction of tuples with fresh uniform tuples.
        let mut present: FxHashSet<u64> = ajd_relation::hash::set_with_capacity(closure_size);
        let mut tuples: Vec<Vec<Value>> = Vec::with_capacity(closure_size);
        for row in closure.iter_rows() {
            present.insert(domain.encode(row)?);
            tuples.push(row.to_vec());
        }
        let perturbed = ((closure_size as f64) * self.noise).round() as usize;
        let perturbed = perturbed.min(tuples.len());
        for _ in 0..perturbed {
            let victim = rng.random_range(0..tuples.len());
            let removed = tuples.swap_remove(victim);
            present.remove(&domain.encode(&removed)?);
            loop {
                let idx = rng.random_range(0..domain.size());
                if !present.contains(&idx) {
                    present.insert(idx);
                    tuples.push(domain.decode(idx)?);
                    break;
                }
            }
        }

        let mut relation = Relation::with_capacity(seed.schema().to_vec(), tuples.len())?;
        for t in &tuples {
            relation.push_row(t)?;
        }
        Ok(PlantedRelation {
            relation,
            closure_size,
            perturbed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_jointree::loss_acyclic;
    use ajd_relation::AttrSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn path_tree() -> JoinTree {
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let tree = path_tree();
        assert!(PlantedTreeRelation::new(tree.clone(), vec![4, 4, 4, 4], 10, 0.1).is_ok());
        // noise out of range
        assert!(PlantedTreeRelation::new(tree.clone(), vec![4, 4, 4, 4], 10, 1.5).is_err());
        // wrong number of dims for the tree
        assert!(PlantedTreeRelation::new(tree.clone(), vec![4, 4, 4], 10, 0.1).is_err());
        // too many seed tuples
        assert!(PlantedTreeRelation::new(tree, vec![2, 2, 2, 2], 100, 0.1).is_err());
    }

    #[test]
    fn zero_noise_produces_lossless_relation() {
        let tree = path_tree();
        let planted = PlantedTreeRelation::new(tree.clone(), vec![5, 5, 5, 5], 30, 0.0).unwrap();
        let out = planted.generate(&mut StdRng::seed_from_u64(3)).unwrap();
        assert!(out.relation.is_set());
        assert_eq!(out.perturbed, 0);
        assert_eq!(out.relation.len(), out.closure_size);
        let rho = loss_acyclic(&out.relation, &tree).unwrap();
        assert!(rho.abs() < 1e-12);
    }

    #[test]
    fn noise_introduces_loss_monotonically_on_average() {
        let tree = path_tree();
        let dims = vec![6u64, 6, 6, 6];
        let mut avg_loss = Vec::new();
        for &noise in &[0.0f64, 0.1, 0.4] {
            let planted = PlantedTreeRelation::new(tree.clone(), dims.clone(), 40, noise).unwrap();
            let mut total = 0.0;
            for seed in 0..4u64 {
                let out = planted
                    .generate(&mut StdRng::seed_from_u64(100 + seed))
                    .unwrap();
                total += loss_acyclic(&out.relation, &tree).unwrap();
            }
            avg_loss.push(total / 4.0);
        }
        assert!(avg_loss[0] < 1e-12);
        assert!(avg_loss[1] > 0.0);
        assert!(avg_loss[2] > avg_loss[1]);
    }

    #[test]
    fn generated_relation_is_distinct_and_in_domain() {
        let tree = JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2])]).unwrap();
        let planted = PlantedTreeRelation::new(tree, vec![4, 7, 3], 15, 0.3).unwrap();
        let out = planted.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        assert!(out.relation.is_set());
        for row in out.relation.iter_rows() {
            assert!(row[0] < 4 && row[1] < 7 && row[2] < 3);
        }
        assert!(out.perturbed > 0);
    }
}
