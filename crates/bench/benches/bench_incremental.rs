//! Incremental maintenance benchmark: appending one shard to a relation
//! with warm per-shard group tables versus regrouping the world.
//!
//! For each base shard count `k` in {4, 16, 64} a 100k-row relation is
//! sharded, its per-shard tables are warmed for one attribute set, and a
//! fresh batch of `100k / k` rows arrives as shard `k + 1`.  Three
//! medians per `k`:
//!
//! * `full_regroup`     — `group_ids_uncached_with` over all `k + 1`
//!   shards: what every append would cost without the per-shard tier.
//! * `append_one_shard` — clone the warm relation (copy-on-append: the
//!   `k` cached shards are shared by `Arc`), append the batch, group:
//!   `k` cache hits + exactly one new-shard compute + the shard-order
//!   re-merge.  This is the post-append path a `LiveAnalyzer` pays.
//! * `warm_remerge`     — group again with all `k + 1` tables warm: the
//!   steady-state floor (pure `merge_spans`, no grouping at all).
//!
//! Before timing, the incremental results are asserted **bit-identical**
//! to a cold regroup and to the flat grown relation — the cache tier must
//! never change an answer, only its cost.  Results are printed and
//! written to `BENCH_incremental.json` (path overridable via
//! `AJD_BENCH_JSON`); each incremental record carries the full-regroup
//! median as its baseline, so the JSON tracks the speedup directly.
//! Ratios on shared CI runners are recorded, never gated.

use std::path::PathBuf;
use std::time::Duration;

use ajd_bench::{time_median, BenchJson};
use ajd_relation::{AttrId, AttrSet, Relation, ShardedRelation, ThreadBudget};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const BASE_SHARDS: [usize; 3] = [4, 16, 64];

/// Output path: `$AJD_BENCH_JSON` or `BENCH_incremental.json`.
fn out_path() -> PathBuf {
    std::env::var_os("AJD_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_incremental.json"))
}

/// `n` rows over four columns with domain 12 each (the dense kernel).
fn rows(rng: &mut StdRng, n: usize) -> Vec<[u32; 4]> {
    (0..n)
        .map(|_| {
            [
                rng.random_range(0..12),
                rng.random_range(0..12),
                rng.random_range(0..12),
                rng.random_range(0..12),
            ]
        })
        .collect()
}

fn relation_of(rows: &[[u32; 4]]) -> Relation {
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, rows.len()).unwrap();
    for row in rows {
        r.push_row(row).unwrap();
    }
    r
}

/// Panics unless grouping the grown sharded relation — warm caches or
/// cold from scratch — is bit-identical to the flat grown relation.
fn assert_bit_identical(grown: &ShardedRelation, flat: &Relation, attrs: &AttrSet) {
    let reference = flat.group_ids(attrs).unwrap();
    for budget in [ThreadBudget::serial(), ThreadBudget::default()] {
        let warm = grown.group_ids_with(attrs, budget).unwrap();
        let cold = grown.group_ids_uncached_with(attrs, budget).unwrap();
        for (label, got) in [("warm", &warm), ("cold", &cold)] {
            assert_eq!(
                got.row_ids(),
                reference.row_ids(),
                "{label} row_ids differ at {} shards",
                grown.num_shards()
            );
            assert_eq!(got.counts(), reference.counts());
            assert_eq!(got.group_codes(), reference.group_codes());
        }
    }
}

fn main() {
    let budget = Duration::from_millis(400);
    let n = 100_000usize;
    let attrs = AttrSet::from_ids(0..4u32);
    let kernel_budget = ThreadBudget::default();
    let mut rng = StdRng::seed_from_u64(20230923);
    let mut json = BenchJson::new();

    println!("incremental append vs full regroup, N = {n} base rows");
    println!(
        "{:<10} {:>14} {:>18} {:>14}",
        "shards", "full_regroup", "append_one_shard", "warm_remerge"
    );

    for &k in &BASE_SHARDS {
        let base_rows = rows(&mut rng, n);
        let batch_rows = rows(&mut rng, n / k);
        let batch = relation_of(&batch_rows);

        // Warm relation: k shards, per-shard tables computed once.
        let warm = relation_of(&base_rows).into_shards(k).unwrap();
        warm.group_ids_with(&attrs, kernel_budget).unwrap();

        // The grown relation (k + 1 shards) and its flat reference.
        let mut grown = warm.clone();
        grown.append_shard(batch.clone()).unwrap();
        let mut flat_rows = base_rows.clone();
        flat_rows.extend_from_slice(&batch_rows);
        assert_bit_identical(&grown, &relation_of(&flat_rows), &attrs);

        let full = time_median(budget, || {
            grown
                .group_ids_uncached_with(&attrs, kernel_budget)
                .unwrap()
        });
        json.record(&format!("incremental/k{k}/full_regroup"), full);

        let append = time_median(budget, || {
            let mut r = warm.clone();
            r.append_shard(batch.clone()).unwrap();
            r.group_ids_with(&attrs, kernel_budget).unwrap()
        });
        json.record_vs_baseline(&format!("incremental/k{k}/append_one_shard"), append, full);

        // Steady state: every table warm, pure shard-order re-merge.
        grown.group_ids_with(&attrs, kernel_budget).unwrap();
        let remerge = time_median(budget, || {
            grown.group_ids_with(&attrs, kernel_budget).unwrap()
        });
        json.record_vs_baseline(&format!("incremental/k{k}/warm_remerge"), remerge, full);

        println!("{k:<10} {full:>14.2?} {append:>18.2?} {remerge:>14.2?}");
    }

    json.emit(&out_path());
    println!("incremental grouping is bit-identical to a cold regroup at every shard count ✓");
}
