//! The deterministic lower bound on the loss (Lemma 4.1).
//!
//! For any relation `R` and acyclic schema `S` with join tree `T`:
//!
//! ```text
//! J(T) ≤ log(1 + ρ(R,S))        equivalently        ρ(R,S) ≥ e^{J(T)} − 1
//! ```
//!
//! (with natural logarithms, as used throughout this workspace).  The bound
//! is tight for the bijection family of Example 4.1.

/// The smallest possible loss `ρ(R,S)` compatible with a J-measure of
/// `j_nats` (Lemma 4.1): `ρ ≥ e^J − 1`.
pub fn j_lower_bound_on_loss(j_nats: f64) -> f64 {
    assert!(
        j_nats >= -1e-9,
        "the J-measure is non-negative (got {j_nats})"
    );
    (j_nats.max(0.0)).exp_m1()
}

/// The largest possible J-measure compatible with a loss of `rho`
/// (the contrapositive reading of Lemma 4.1): `J ≤ log(1+ρ)`.
pub fn max_j_for_loss(rho: f64) -> f64 {
    assert!(rho >= 0.0, "the loss is non-negative (got {rho})");
    rho.ln_1p()
}

/// `log(1 + ρ)` — the quantity the paper's bounds are stated about.  Thin
/// wrapper kept for readability at call sites.
pub fn loss_to_log1p(rho: f64) -> f64 {
    assert!(rho >= 0.0, "the loss is non-negative (got {rho})");
    rho.ln_1p()
}

/// Checks Lemma 4.1 for measured values: `J ≤ log(1+ρ) + tol`.
pub fn lemma41_holds(j_nats: f64, rho: f64) -> bool {
    j_nats <= rho.ln_1p() + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_j_gives_zero_lower_bound() {
        assert_eq!(j_lower_bound_on_loss(0.0), 0.0);
        // Tiny negative values from floating point are clamped.
        assert_eq!(j_lower_bound_on_loss(-1e-12), 0.0);
    }

    #[test]
    fn bound_is_exponential_in_j() {
        let j = (10.0f64).ln();
        assert!((j_lower_bound_on_loss(j) - 9.0).abs() < 1e-9);
        let j2 = (100.0f64).ln();
        assert!((j_lower_bound_on_loss(j2) - 99.0).abs() < 1e-7);
    }

    #[test]
    fn lower_bound_and_max_j_are_inverses() {
        for rho in [0.0, 0.1, 1.0, 17.5, 1e4] {
            let j = max_j_for_loss(rho);
            assert!((j_lower_bound_on_loss(j) - rho).abs() < 1e-7 * (1.0 + rho));
        }
        for j in [0.0, 0.3, 2.0, 9.0] {
            let rho = j_lower_bound_on_loss(j);
            assert!((max_j_for_loss(rho) - j).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma41_check_accepts_tight_example() {
        // Example 4.1: J = ln N, rho = N - 1.
        for n in [2u32, 5, 100, 4096] {
            let j = (n as f64).ln();
            let rho = n as f64 - 1.0;
            assert!(lemma41_holds(j, rho));
            // And the bound is tight: increasing J slightly breaks it.
            assert!(!lemma41_holds(j + 1e-6, rho));
        }
    }

    #[test]
    fn loss_to_log1p_matches_ln_1p() {
        assert_eq!(loss_to_log1p(0.0), 0.0);
        assert!((loss_to_log1p(std::f64::consts::E - 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_loss_is_rejected() {
        max_j_for_loss(-0.5);
    }

    #[test]
    #[should_panic]
    fn clearly_negative_j_is_rejected() {
        j_lower_bound_on_loss(-0.5);
    }
}
