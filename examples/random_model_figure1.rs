//! A miniature of the paper's Figure 1, runnable in a second or two.
//!
//! Run with `cargo run --release --example random_model_figure1`.
//!
//! Setup (Definition 5.2 with a degenerate conditioning attribute): relations
//! with `N = d²/(1+ρ)` tuples drawn uniformly without replacement from
//! `[d] × [d]`.  As `d` grows, the mutual information `I(A_S;B_S)` of the
//! sampled relation concentrates on `log(1+ρ)` — the phenomenon behind the
//! paper's high-probability upper bound (Theorem 5.1).  The full-scale sweep
//! lives in `ajd-bench` (`exp_fig1`); this example keeps the sizes small.

use ajd::info::nats_to_bits;
use ajd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let rho = 0.1f64;
    let reference = rho.ln_1p();
    let trials = 5;
    println!("target rho = {rho}, reference log(1+rho) = {reference:.6} nats");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "d", "N", "mean I(A;B)", "min", "max"
    );

    for d in [50u64, 100, 200, 400] {
        let n = (d as f64 * d as f64 / (1.0 + rho)).round() as u64;
        let model = RandomRelationModel::degenerate(d, d).expect("valid domain");
        let mut values = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 * d + t as u64);
            let r = model.sample(&mut rng, n).expect("N <= d^2");
            let mi = ajd::info::mutual_information(
                &r,
                &AttrSet::singleton(AttrId(0)),
                &AttrSet::singleton(AttrId(1)),
            )
            .expect("attributes exist");
            values.push(mi);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!("{d:>6} {n:>10} {mean:>12.6} {min:>12.6} {max:>12.6}");
    }

    println!(
        "\nAs d grows the sampled mutual information approaches log(1+rho) = {:.6} nats \
         ({:.6} bits), reproducing the shape of Figure 1.",
        reference,
        nats_to_bits(reference)
    );
}
