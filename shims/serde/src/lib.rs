//! Offline stand-in for the `serde` derive macros.
//!
//! The workspace annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` and field attributes such as
//! `#[serde(skip)]`, but nothing in-tree performs actual serialisation yet
//! (there is no `serde_json`/`bincode` consumer). Since the build environment
//! has no access to crates.io, this crate accepts the same derive surface and
//! expands to nothing, keeping the annotations in place for the day a real
//! serialisation backend is wired in.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
///
/// Registers the `#[serde(...)]` helper attribute so field annotations like
/// `#[serde(skip)]` parse, and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
