//! Product domains and mixed-radix tuple codecs.
//!
//! The random relation model draws tuples from the product domain
//! `[d₁] × ⋯ × [d_n]`.  We index the domain by a single integer in
//! `[0, Πᵢ dᵢ)` using mixed-radix (row-major) encoding, so that drawing a
//! tuple uniformly at random reduces to drawing an integer uniformly at
//! random, and sampling *without replacement* reduces to sampling distinct
//! integers.

use ajd_relation::{RelationError, Result, Value};
use serde::{Deserialize, Serialize};

/// A product domain `[d₁] × ⋯ × [d_n]` with `dᵢ ≥ 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductDomain {
    dims: Vec<u64>,
}

impl ProductDomain {
    /// Creates a product domain from per-attribute domain sizes.
    ///
    /// Every dimension must be at least 1 and the total size must fit in a
    /// `u64` (≈ 1.8·10¹⁹ tuples), which is far beyond anything that can be
    /// sampled in practice.
    pub fn new(dims: Vec<u64>) -> Result<Self> {
        if dims.is_empty() {
            return Err(RelationError::EmptyInput(
                "product domain with no attributes",
            ));
        }
        let mut size: u64 = 1;
        for &d in &dims {
            if d == 0 {
                return Err(RelationError::EmptyInput("zero-sized attribute domain"));
            }
            size = size.checked_mul(d).ok_or(RelationError::DomainExhausted {
                requested: u64::MAX,
                available: u64::MAX,
            })?;
            if d > Value::MAX as u64 + 1 {
                return Err(RelationError::DomainExhausted {
                    requested: d,
                    available: Value::MAX as u64 + 1,
                });
            }
        }
        let _ = size;
        Ok(ProductDomain { dims })
    }

    /// Convenience constructor for the three-attribute MVD setting
    /// `Ω = {A, B, C}` with domain sizes `d_A, d_B, d_C` (attribute ids
    /// 0, 1, 2 respectively).
    pub fn for_mvd(d_a: u64, d_b: u64, d_c: u64) -> Result<Self> {
        ProductDomain::new(vec![d_a, d_b, d_c])
    }

    /// Number of attributes `n`.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Per-attribute domain sizes.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Total number of tuples `Πᵢ dᵢ`.
    pub fn size(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Encodes a tuple (given as per-attribute values) into its mixed-radix
    /// index.
    pub fn encode(&self, tuple: &[Value]) -> Result<u64> {
        if tuple.len() != self.dims.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.dims.len(),
                got: tuple.len(),
            });
        }
        let mut idx: u64 = 0;
        for (i, (&v, &d)) in tuple.iter().zip(&self.dims).enumerate() {
            if v as u64 >= d {
                return Err(RelationError::DomainExhausted {
                    requested: v as u64,
                    available: d,
                });
            }
            let _ = i;
            idx = idx * d + v as u64;
        }
        Ok(idx)
    }

    /// Decodes a mixed-radix index into a tuple.
    pub fn decode(&self, mut index: u64) -> Result<Vec<Value>> {
        if index >= self.size() {
            return Err(RelationError::DomainExhausted {
                requested: index,
                available: self.size(),
            });
        }
        let mut out = vec![0 as Value; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            let d = self.dims[i];
            out[i] = (index % d) as Value;
            index /= d;
        }
        Ok(out)
    }

    /// Decodes a mixed-radix index into a caller-provided buffer (avoiding
    /// per-tuple allocation in hot sampling loops).
    pub fn decode_into(&self, mut index: u64, out: &mut [Value]) {
        debug_assert_eq!(out.len(), self.dims.len());
        for i in (0..self.dims.len()).rev() {
            let d = self.dims[i];
            out[i] = (index % d) as Value;
            index /= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dims() {
        assert!(ProductDomain::new(vec![]).is_err());
        assert!(ProductDomain::new(vec![3, 0, 2]).is_err());
        assert!(ProductDomain::new(vec![u64::MAX, 3]).is_err());
        let d = ProductDomain::new(vec![3, 4, 5]).unwrap();
        assert_eq!(d.arity(), 3);
        assert_eq!(d.size(), 60);
        assert_eq!(d.dims(), &[3, 4, 5]);
    }

    #[test]
    fn mvd_constructor_orders_a_b_c() {
        let d = ProductDomain::for_mvd(10, 20, 3).unwrap();
        assert_eq!(d.dims(), &[10, 20, 3]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = ProductDomain::new(vec![3, 4, 5]).unwrap();
        for idx in 0..d.size() {
            let t = d.decode(idx).unwrap();
            assert_eq!(d.encode(&t).unwrap(), idx);
            for (v, &dim) in t.iter().zip(d.dims()) {
                assert!((*v as u64) < dim);
            }
        }
    }

    #[test]
    fn decode_is_injective() {
        let d = ProductDomain::new(vec![2, 3, 2]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for idx in 0..d.size() {
            assert!(seen.insert(d.decode(idx).unwrap()));
        }
        assert_eq!(seen.len() as u64, d.size());
    }

    #[test]
    fn encode_rejects_out_of_range_values() {
        let d = ProductDomain::new(vec![2, 2]).unwrap();
        assert!(d.encode(&[2, 0]).is_err());
        assert!(d.encode(&[0]).is_err());
        assert!(d.decode(4).is_err());
    }

    #[test]
    fn decode_into_matches_decode() {
        let d = ProductDomain::new(vec![7, 11]).unwrap();
        let mut buf = vec![0u32; 2];
        for idx in [0, 1, 13, 76] {
            d.decode_into(idx, &mut buf);
            assert_eq!(buf, d.decode(idx).unwrap());
        }
    }

    #[test]
    fn single_attribute_domain() {
        let d = ProductDomain::new(vec![5]).unwrap();
        assert_eq!(d.size(), 5);
        assert_eq!(d.decode(3).unwrap(), vec![3]);
    }
}
