//! Query a running `ajd-server` (see the `serve_catalog` example).
//!
//! ```text
//! cargo run --release --example query_client -- ADDR [REQUEST ...]
//!
//!   ADDR      e.g. 127.0.0.1:4321
//!   REQUEST   one JSON request per argument; with none given, request
//!             lines are read from stdin (one per line)
//! ```
//!
//! Examples:
//!
//! ```text
//! query_client 127.0.0.1:4321 '{"op":"catalog"}'
//! query_client 127.0.0.1:4321 \
//!   '{"op":"loss","relation":"orders","schema":[["id","item"],["item","price"]]}'
//! echo '{"op":"stats"}' | query_client 127.0.0.1:4321
//! ```

use ajd::server::Client;
use std::io::BufRead;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: query_client ADDR ['{{\"op\":...}}' ...]");
        std::process::exit(2);
    };
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let requests: Vec<String> = args.collect();
    let mut run = |line: &str| {
        if line.trim().is_empty() {
            return;
        }
        match client.request_line(line) {
            Ok(response) => println!("{response}"),
            Err(e) => {
                eprintln!("transport error: {e}");
                std::process::exit(1);
            }
        }
    };
    if requests.is_empty() {
        for line in std::io::stdin().lock().lines() {
            run(&line.expect("stdin"));
        }
    } else {
        for request in &requests {
            run(request);
        }
    }
}
