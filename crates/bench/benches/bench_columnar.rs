//! Columnar grouping benchmark: the dictionary-encoded grouping kernel
//! against the seed's row-hashing `group_counts`, on a 100k-row synthetic
//! relation.
//!
//! The baseline reimplements exactly what the seed did per grouped row:
//! gather the projected values into a buffer, box it, and hash it into a
//! `FxHashMap<Box<[Value]>, u64>` — one heap allocation and one wide hash
//! per row.  The columnar kernel instead reads the per-column dictionary
//! codes and either counts into a dense mixed-radix table (no hashing) or
//! hashes one packed `u64` per row.
//!
//! Results are printed and, crucially for the perf trajectory, written to
//! `BENCH_columnar.json` (path overridable via `AJD_BENCH_JSON`) — the
//! bench-smoke workflow uploads that file on every run.

use std::time::Duration;

use ajd_bench::{time_median, BenchJson};
use ajd_random::generators::random_relation;
use ajd_relation::hash::{map_with_capacity, FxHashMap};
use ajd_relation::{AttrSet, Relation, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seed's row-hashing group counting, verbatim semantics: box every
/// projected row and hash it.
fn group_counts_rowhash(r: &Relation, attrs: &AttrSet) -> FxHashMap<Box<[Value]>, u64> {
    let positions = r.attr_positions(attrs).expect("attrs are in the schema");
    let mut counts: FxHashMap<Box<[Value]>, u64> = map_with_capacity(r.len().min(1 << 20));
    let mut buf: Vec<Value> = vec![0; positions.len()];
    for row in r.iter_rows() {
        for (k, &p) in positions.iter().enumerate() {
            buf[k] = row[p];
        }
        *counts.entry(buf.clone().into_boxed_slice()).or_insert(0) += 1;
    }
    counts
}

/// Panics unless the columnar counts equal the row-hashing baseline's — the
/// correctness contract, checked on the exact workload being timed.
fn assert_equivalent(r: &Relation, attrs: &AttrSet) {
    let columnar = r.group_counts(attrs).expect("grouping succeeds");
    let baseline = group_counts_rowhash(r, attrs);
    assert_eq!(columnar.num_groups(), baseline.len());
    for (key, count) in columnar.iter() {
        assert_eq!(
            baseline.get(key).copied().unwrap_or(0),
            count,
            "key {key:?}"
        );
    }
}

fn main() {
    let budget = Duration::from_millis(400);
    let n = 100_000u64;
    let mut rng = StdRng::seed_from_u64(20230618);
    let r = random_relation(&mut rng, &[64, 64, 64, 64], n).expect("domain is large enough");

    let workloads: Vec<(&str, AttrSet)> = vec![
        ("pair", AttrSet::from_ids([1u32, 3])),
        ("triple", AttrSet::from_ids([0u32, 1, 2])),
        ("all4", AttrSet::from_ids([0u32, 1, 2, 3])),
    ];

    let mut json = BenchJson::new();
    println!("columnar group_counts vs seed row-hashing, N = {n} rows, dims = [64,64,64,64]");
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "grouping", "columnar", "row-hash", "speedup"
    );
    for (name, attrs) in &workloads {
        assert_equivalent(&r, attrs);
        let columnar = time_median(budget, || r.group_counts(attrs).unwrap());
        let rowhash = time_median(budget, || group_counts_rowhash(&r, attrs));
        let speedup = rowhash.as_secs_f64() / columnar.as_secs_f64();
        println!("{name:<28} {columnar:>14.2?} {rowhash:>14.2?} {speedup:>8.2}x");
        json.record_vs_baseline(&format!("group_counts/{name}_100k"), columnar, rowhash);
    }

    // Projection rides on the same kernel; record it for the trajectory too.
    let proj_attrs = AttrSet::from_ids([0u32, 2]);
    let columnar_proj = time_median(budget, || r.project(&proj_attrs).unwrap());
    json.record("project/pair_100k", columnar_proj);
    println!("{:<28} {:>14.2?}", "project/pair", columnar_proj);

    json.emit(&BenchJson::default_path());

    let min_speedup = json
        .records()
        .iter()
        .filter_map(|rec| rec.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("minimum grouping speedup over the seed baseline: {min_speedup:.2}x");
    assert!(
        min_speedup >= 2.0,
        "columnar grouping must be at least 2x the seed's row-hashing path, got {min_speedup:.2}x"
    );
}
