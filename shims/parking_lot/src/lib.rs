//! Offline stand-in for the `parking_lot` synchronisation primitives.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s poison-free API surface
//! (`lock()` returns the guard directly, `into_inner()` returns the value).
//! Poisoning is handled by propagating the panic, which matches
//! `parking_lot`'s behaviour of not poisoning at all for the workloads here:
//! a panicked experiment worker already aborts the run.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, does not surface poisoning: a poisoned lock still hands
    /// out the guard, as `parking_lot` (which has no poisoning) would.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with `parking_lot`'s poison-free interface.
///
/// Many readers may hold the lock simultaneously; writers get exclusive
/// access.  Used by the shared-computation caches (`AnalysisContext`), where
/// concurrent analysis threads mostly read already-memoized entries.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    ///
    /// Like `parking_lot`, does not surface poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    ///
    /// Like `parking_lot`, does not surface poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read(); // concurrent readers are fine
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
