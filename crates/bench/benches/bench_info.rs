//! Micro-benchmarks of the information measures: entropy, conditional mutual
//! information, the J-measure and the KL-divergence of Theorem 3.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ajd_info::{conditional_mutual_information, entropy, j_measure, kl_divergence_to_tree};
use ajd_jointree::JoinTree;
use ajd_random::generators::random_relation;
use ajd_relation::{AttrSet, Relation};

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn make_relation(n: u64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    random_relation(&mut rng, &[32, 32, 32, 32], n).expect("relation fits the domain")
}

fn bench_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("info/entropy");
    for &n in &[10_000u64, 100_000] {
        let r = make_relation(n, 1);
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("pair", n), &r, |b, r| {
            b.iter(|| entropy(r, &bag(&[0, 1])).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full", n), &r, |b, r| {
            b.iter(|| entropy(r, &bag(&[0, 1, 2, 3])).unwrap())
        });
    }
    group.finish();
}

fn bench_cmi(c: &mut Criterion) {
    let mut group = c.benchmark_group("info/conditional_mi");
    let r = make_relation(100_000, 2);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("I(X0;X1|X2)", |b| {
        b.iter(|| conditional_mutual_information(&r, &bag(&[0]), &bag(&[1]), &bag(&[2])).unwrap())
    });
    group.finish();
}

fn bench_j_and_kl(c: &mut Criterion) {
    let mut group = c.benchmark_group("info/j_measure_vs_kl");
    let r = make_relation(50_000, 3);
    let tree = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("j_measure", |b| b.iter(|| j_measure(&r, &tree).unwrap()));
    group.bench_function("kl_to_tree", |b| {
        b.iter(|| kl_divergence_to_tree(&r, &tree).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_entropy, bench_cmi, bench_j_and_kl);
criterion_main!(benches);
