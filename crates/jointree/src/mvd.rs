//! Multivalued dependencies and join-tree supports.
//!
//! An MVD `φ = C ↠ A | B` (with `C ∪ A ∪ B = Ω`) holds in `R` iff
//! `R = R[C∪A] ⋈ R[C∪B]`; its loss is
//! `ρ(R,φ) = (|R[C∪A] ⋈ R[C∪B]| − |R|)/|R|` (eq. 28).
//!
//! Beeri et al. showed that an acyclic join dependency over a join tree `T`
//! is equivalent to the `m − 1` MVDs associated with `T`'s edges — its
//! *support* `MVD(T)` — and Section 2.3 of the paper uses the *ordered*
//! support `{Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}}_{i∈[2,m]}` induced by a depth-first
//! enumeration of a rooted tree.  Both forms are provided here.

use crate::tree::{JoinTree, RootedTree};
use ajd_relation::{AttrSet, GroupSource, RelationError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multivalued dependency `C ↠ A | B`.
///
/// The two sides are stored *inclusive* of the conditioning set
/// (`left ⊇ lhs`, `right ⊇ lhs`, `left ∪ right = Ω`), matching the paper's
/// simplified notation `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}` (footnote 1: the mutual
/// information is unchanged by whether the separator is included).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mvd {
    /// The conditioning attribute set `C` (the separator).
    pub lhs: AttrSet,
    /// The left side `C ∪ A`.
    pub left: AttrSet,
    /// The right side `C ∪ B`.
    pub right: AttrSet,
}

impl Mvd {
    /// Creates an MVD `lhs ↠ left | right`, normalising the sides to include
    /// the conditioning set.
    ///
    /// Returns an error if either side (beyond `lhs`) is empty, i.e. the MVD
    /// is trivial.
    pub fn new(lhs: AttrSet, left: AttrSet, right: AttrSet) -> Result<Self> {
        let left = left.union(&lhs);
        let right = right.union(&lhs);
        if left.difference(&lhs).is_empty() || right.difference(&lhs).is_empty() {
            return Err(RelationError::EmptyInput(
                "MVD side contains no attribute outside the conditioning set",
            ));
        }
        Ok(Mvd { lhs, left, right })
    }

    /// All attributes mentioned by the MVD (`Ω = left ∪ right`).
    pub fn attributes(&self) -> AttrSet {
        self.left.union(&self.right)
    }

    /// The strict left side `A = left \ lhs`.
    pub fn left_exclusive(&self) -> AttrSet {
        self.left.difference(&self.lhs)
    }

    /// The strict right side `B = right \ lhs`.
    pub fn right_exclusive(&self) -> AttrSet {
        self.right.difference(&self.lhs)
    }

    /// The two-bag schema `{C∪A, C∪B}` induced by the MVD.
    pub fn schema(&self) -> Vec<AttrSet> {
        vec![self.left.clone(), self.right.clone()]
    }

    /// The (two-node) join tree of the MVD.
    pub fn join_tree(&self) -> JoinTree {
        JoinTree::new(self.schema(), vec![(0, 1)])
            .expect("a two-bag schema always admits a join tree")
    }

    /// Size of the two-way join `|R[C∪A] ⋈ R[C∪B]|`.
    ///
    /// Runs on interned group ids: both side projections and the
    /// shared-attribute co-grouping are recovered from per-row id vectors
    /// (number of *distinct* side tuples per shared group, multiplied
    /// pairwise).  Over a caching [`GroupSource`] the support MVDs of many
    /// trees over one relation never re-group `R`.
    ///
    /// Counted in `u128` with checked arithmetic (the join can reach `N²`,
    /// beyond `u64` at production scale); sizes beyond `u128` yield
    /// [`RelationError::CountOverflow`].
    pub fn join_size<S: GroupSource>(&self, src: &S) -> Result<u128> {
        let shared = self.left.intersection(&self.right);
        let shared_ids = src.group_ids(&shared)?;
        // Number of *distinct* side tuples per shared-attribute group:
        // map each side group to its shared group (`shared ⊆ side`), then
        // count how many side groups land on each shared group.
        let side_counts = |side: &AttrSet| -> Result<Vec<u64>> {
            let side_ids = src.group_ids(side)?;
            let mut counts = vec![0u64; shared_ids.num_groups()];
            for sh in side_ids.map_to(&shared_ids) {
                counts[sh as usize] += 1;
            }
            Ok(counts)
        };
        let left = side_counts(&self.left)?;
        let right = side_counts(&self.right)?;
        let mut total: u128 = 0;
        for (&l, &r) in left.iter().zip(&right) {
            // A product of two u64 counts always fits in u128; only the
            // accumulated sum can overflow.
            let pairs = (l as u128) * (r as u128);
            total = total
                .checked_add(pairs)
                .ok_or(RelationError::CountOverflow(
                    "two-way join size exceeds u128",
                ))?;
        }
        Ok(total)
    }

    /// The loss `ρ(R, φ)` of eq. (28): relative number of spurious tuples of
    /// the two-way decomposition.
    ///
    /// The baseline is the number of distinct tuples of `R` projected onto
    /// the MVD's attributes — `|R|` in the paper's setting (a set relation
    /// the MVD fully covers).  The join always contains that projection, so
    /// the loss is never negative, duplicates or not.
    pub fn loss<S: GroupSource>(&self, src: &S) -> Result<f64> {
        if src.is_empty() {
            return Err(RelationError::EmptyInput("relation for MVD loss"));
        }
        let join = self.join_size(src)? as f64;
        let base = src.group_counts(&self.attributes())?.num_groups() as f64;
        Ok((join - base) / base)
    }

    /// `true` if the MVD holds in `R` (zero spurious tuples: the two-way
    /// join reproduces exactly the distinct tuples of `R` on the MVD's
    /// attributes).
    pub fn holds_in<S: GroupSource>(&self, src: &S) -> Result<bool> {
        let base = src.group_counts(&self.attributes())?.num_groups() as u128;
        Ok(self.join_size(src)? == base)
    }
}

impl fmt::Display for Mvd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ->> {} | {}",
            self.lhs,
            self.left_exclusive(),
            self.right_exclusive()
        )
    }
}

/// The support `MVD(T)` of a join tree: one MVD per edge, obtained by
/// splitting the tree at that edge (`φ_{u,v} = χ(u)∩χ(v) ↠ χ(T_u) | χ(T_v)`).
pub fn support(tree: &JoinTree) -> Vec<Mvd> {
    (0..tree.num_edges())
        .map(|e| {
            let sep = tree.separator(e);
            let (left, right) = tree.edge_split(e);
            Mvd::new(sep, left, right)
                .expect("edge split of a valid join tree yields a non-trivial MVD")
        })
        .collect()
}

/// The *ordered* support of a rooted join tree (eq. 9): for each DFS position
/// `i ∈ [2, m]` the MVD `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}`.
pub fn ordered_support(rooted: &RootedTree) -> Vec<Mvd> {
    (2..=rooted.num_nodes())
        .map(|i| {
            let delta = rooted.delta(i);
            let left = rooted.prefix_union(i - 1);
            let right = rooted.suffix_union(i);
            Mvd::new(delta, left, right)
                .expect("ordered support of a valid rooted join tree is non-trivial")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::{AnalysisContext, AttrId, Relation};

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    #[test]
    fn normalisation_includes_lhs_in_both_sides() {
        let m = Mvd::new(bag(&[0]), bag(&[1]), bag(&[2])).unwrap();
        assert_eq!(m.left, bag(&[0, 1]));
        assert_eq!(m.right, bag(&[0, 2]));
        assert_eq!(m.left_exclusive(), bag(&[1]));
        assert_eq!(m.right_exclusive(), bag(&[2]));
        assert_eq!(m.attributes(), bag(&[0, 1, 2]));
    }

    #[test]
    fn trivial_mvd_rejected() {
        assert!(Mvd::new(bag(&[0]), bag(&[0]), bag(&[1])).is_err());
        assert!(Mvd::new(bag(&[0]), AttrSet::empty(), bag(&[1])).is_err());
    }

    #[test]
    fn mvd_holds_in_product_relation() {
        // R = full cross product of B and C conditioned on A (MVD holds).
        let mut rows = Vec::new();
        for a in 0..2u32 {
            for b in 0..3u32 {
                for c in 0..2u32 {
                    rows.push(vec![a, b, c]);
                }
            }
        }
        let r = rel(
            &[0, 1, 2],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let m = Mvd::new(bag(&[0]), bag(&[1]), bag(&[2])).unwrap();
        assert!(m.holds_in(&r).unwrap());
        assert_eq!(m.loss(&r).unwrap(), 0.0);
    }

    #[test]
    fn mvd_loss_on_bijection_relation() {
        // Example 4.1: loss of {} ->> A|B on the bijection relation is N - 1.
        let n = 7u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let m = Mvd::new(AttrSet::empty(), bag(&[0]), bag(&[1])).unwrap();
        assert_eq!(m.join_size(&r).unwrap(), (n * n) as u128);
        assert!((m.loss(&r).unwrap() - (n as f64 - 1.0)).abs() < 1e-12);
        assert!(!m.holds_in(&r).unwrap());
    }

    #[test]
    fn cached_join_size_matches_uncached() {
        let r = rel(
            &[0, 1, 2],
            &[
                &[0, 0, 0],
                &[0, 1, 1],
                &[1, 0, 1],
                &[1, 1, 0],
                &[2, 1, 1],
                &[2, 0, 0],
            ],
        );
        let ctx = AnalysisContext::new(&r);
        let mvds = vec![
            Mvd::new(bag(&[0]), bag(&[1]), bag(&[2])).unwrap(),
            Mvd::new(bag(&[1]), bag(&[0]), bag(&[2])).unwrap(),
            Mvd::new(AttrSet::empty(), bag(&[0, 1]), bag(&[2])).unwrap(),
            // Overlapping exclusive sides (shared ⊋ lhs).
            Mvd::new(AttrSet::empty(), bag(&[0, 1]), bag(&[1, 2])).unwrap(),
        ];
        for m in &mvds {
            assert_eq!(
                m.join_size(&ctx).unwrap(),
                m.join_size(&r).unwrap(),
                "context join size disagrees for {m}"
            );
            assert_eq!(m.loss(&ctx).unwrap(), m.loss(&r).unwrap());
        }
        assert!(ctx.stats().hits > 0, "separator groupings must be shared");
    }

    #[test]
    fn loss_of_empty_relation_is_error() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let m = Mvd::new(AttrSet::empty(), bag(&[0]), bag(&[1])).unwrap();
        assert!(m.loss(&r).is_err());
    }

    #[test]
    fn support_has_one_mvd_per_edge() {
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let s = support(&t);
        assert_eq!(s.len(), 2);
        // Edge {01}-{12}: separator {1}, split {0,1} vs {1,2,3}.
        assert!(s.iter().any(|m| m.lhs == bag(&[1])
            && m.left == bag(&[0, 1])
            && m.right == bag(&[1, 2, 3])
            || m.lhs == bag(&[1]) && m.right == bag(&[0, 1]) && m.left == bag(&[1, 2, 3])));
    }

    #[test]
    fn ordered_support_matches_paper_indexing() {
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let r = t.rooted(0).unwrap();
        let s = ordered_support(&r);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].lhs, bag(&[1]));
        assert_eq!(s[0].left, bag(&[0, 1]));
        assert_eq!(s[0].right, bag(&[1, 2, 3]));
        assert_eq!(s[1].lhs, bag(&[2]));
        assert_eq!(s[1].left, bag(&[0, 1, 2]));
        assert_eq!(s[1].right, bag(&[2, 3]));
    }

    #[test]
    fn ordered_support_covers_all_attributes() {
        let t = JoinTree::star(vec![
            bag(&[0, 1, 2]),
            bag(&[0, 3]),
            bag(&[2, 4]),
            bag(&[1, 5]),
        ])
        .unwrap();
        let r = t.rooted(0).unwrap();
        for m in ordered_support(&r) {
            assert_eq!(m.attributes(), t.attributes());
        }
    }

    #[test]
    fn mvd_join_tree_is_valid() {
        let m = Mvd::new(bag(&[0]), bag(&[1]), bag(&[2])).unwrap();
        let t = m.join_tree();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.separator(0), bag(&[0]));
    }

    #[test]
    fn display_shows_arrow_notation() {
        let m = Mvd::new(bag(&[0]), bag(&[1]), bag(&[2])).unwrap();
        let s = format!("{m}");
        assert!(s.contains("->>"));
        assert!(s.contains('|'));
    }
}
