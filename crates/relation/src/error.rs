//! Error type shared by the relational substrate.

use crate::attr::AttrId;
use std::fmt;

/// Convenient result alias for relational operations.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors produced by relational operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A row of the wrong arity was supplied to a relation.
    ArityMismatch {
        /// Arity the relation expects.
        expected: usize,
        /// Arity that was supplied.
        got: usize,
    },
    /// The same attribute appears twice in a schema definition.
    DuplicateAttribute(AttrId),
    /// An operation referenced an attribute that the relation does not have.
    UnknownAttribute(AttrId),
    /// A named attribute or value was not found in the catalog.
    UnknownName(String),
    /// Two relations that were expected to share a schema do not.
    SchemaMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A generator/sampler was asked for more tuples than the domain holds.
    DomainExhausted {
        /// Number of tuples requested.
        requested: u64,
        /// Size of the domain.
        available: u64,
    },
    /// An empty relation (or empty schema) was supplied where it is invalid.
    EmptyInput(&'static str),
    /// An exact count overflowed its integer representation.
    ///
    /// Join sizes are accumulated in `u128` with checked arithmetic and
    /// interned group ids are capped at `u32`; a count beyond its
    /// representation cannot be reported faithfully (and any `ρ` derived
    /// from a clamped value would be silently wrong), so the operation
    /// fails instead of saturating or wrapping.
    CountOverflow(&'static str),
    /// A caller-supplied numeric parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        what: &'static str,
        /// Description of the valid range and the value received.
        detail: String,
    },
    /// A filesystem read or write failed.
    ///
    /// Wraps the `std::io::Error` message (the error itself is neither
    /// `Clone` nor `PartialEq`, which this enum is).
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            RelationError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute {a} in schema")
            }
            RelationError::UnknownAttribute(a) => {
                write!(f, "attribute {a} is not part of the relation schema")
            }
            RelationError::UnknownName(n) => write!(f, "unknown name: {n}"),
            RelationError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            RelationError::DomainExhausted {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} distinct tuples but the domain only has {available}"
            ),
            RelationError::EmptyInput(what) => write!(f, "empty input: {what}"),
            RelationError::CountOverflow(what) => {
                write!(f, "count overflow: {what}")
            }
            RelationError::InvalidParameter { what, detail } => {
                write!(f, "invalid parameter {what}: {detail}")
            }
            RelationError::Io { path, detail } => {
                write!(f, "i/o error on {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = RelationError::UnknownAttribute(AttrId(4));
        assert!(e.to_string().contains("X4"));
        let e = RelationError::DomainExhausted {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
        let e = RelationError::CountOverflow("acyclic join size exceeds u128");
        assert!(e.to_string().contains("u128"));
        let e = RelationError::InvalidParameter {
            what: "delta",
            detail: "must be in (0,1), got 2".to_owned(),
        };
        assert!(e.to_string().contains("delta"));
        assert!(e.to_string().contains("(0,1)"));
        let e = RelationError::Io {
            path: "/tmp/data.csv".to_owned(),
            detail: "permission denied".to_owned(),
        };
        assert!(e.to_string().contains("/tmp/data.csv"));
        assert!(e.to_string().contains("permission denied"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&RelationError::EmptyInput("schema"));
    }
}
