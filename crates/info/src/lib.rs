//! # ajd-info
//!
//! Information measures over relation instances, as used by *"Quantifying
//! the Loss of Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! All measures are taken over the **empirical distribution** of a relation
//! `R` (Section 2.2): each tuple of a set relation has probability `1/N`;
//! multisets weight tuples by multiplicity.  The crate provides:
//!
//! * [`entropy()`] / [`conditional_entropy`] — `H(Y)` and `H(A | B)` for
//!   attribute sets.
//! * [`mutual_information`] / [`conditional_mutual_information`] —
//!   `I(A;B)` and `I(A;B|C)` (eq. 4).
//! * [`j_measure`] — Lee's J-measure of a join tree (eq. 7), plus its
//!   Theorem 2.2 sandwich bounds ([`j_measure_bounds`]).
//! * [`TreeFactoredDistribution`] — the distribution `P^T` of
//!   Proposition 3.1 (eq. 10), and [`kl_divergence_to_tree`], the quantity
//!   `D_KL(P ‖ P^T)` that Theorem 3.2 proves equal to `J(T)`.
//!
//! Every measure is **generic over [`ajd_relation::GroupSource`]** — one
//! code path, two calling styles: pass `&Relation` to compute marginals from
//! scratch, or pass a shared source (an [`ajd_relation::AnalysisContext`],
//! usually owned by `ajd_core::Analyzer`) so all group-count queries are
//! answered from its memoized caches — bit-identical results, but each
//! attribute subset is grouped at most once no matter how many measures (or
//! join trees) touch it.
//!
//! ## Units
//!
//! All quantities are returned in **nats** (natural logarithm).  The paper's
//! statements are base-agnostic as long as entropies and `log(1+ρ)` use the
//! same base; helpers [`nats_to_bits`] / [`bits_to_nats`] convert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod entropy;
pub mod jmeasure;
pub mod mutual;

pub use distribution::{kl_divergence_to_tree, kl_report, KlReport, TreeFactoredDistribution};
pub use entropy::{conditional_entropy, entropy, entropy_from_counts, entropy_of_relation};
pub use jmeasure::{j_measure, j_measure_bounds, j_measure_of_schema, JMeasureBounds};
pub use mutual::{conditional_mutual_information, mutual_information, mvd_cmi};

/// Converts a quantity measured in nats to bits.
pub fn nats_to_bits(nats: f64) -> f64 {
    nats / std::f64::consts::LN_2
}

/// Converts a quantity measured in bits to nats.
pub fn bits_to_nats(bits: f64) -> f64 {
    bits * std::f64::consts::LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        let x = 1.234;
        assert!((nats_to_bits(bits_to_nats(x)) - x).abs() < 1e-12);
        assert!((bits_to_nats(1.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
