//! Equivalence property tests of the sharded relation subsystem.
//!
//! The contract of [`ShardedRelation`] is **bit-identity** with the flat
//! [`Relation`] of the concatenated shard rows: for any relation, any
//! attribute subset, any shard count (empty and single-row shards included)
//! and any [`ThreadBudget`], grouping / counting / projection / dedup over
//! the shards must produce exactly what the flat kernel produces —
//! first-appearance numbering, counts, group codes, decoded keys and row
//! order included.  Both kernel flavours are exercised: dense small domains
//! drive the mixed-radix path inside each shard, scattered values drive the
//! packed-`u64` hashing path.
//!
//! The CI `sharded-matrix` job runs this suite under
//! `AJD_TEST_SHARDS={1,3,8}` × `AJD_TEST_THREADS={1,4}`; those environment
//! values are folded into the fixture lists below, so every matrix cell
//! checks an extra shard-count / budget combination on top of the fixed
//! ones.

use ajd_relation::relation::GroupIds;
use ajd_relation::{AttrId, AttrSet, Relation, ShardedRelation, ThreadBudget, Value};
use proptest::prelude::*;

/// Multiplies values by a large odd constant so raw values are scattered
/// over the whole `u32` range (domains get large, forcing the hashing path).
fn scatter(v: u32) -> u32 {
    v.wrapping_mul(2_654_435_761).wrapping_add(0xdead_beef)
}

/// Reads a positive integer from the environment (the CI matrix knobs).
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Shard counts exercised: the fixed {1, 2, 7} plus the CI matrix's
/// `AJD_TEST_SHARDS` value (if any).
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 7];
    if let Some(n) = env_usize("AJD_TEST_SHARDS") {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// Thread budgets exercised: serial and 4, plus the CI matrix's
/// `AJD_TEST_THREADS` value (if any).
fn thread_budgets() -> Vec<ThreadBudget> {
    let mut threads = vec![1usize, 4];
    if let Some(n) = env_usize("AJD_TEST_THREADS") {
        if n > 0 && !threads.contains(&n) {
            threads.push(n);
        }
    }
    threads.into_iter().map(ThreadBudget::new).collect()
}

/// A relation over `arity` attributes with (possibly duplicated) rows.
fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
    scattered: bool,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            let rows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|v| if scattered { scatter(v) } else { v })
                        .collect()
                })
                .collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

/// All the attribute subsets a relation of this arity gets checked on.
fn attr_sets(arity: usize) -> Vec<AttrSet> {
    let mut sets = vec![AttrSet::empty(), AttrSet::range(arity)];
    if arity >= 1 {
        sets.push(AttrSet::singleton(AttrId(0)));
        sets.push(AttrSet::singleton(AttrId(arity as u32 - 1)));
    }
    if arity >= 2 {
        sets.push(AttrSet::from_ids([0, arity as u32 - 1]));
    }
    sets
}

/// Asserts every observable field of two groupings is identical.
fn assert_bit_identical(flat: &GroupIds, sharded: &GroupIds, what: &str) -> Result<(), String> {
    if sharded.row_ids() != flat.row_ids() {
        return Err(format!("{what}: row_ids differ"));
    }
    if sharded.counts() != flat.counts() {
        return Err(format!("{what}: counts differ"));
    }
    if sharded.group_codes() != flat.group_codes() {
        return Err(format!("{what}: group_codes differ"));
    }
    if sharded.attrs() != flat.attrs() {
        return Err(format!("{what}: attrs differ"));
    }
    Ok(())
}

/// Asserts two relations are identical row for row (same schema order, same
/// row order, same values) — stronger than set equality.
fn assert_rows_identical(a: &Relation, b: &Relation, what: &str) -> Result<(), String> {
    if a.schema() != b.schema() {
        return Err(format!("{what}: schemas differ"));
    }
    if a.len() != b.len() {
        return Err(format!(
            "{what}: row counts differ ({} vs {})",
            a.len(),
            b.len()
        ));
    }
    for (i, (ra, rb)) in a.iter_rows().zip(b.iter_rows()).enumerate() {
        if ra != rb {
            return Err(format!("{what}: row {i} differs"));
        }
    }
    Ok(())
}

/// The full equivalence check for one relation and one shard count:
/// group_ids / group_counts (every attribute subset, every budget),
/// project, distinct, and the collect round trip.
fn check_sharded_matches_flat(flat: &Relation, num_shards: usize) -> Result<(), String> {
    let sharded = flat
        .clone()
        .into_shards(num_shards)
        .map_err(|e| e.to_string())?;
    if sharded.num_shards() != num_shards {
        return Err(format!(
            "into_shards({num_shards}) produced {} shards",
            sharded.num_shards()
        ));
    }
    let budgets = thread_budgets();
    for attrs in attr_sets(flat.arity()) {
        let serial = flat.group_ids(&attrs).map_err(|e| e.to_string())?;
        for &budget in &budgets {
            let what = format!("shards={num_shards} threads={} attrs={attrs}", budget.get());
            let ids = sharded
                .group_ids_with(&attrs, budget)
                .map_err(|e| e.to_string())?;
            assert_bit_identical(&serial, &ids, &what)?;
            // Decoded keys (the GroupCounts view) are identical too.
            let fc = flat.decode_group_counts(&serial);
            let sc = sharded
                .group_counts_with(&attrs, budget)
                .map_err(|e| e.to_string())?;
            if fc.total != sc.total || fc.counts() != sc.counts() {
                return Err(format!("{what}: decoded counts differ"));
            }
            for g in 0..fc.num_groups() {
                if fc.key(g) != sc.key(g) || fc.key_codes(g) != sc.key_codes(g) {
                    return Err(format!("{what}: decoded key of group {g} differs"));
                }
            }
            // Projections are identical relations, not just equal sets.
            let fp = flat.project(&attrs).map_err(|e| e.to_string())?;
            let sp = sharded
                .project_with(&attrs, budget)
                .map_err(|e| e.to_string())?;
            assert_rows_identical(&fp, &sp, &format!("{what}: project"))?;
        }
    }
    assert_rows_identical(
        &flat.distinct(),
        &sharded.distinct(),
        &format!("shards={num_shards}: distinct"),
    )?;
    if flat.is_set() != sharded.is_set() {
        return Err(format!("shards={num_shards}: is_set disagrees"));
    }
    // The round trip reproduces the flat store, dictionaries included.
    let back = sharded.collect().map_err(|e| e.to_string())?;
    assert_rows_identical(flat, &back, &format!("shards={num_shards}: collect"))?;
    for &attr in flat.schema() {
        if back.domain(attr) != flat.domain(attr)
            || back.column_codes(attr) != flat.column_codes(attr)
        {
            return Err(format!(
                "shards={num_shards}: dictionaries differ after collect"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense small domains: every shard groups through the mixed-radix
    /// kernel; shard counts exceed the row count often enough that empty
    /// and single-row shards are routinely exercised.
    #[test]
    fn sharded_equals_flat_dense(r in relation_strategy(3, 4, 40, false)) {
        for n in shard_counts() {
            if let Err(msg) = check_sharded_matches_flat(&r, n) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Scattered wide domains: every shard groups through the packed-`u64`
    /// hashing kernel, and the shard-order dictionary merge has real work
    /// to do (shards see overlapping but differently-ordered value sets).
    #[test]
    fn sharded_equals_flat_scattered(r in relation_strategy(2, 50, 60, true)) {
        for n in shard_counts() {
            if let Err(msg) = check_sharded_matches_flat(&r, n) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Incremental maintenance ≡ from-scratch: group a sharded relation so
    /// every per-shard table is warm, append a batch as one new shard, and
    /// group again.  The cached path (one new-shard compute + re-merge)
    /// must be bit-identical to both an uncached regroup of the grown
    /// relation and the flat relation of the concatenated rows, for every
    /// attribute subset and budget — and the append must bump the epoch by
    /// exactly one without touching existing shards.
    #[test]
    fn incremental_append_equals_from_scratch(
        base in relation_strategy(3, 4, 40, false),
        batch in relation_strategy(3, 4, 12, false),
    ) {
        for n in shard_counts() {
            let mut grown = base.clone().into_shards(n).expect("shardable");
            let sets = attr_sets(base.arity());
            // Warm every per-shard table the checks below will use.
            for attrs in &sets {
                grown.group_ids(attrs).expect("warm grouping");
            }
            let epoch_before = grown.epoch();
            grown.append_shard(batch.clone()).expect("append");
            prop_assert_eq!(grown.epoch(), epoch_before + 1);
            prop_assert_eq!(grown.num_shards(), n + 1);

            let mut flat = base.clone();
            for row in batch.iter_rows() {
                flat.push_row(row).expect("same arity");
            }
            prop_assert_eq!(grown.len(), flat.len());
            for attrs in &sets {
                let reference = flat.group_ids(attrs).expect("flat grouping");
                for &budget in &thread_budgets() {
                    let what = format!(
                        "incremental shards={n} threads={} attrs={attrs}",
                        budget.get()
                    );
                    let warm = grown.group_ids_with(attrs, budget).expect("warm grouping");
                    let cold = grown
                        .group_ids_uncached_with(attrs, budget)
                        .expect("cold grouping");
                    if let Err(msg) = assert_bit_identical(&reference, &warm, &format!("{what} (cached)")) {
                        prop_assert!(false, "{}", msg);
                    }
                    if let Err(msg) = assert_bit_identical(&reference, &cold, &format!("{what} (uncached)")) {
                        prop_assert!(false, "{}", msg);
                    }
                }
            }
        }
    }

    /// Arbitrary (unbalanced) shard boundaries, not just near-equal splits:
    /// rows are cut at a random boundary list, so empty shards, single-row
    /// shards and one-giant-shard layouts all occur.
    #[test]
    fn sharded_equals_flat_at_arbitrary_boundaries(
        r in relation_strategy(3, 5, 30, false),
        cuts in prop::collection::vec(0..30usize, 0..4),
    ) {
        let schema = r.schema().to_vec();
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c.min(r.len())).collect();
        bounds.push(0);
        bounds.push(r.len());
        bounds.sort_unstable();
        let shards: Vec<Relation> = bounds
            .windows(2)
            .map(|w| {
                let mut shard = Relation::new(schema.clone()).expect("schema is duplicate-free");
                for i in w[0]..w[1] {
                    shard.push_row(r.row(i)).expect("same arity");
                }
                shard
            })
            .collect();
        let sharded = ShardedRelation::from_shards(schema, shards).expect("schemas match");
        prop_assert_eq!(sharded.len(), r.len());
        for attrs in attr_sets(r.arity()) {
            let a = r.group_ids(&attrs).expect("flat grouping");
            let b = sharded.group_ids(&attrs).expect("sharded grouping");
            if let Err(msg) = assert_bit_identical(&a, &b, &format!("boundaries attrs={attrs}")) {
                prop_assert!(false, "{}", msg);
            }
        }
    }
}

/// The degenerate fixtures the property generators may hit only rarely,
/// pinned explicitly: empty relation, single row, all-duplicate rows.
#[test]
fn degenerate_relations_shard_cleanly() {
    let schema = vec![AttrId(0), AttrId(1)];
    let empty = Relation::new(schema.clone()).unwrap();
    let single = Relation::from_rows(schema.clone(), &[&[7u32, 9u32][..]]).unwrap();
    let dups = Relation::from_rows(
        schema,
        &[&[1u32, 1u32][..], &[1, 1][..], &[1, 1][..], &[1, 1][..]],
    )
    .unwrap();
    for r in [&empty, &single, &dups] {
        for n in shard_counts() {
            check_sharded_matches_flat(r, n).unwrap();
        }
    }
}

/// The u32 extremes survive the global dictionary remap unchanged.
#[test]
fn extreme_values_roundtrip_through_shards() {
    let r = Relation::from_rows(
        vec![AttrId(0), AttrId(1)],
        &[
            &[u32::MAX, 0][..],
            &[0, u32::MAX][..],
            &[u32::MAX, u32::MAX][..],
            &[u32::MAX, 0][..],
        ],
    )
    .unwrap();
    for n in shard_counts() {
        check_sharded_matches_flat(&r, n).unwrap();
    }
}
