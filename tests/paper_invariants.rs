//! Property-based tests of the paper's core identities and inequalities.
//!
//! Relations are drawn from the random relation model (Definition 5.2) with
//! proptest-chosen domain sizes, sizes and seeds; join trees are chosen from
//! a small family of shapes over the same attributes.  Every generated
//! `(R, T)` pair must satisfy:
//!
//! * Theorem 3.2:  `J(T) = D_KL(P_R ‖ P_R^T)` (numerically);
//! * Lemma 4.1:    `J(T) ≤ log(1 + ρ(R,S))`;
//! * Proposition 5.1: `J(T) ≤ Σᵢ log(1+ρ(R,φᵢ))`;
//! * Theorem 2.2:  `max_i I_i ≤ J ≤ Σ_i I_i` over the ordered support;
//! * consistency:  the join size from tree counting equals the size of the
//!   materialised acyclic join.

use ajd::jointree::{acyclic_join, count_acyclic_join};
use ajd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds one of a few join-tree shapes over 4 attributes.
fn tree_for(shape: u8) -> JoinTree {
    let bag = |ids: &[u32]| AttrSet::from_ids(ids.iter().copied());
    match shape % 5 {
        0 => JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
        1 => JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        2 => JoinTree::path(vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])]).unwrap(),
        3 => JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        _ => JoinTree::new(vec![bag(&[0, 1]), bag(&[1, 2, 3])], vec![(0, 1)]).unwrap(),
    }
}

/// Samples a relation over 4 attributes with the given per-attribute domain
/// sizes and tuple count (clamped to the domain size).
fn sample_relation(dims: [u64; 4], n: u64, seed: u64) -> Relation {
    let domain = ProductDomain::new(dims.to_vec()).unwrap();
    let capacity = domain.size();
    let model = RandomRelationModel::new(domain);
    let mut rng = StdRng::seed_from_u64(seed);
    model.sample(&mut rng, n.clamp(1, capacity)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem_3_2_j_equals_kl(
        d in prop::array::uniform4(2u64..6),
        n in 1u64..120,
        seed in 0u64..1_000_000,
        shape in 0u8..5,
    ) {
        let r = sample_relation(d, n, seed);
        let tree = tree_for(shape);
        let j = j_measure(&r, &tree).unwrap();
        let kl = kl_divergence_to_tree(&r, &tree).unwrap();
        prop_assert!(j >= -1e-9, "J must be non-negative, got {j}");
        prop_assert!((j - kl).abs() <= 1e-9 * (1.0 + j.abs()),
            "Theorem 3.2 violated: J = {j}, KL = {kl}");
    }

    #[test]
    fn lemma_4_1_and_prop_5_1_hold(
        d in prop::array::uniform4(2u64..6),
        n in 1u64..120,
        seed in 0u64..1_000_000,
        shape in 0u8..5,
    ) {
        let r = sample_relation(d, n, seed);
        let tree = tree_for(shape);
        let report = Analyzer::new(&r).analyze(&tree).unwrap();
        // Lemma 4.1.
        prop_assert!(report.j_measure <= report.log1p_rho + 1e-9,
            "Lemma 4.1 violated: J = {} > log(1+rho) = {}", report.j_measure, report.log1p_rho);
        prop_assert!(report.rho_lower_bound <= report.rho + 1e-6 * (1.0 + report.rho));
        // Proposition 5.1: J is bounded by the summed per-MVD log-losses.
        // (The loss log(1+rho) itself does NOT satisfy this bound.)
        prop_assert!(report.j_measure <= report.prop51_bound + 1e-9,
            "Prop 5.1 violated: {} > {}", report.j_measure, report.prop51_bound);
        // Theorem 2.2 sandwich.
        prop_assert!(report.theorem22.max_cmi <= report.j_measure + 1e-9);
        prop_assert!(report.j_measure <= report.theorem22.sum_cmi + 1e-9);
        // Per-MVD Lemma 4.1.
        for m in &report.per_mvd {
            prop_assert!(m.cmi_nats <= m.log1p_rho + 1e-9);
        }
    }

    #[test]
    fn tree_counting_matches_materialised_join(
        d in prop::array::uniform4(2u64..5),
        n in 1u64..60,
        seed in 0u64..1_000_000,
        shape in 0u8..5,
    ) {
        let r = sample_relation(d, n, seed);
        let tree = tree_for(shape);
        let counted = count_acyclic_join(&r, &tree).unwrap();
        let materialised = acyclic_join(&r, &tree).unwrap();
        prop_assert_eq!(counted, materialised.len() as u128);
        // The original relation is always contained in the acyclic join.
        prop_assert!(r.is_subset_of(&materialised));
    }

    #[test]
    fn lossless_iff_j_zero(
        d in prop::array::uniform4(2u64..5),
        n in 1u64..60,
        seed in 0u64..1_000_000,
        shape in 0u8..5,
    ) {
        // Theorem 2.1 (Lee): R |= AJD(S) iff J(S) = 0.  We validate both
        // directions on the sampled relation and on its lossless closure.
        let r = sample_relation(d, n, seed);
        let tree = tree_for(shape);
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        prop_assert_eq!(rep.is_lossless(), rep.j_measure.abs() < 1e-9);

        // The acyclic join of the projections always models the tree.
        let closure = acyclic_join(&r, &tree).unwrap();
        let closure_rep = Analyzer::new(&closure).analyze(&tree).unwrap();
        prop_assert!(closure_rep.is_lossless());
        prop_assert!(closure_rep.j_measure.abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn example_4_1_tightness_for_any_n(n in 2u32..300) {
        let r = generators::bijection_relation(n);
        let tree = JoinTree::from_acyclic_schema(&[
            AttrSet::singleton(AttrId(0)),
            AttrSet::singleton(AttrId(1)),
        ]).unwrap();
        let rep = Analyzer::new(&r).analyze(&tree).unwrap();
        prop_assert!((rep.j_measure - (n as f64).ln()).abs() < 1e-9);
        prop_assert!((rep.rho - (n as f64 - 1.0)).abs() < 1e-9);
        prop_assert!(rep.lemma41_gap().abs() < 1e-9);
    }

    #[test]
    fn sampling_without_replacement_is_exact(
        d_a in 2u64..30,
        d_b in 2u64..30,
        frac in 0.05f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let capacity = d_a * d_b;
        let n = ((capacity as f64 * frac).round() as u64).clamp(1, capacity);
        let model = RandomRelationModel::degenerate(d_a, d_b).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = model.sample(&mut rng, n).unwrap();
        prop_assert_eq!(r.len() as u64, n);
        prop_assert!(r.is_set());
        for row in r.iter_rows() {
            prop_assert!((row[0] as u64) < d_a);
            prop_assert!((row[1] as u64) < d_b);
        }
    }
}
