//! `ajd-lint` — the workspace's determinism & exact-counting law, as code.
//!
//! The workspace's core guarantees are conventions a type checker cannot
//! see: bit-identical flat ≡ sharded grouping (so hash-map iteration order
//! must never leak into results), overflow-*erroring* `u128` counting (the
//! exact ρ/J/loss quantities of Kenig & Weinberger make silent clamping a
//! correctness bug, not a style nit), panic-free structured server errors,
//! and one budgeted door to parallelism.  This crate turns those
//! conventions into a machine-checked pass:
//!
//! * a hand-rolled lexer ([`lexer`]) that strips comments, blanks string
//!   and char literals, and tracks `#[cfg(test)]` regions;
//! * a mechanical rule engine ([`rules`]) over the scrubbed lines;
//! * a driver ([`engine`]) with inline waivers
//!   (`// ajd: allow(rule-id, "reason")`), so every exception is visible
//!   and justified in-tree — and itself linted (`malformed-waiver`,
//!   `stale-waiver`).
//!
//! Three enforcement surfaces share this library: the `ajd-lint` CLI
//! (`cargo run -p ajd-lint -- --deny`, `--json` for machine output), the
//! workspace integration test `tests/lint_workspace.rs` (so tier-1
//! `cargo test` enforces the pass forever), and the `lint` CI job.  The
//! rule catalog with examples and waiver syntax lives in `docs/LINTS.md`.
//!
//! ```
//! use ajd_lint::lint_source;
//!
//! let report = lint_source(
//!     "crates/server/src/demo.rs",
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//! );
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "panic-in-server");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_files, lint_source, lint_workspace, Report, WaivedFinding};
pub use rules::{Finding, RuleInfo, RULES};
