//! Parallel grouping / discovery-sweep scaling benchmark: the chunked
//! deterministic grouping kernel and the batch tree sweep at thread budgets
//! 1 / 2 / 4 / 8, on 100k-row relations.
//!
//! Three workloads:
//!
//! * `group_dense_100k` — 4 columns with small domains (mixed-radix dense
//!   kernel, rows dominate the work, groups are cheap to merge);
//! * `group_hash_100k`  — 4 correlated wide-domain columns (packed-`u64`
//!   hashing kernel, ~5k distinct groups);
//! * `sweep_30k`        — a cold discovery-style sweep: one fresh
//!   `BatchAnalyzer` scoring a dozen candidate trees per iteration.
//!
//! Before timing anything the parallel results are asserted **bit-identical**
//! to the serial kernel — speed never at the cost of the determinism
//! guarantee.  Results are printed and written to `BENCH_parallel.json`
//! (path overridable via `AJD_BENCH_JSON`); each `tN` record carries the
//! `t1` median as its baseline so the JSON records the speedup directly.
//!
//! The ≥ 1.5× speedup acceptance gate is opt-in
//! (`AJD_BENCH_ENFORCE_SPEEDUP=1`) and additionally requires ≥ 4 real
//! cores: shared CI runners make wall-clock speedups an unreliable
//! pass/fail signal, and on smaller machines (e.g. single-core
//! containers) a slowdown is physics, not a defect — the JSON records the
//! truth either way.

use std::path::PathBuf;
use std::time::Duration;

use ajd_bench::{time_median, BenchJson};
use ajd_core::BatchAnalyzer;
use ajd_jointree::JoinTree;
use ajd_random::generators::markov_chain_relation;
use ajd_relation::{AttrId, AttrSet, Relation, ThreadBudget};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Output path: `$AJD_BENCH_JSON` or `BENCH_parallel.json`.
fn out_path() -> PathBuf {
    std::env::var_os("AJD_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_parallel.json"))
}

/// 100k rows, four independent columns with domain `d` each: the dense
/// mixed-radix kernel when `d⁴` is small.
fn dense_relation(n: usize, d: u32) -> Relation {
    let mut rng = StdRng::seed_from_u64(20230618);
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n).unwrap();
    for _ in 0..n {
        let row = [
            rng.random_range(0..d),
            rng.random_range(0..d),
            rng.random_range(0..d),
            rng.random_range(0..d),
        ];
        r.push_row(&row).unwrap();
    }
    r
}

/// 100k rows whose four columns are all functions of one hidden key drawn
/// from `0..keys`: domains of ~`keys` values each push the domain product
/// far past the dense cap (packed-`u64` hashing kernel) while the group
/// count stays at ~`keys` — the high-multiplicity shape real categorical
/// data has.
fn correlated_relation(n: usize, keys: u32) -> Relation {
    let mut rng = StdRng::seed_from_u64(97);
    let schema: Vec<AttrId> = (0..4usize).map(AttrId::from).collect();
    let mut r = Relation::with_capacity(schema, n).unwrap();
    for _ in 0..n {
        let k = rng.random_range(0..keys);
        let row = [
            k.wrapping_mul(2_654_435_761),
            k.wrapping_mul(0x9e37_79b9).rotate_left(7),
            k ^ 0x5bd1_e995,
            k.wrapping_add(0x85eb_ca6b).wrapping_mul(3),
        ];
        r.push_row(&row).unwrap();
    }
    r
}

/// Panics unless the chunked kernel is bit-identical to the serial one on
/// this exact workload, at every benchmarked worker count.
fn assert_deterministic(r: &Relation, attrs: &AttrSet) {
    let serial = r.group_ids(attrs).unwrap();
    for &t in &THREADS {
        let par = r.group_ids_chunked(attrs, t).unwrap();
        assert_eq!(par.row_ids(), serial.row_ids(), "row_ids differ at t={t}");
        assert_eq!(par.counts(), serial.counts(), "counts differ at t={t}");
        assert_eq!(
            par.group_codes(),
            serial.group_codes(),
            "group_codes differ at t={t}"
        );
    }
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// A discovery-style candidate sweep over 6 attributes: paths, stars and
/// partially-contracted trees, sharing most bags and separators.
fn sweep_trees() -> Vec<JoinTree> {
    vec![
        JoinTree::path(vec![
            bag(&[0, 1]),
            bag(&[1, 2]),
            bag(&[2, 3]),
            bag(&[3, 4]),
            bag(&[4, 5]),
        ])
        .unwrap(),
        JoinTree::star(vec![
            bag(&[0, 1]),
            bag(&[0, 2]),
            bag(&[0, 3]),
            bag(&[0, 4]),
            bag(&[0, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![
            bag(&[0, 1, 2]),
            bag(&[2, 3]),
            bag(&[3, 4]),
            bag(&[4, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![
            bag(&[0, 1]),
            bag(&[1, 2, 3]),
            bag(&[3, 4]),
            bag(&[4, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![
            bag(&[0, 1]),
            bag(&[1, 2]),
            bag(&[2, 3, 4]),
            bag(&[4, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![
            bag(&[0, 1]),
            bag(&[1, 2]),
            bag(&[2, 3]),
            bag(&[3, 4, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![bag(&[0, 1, 2, 3]), bag(&[3, 4]), bag(&[4, 5])]).unwrap(),
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2, 3, 4]), bag(&[4, 5])]).unwrap(),
        JoinTree::star(vec![
            bag(&[1, 0]),
            bag(&[1, 2]),
            bag(&[1, 3]),
            bag(&[1, 4]),
            bag(&[1, 5]),
        ])
        .unwrap(),
        JoinTree::path(vec![bag(&[0, 1, 2]), bag(&[2, 3, 4]), bag(&[4, 5])]).unwrap(),
        JoinTree::path(vec![
            bag(&[0, 2]),
            bag(&[2, 1]),
            bag(&[1, 3]),
            bag(&[3, 4]),
            bag(&[4, 5]),
        ])
        .unwrap(),
        JoinTree::new(vec![bag(&[0, 1, 2, 3, 4, 5])], vec![]).unwrap(),
    ]
}

fn main() {
    let budget = Duration::from_millis(400);
    let n = 100_000usize;
    let mut json = BenchJson::new();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("parallel grouping & sweep scaling, N = {n} rows, host cores = {cores}");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "workload", "t1", "t2", "t4", "t8"
    );

    let mut speedup_at_4 = f64::NEG_INFINITY;

    // --- grouping workloads -------------------------------------------------
    let workloads: Vec<(&str, Relation, AttrSet)> = vec![
        (
            "group_dense_100k",
            dense_relation(n, 12),
            bag(&[0, 1, 2, 3]),
        ),
        (
            "group_hash_100k",
            correlated_relation(n, 5000),
            bag(&[0, 1, 2, 3]),
        ),
    ];
    for (name, r, attrs) in &workloads {
        assert_deterministic(r, attrs);
        let mut medians = Vec::with_capacity(THREADS.len());
        for &t in &THREADS {
            let budget_t = ThreadBudget::new(t);
            medians.push(time_median(budget, || {
                r.group_ids_with(attrs, budget_t).unwrap()
            }));
        }
        let t1 = medians[0];
        for (&t, &m) in THREADS.iter().zip(&medians) {
            if t == 1 {
                json.record(&format!("parallel/{name}/t1"), m);
            } else {
                json.record_vs_baseline(&format!("parallel/{name}/t{t}"), m, t1);
            }
            if t == 4 {
                speedup_at_4 = speedup_at_4.max(t1.as_secs_f64() / m.as_secs_f64());
            }
        }
        println!(
            "{name:<26} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
            medians[0], medians[1], medians[2], medians[3]
        );
    }

    // --- discovery-style sweep ---------------------------------------------
    let mut rng = StdRng::seed_from_u64(5);
    let sweep_rel = markov_chain_relation(&mut rng, 6, 10, 30_000, 0.3, false)
        .expect("generator parameters are valid");
    let trees = sweep_trees();
    // Parallel and serial sweeps must agree bit-for-bit before being timed.
    let serial_js: Vec<f64> = BatchAnalyzer::new(&sweep_rel)
        .with_threads(1)
        .j_measures(&trees)
        .into_iter()
        .map(|j| j.unwrap())
        .collect();
    for &t in &THREADS[1..] {
        let js: Vec<f64> = BatchAnalyzer::new(&sweep_rel)
            .with_threads(t)
            .j_measures(&trees)
            .into_iter()
            .map(|j| j.unwrap())
            .collect();
        for (a, b) in serial_js.iter().zip(&js) {
            assert_eq!(a.to_bits(), b.to_bits(), "sweep J differs at t={t}");
        }
    }
    let mut medians = Vec::with_capacity(THREADS.len());
    for &t in &THREADS {
        // A fresh BatchAnalyzer per iteration: the *cold* sweep is the
        // discovery workload (a warm cache would measure nothing).
        medians.push(time_median(budget, || {
            BatchAnalyzer::new(&sweep_rel)
                .with_threads(t)
                .j_measures(&trees)
        }));
    }
    let t1 = medians[0];
    for (&t, &m) in THREADS.iter().zip(&medians) {
        if t == 1 {
            json.record("parallel/sweep_30k/t1", m);
        } else {
            json.record_vs_baseline(&format!("parallel/sweep_30k/t{t}"), m, t1);
        }
        if t == 4 {
            speedup_at_4 = speedup_at_4.max(t1.as_secs_f64() / m.as_secs_f64());
        }
    }
    println!(
        "{:<26} {:>12.2?} {:>12.2?} {:>12.2?} {:>12.2?}",
        "sweep_30k", medians[0], medians[1], medians[2], medians[3]
    );

    json.emit(&out_path());
    println!("best grouping-or-sweep speedup at 4 threads: {speedup_at_4:.2}x");

    // The 1.5x gate is opt-in (`AJD_BENCH_ENFORCE_SPEEDUP=1`): wall-clock
    // speedups on shared/contended runners are not a reliable pass/fail
    // signal, so CI records the trajectory JSON and a human (or a dedicated
    // perf host that sets the variable) judges the numbers.  The gate also
    // needs >= 4 real cores to be meaningful.
    let enforce = std::env::var_os("AJD_BENCH_ENFORCE_SPEEDUP").is_some_and(|v| v == "1");
    if enforce && cores >= 4 {
        assert!(
            speedup_at_4 >= 1.5,
            "on a >= 4-core host the best 4-thread speedup must reach 1.5x, got {speedup_at_4:.2}x"
        );
    } else if cores < 4 {
        println!(
            "host has {cores} core(s); the 1.5x @ 4-thread gate needs >= 4 cores and is skipped"
        );
    } else {
        println!("1.5x @ 4-thread gate not enforced (set AJD_BENCH_ENFORCE_SPEEDUP=1 to assert)");
    }
}
