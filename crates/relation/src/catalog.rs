//! Attribute catalogs and value dictionaries.
//!
//! The numeric core of the library works over [`crate::AttrId`]s and `u32`
//! dictionary codes.  A [`Catalog`] is the optional layer that maps
//! human-readable attribute names and string values onto those codes, so
//! that labelled datasets (e.g. CSV-like inputs in the examples) can be
//! ingested and results can be rendered back with their original labels.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::FxHashMap;
use crate::relation::Value;
use serde::{Deserialize, Serialize};

/// A per-attribute dictionary mapping string labels to dense codes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValueDict {
    labels: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, Value>,
}

impl ValueDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the code for `label`, interning it if new.
    pub fn intern(&mut self, label: &str) -> Value {
        if let Some(&v) = self.index.get(label) {
            return v;
        }
        let code = self.labels.len() as Value;
        self.labels.push(label.to_owned());
        self.index.insert(label.to_owned(), code);
        code
    }

    /// Looks up the code of an existing label.
    pub fn code(&self, label: &str) -> Option<Value> {
        self.index.get(label).copied()
    }

    /// Returns the label of a code, if the code is in range.
    pub fn label(&self, code: Value) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values interned so far (the active domain size).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Rebuilds the label → code index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as Value))
            .collect();
    }
}

/// Maps attribute names to [`AttrId`]s and owns one [`ValueDict`] per
/// attribute.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    names: Vec<String>,
    #[serde(skip)]
    by_name: FxHashMap<String, AttrId>,
    dicts: Vec<ValueDict>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog with the given attribute names (ids are assigned in
    /// order).
    pub fn with_attributes<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut c = Catalog::new();
        for n in names {
            c.add_attribute(n.as_ref())?;
        }
        Ok(c)
    }

    /// Registers a new attribute and returns its id.
    pub fn add_attribute(&mut self, name: &str) -> Result<AttrId> {
        if self.by_name.contains_key(name) {
            return Err(RelationError::DuplicateAttribute(self.by_name[name]));
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.dicts.push(ValueDict::new());
        Ok(id)
    }

    /// Number of registered attributes.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// All attribute names in id order (index `i` is the name of
    /// `AttrId(i)`).  Infallible companion to per-id [`Catalog::name`]
    /// lookups when a caller wants the whole schema.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The full attribute set `Ω` of this catalog.
    pub fn all_attributes(&self) -> AttrSet {
        AttrSet::range(self.names.len())
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownName(name.to_owned()))
    }

    /// Returns the name of an attribute.
    pub fn name(&self, id: AttrId) -> Result<&str> {
        self.names
            .get(id.index())
            .map(String::as_str)
            .ok_or(RelationError::UnknownAttribute(id))
    }

    /// Returns the attribute set for a list of names.
    pub fn attrs<I, S>(&self, names: I) -> Result<AttrSet>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids = Vec::new();
        for n in names {
            ids.push(self.attr(n.as_ref())?);
        }
        Ok(AttrSet::from_slice(&ids))
    }

    /// Interns a string value for the given attribute.
    pub fn intern_value(&mut self, attr: AttrId, label: &str) -> Result<Value> {
        let dict = self
            .dicts
            .get_mut(attr.index())
            .ok_or(RelationError::UnknownAttribute(attr))?;
        Ok(dict.intern(label))
    }

    /// Encodes a full row of string labels (in attribute-id order).
    pub fn encode_row(&mut self, labels: &[&str]) -> Result<Vec<Value>> {
        if labels.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                got: labels.len(),
            });
        }
        let mut row = Vec::with_capacity(labels.len());
        for (i, label) in labels.iter().enumerate() {
            row.push(self.dicts[i].intern(label));
        }
        Ok(row)
    }

    /// Decodes a value back to its label, if the attribute uses a dictionary.
    pub fn value_label(&self, attr: AttrId, value: Value) -> Option<&str> {
        self.dicts.get(attr.index()).and_then(|d| d.label(value))
    }

    /// Active-domain size of an attribute (number of interned labels).
    pub fn domain_size(&self, attr: AttrId) -> Result<usize> {
        self.dicts
            .get(attr.index())
            .map(ValueDict::len)
            .ok_or(RelationError::UnknownAttribute(attr))
    }

    /// Rebuilds all name/label indexes (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), AttrId(i as u32)))
            .collect();
        for d in &mut self.dicts {
            d.rebuild_index();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut d = ValueDict::new();
        assert_eq!(d.intern("red"), 0);
        assert_eq!(d.intern("green"), 1);
        assert_eq!(d.intern("red"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(1), Some("green"));
        assert_eq!(d.code("green"), Some(1));
        assert_eq!(d.code("blue"), None);
        assert_eq!(d.label(5), None);
    }

    #[test]
    fn catalog_attribute_registration() {
        let mut c = Catalog::with_attributes(["A", "B", "C"]).unwrap();
        assert_eq!(c.arity(), 3);
        assert_eq!(c.attr("B").unwrap(), AttrId(1));
        assert_eq!(c.name(AttrId(2)).unwrap(), "C");
        assert!(c.attr("Z").is_err());
        assert!(c.name(AttrId(9)).is_err());
        assert!(c.add_attribute("A").is_err());
        assert_eq!(c.all_attributes(), AttrSet::range(3));
    }

    #[test]
    fn attrs_builds_sets_by_name() {
        let c = Catalog::with_attributes(["A", "B", "C"]).unwrap();
        let s = c.attrs(["C", "A"]).unwrap();
        assert_eq!(s, AttrSet::from_ids([0, 2]));
        assert!(c.attrs(["A", "Q"]).is_err());
    }

    #[test]
    fn encode_and_decode_rows() {
        let mut c = Catalog::with_attributes(["city", "country"]).unwrap();
        let r1 = c.encode_row(&["haifa", "il"]).unwrap();
        let r2 = c.encode_row(&["seattle", "us"]).unwrap();
        let r3 = c.encode_row(&["haifa", "il"]).unwrap();
        assert_eq!(r1, r3);
        assert_ne!(r1, r2);
        assert_eq!(c.value_label(AttrId(0), r2[0]), Some("seattle"));
        assert_eq!(c.domain_size(AttrId(0)).unwrap(), 2);
        assert!(c.encode_row(&["only-one"]).is_err());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut c = Catalog::with_attributes(["A"]).unwrap();
        c.intern_value(AttrId(0), "x").unwrap();
        let mut c2 = c.clone();
        // simulate index loss (as after deserialisation)
        c2.by_name.clear();
        c2.rebuild_index();
        assert_eq!(c2.attr("A").unwrap(), AttrId(0));
        assert_eq!(c2.dicts[0].code("x"), Some(0));
    }
}
