#![cfg(ajd_model)]
use ajd_model::{thread, Model};

#[test]
fn panic_in_scoped_child_reports() {
    let report = Model::new().max_schedules(100).explore(|| {
        thread::scope(|s| {
            s.spawn(|| panic!("boom"));
            s.spawn(|| ());
        });
    });
    assert!(report.violation.is_some());
}
