//! Join trees (junction trees) and rooted orderings.
//!
//! A join tree `(T, χ)` (Definition 2.1 of the paper) is an undirected tree
//! whose nodes carry attribute *bags* `χ(u)` such that, for every attribute
//! `X`, the nodes whose bags contain `X` form a connected subtree (the
//! *running intersection property*, RIP).  The schema defined by the tree is
//! the set of its bags.
//!
//! Many results of the paper are phrased over a *rooted* join tree with a
//! depth-first enumeration `u₁,…,u_m` of its nodes (Section 2.3): the
//! separators are `Δᵢ = χ(parent(uᵢ)) ∩ χ(uᵢ)`, the prefix unions are
//! `Ω_{1:i} = ∪_{ℓ≤i} Ω_ℓ`, and the support MVDs are
//! `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}`.  [`RootedTree`] materialises that view.

use ajd_relation::{AttrSet, RelationError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated join tree: bags plus undirected tree edges satisfying the
/// running intersection property.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinTree {
    bags: Vec<AttrSet>,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl JoinTree {
    /// Builds a join tree from bags and undirected edges (node indices into
    /// `bags`).
    ///
    /// Validates that the edges form a tree over all nodes (connected,
    /// `m − 1` edges, no self-loops, indices in range) and that the running
    /// intersection property holds.
    pub fn new(bags: Vec<AttrSet>, edges: Vec<(usize, usize)>) -> Result<Self> {
        let m = bags.len();
        if m == 0 {
            return Err(RelationError::EmptyInput("join tree with no bags"));
        }
        if edges.len() != m - 1 {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "a join tree over {m} bags needs {} edges, got {}",
                    m - 1,
                    edges.len()
                ),
            });
        }
        let mut adjacency = vec![Vec::new(); m];
        for &(u, v) in &edges {
            if u >= m || v >= m || u == v {
                return Err(RelationError::SchemaMismatch {
                    detail: format!("edge ({u},{v}) is not valid for {m} nodes"),
                });
            }
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
        let tree = JoinTree {
            bags,
            edges,
            adjacency,
        };
        if !tree.is_connected() {
            return Err(RelationError::SchemaMismatch {
                detail: "join tree edges do not connect all bags".to_owned(),
            });
        }
        if !tree.check_running_intersection() {
            return Err(RelationError::SchemaMismatch {
                detail: "running intersection property violated".to_owned(),
            });
        }
        Ok(tree)
    }

    /// Builds a join tree for an acyclic schema via GYO reduction.
    pub fn from_acyclic_schema(bags: &[AttrSet]) -> Result<Self> {
        match crate::gyo::gyo_reduction(bags) {
            crate::gyo::GyoOutcome::Acyclic(t) => Ok(t),
            crate::gyo::GyoOutcome::Cyclic { residual } => Err(RelationError::SchemaMismatch {
                detail: format!(
                    "schema is not acyclic; {} bags remain after GYO reduction",
                    residual.len()
                ),
            }),
        }
    }

    /// Builds the join tree of an MVD `X ↠ Y₁ | ⋯ | Y_k`: bags `X∪Yᵢ`
    /// arranged in a star around the first bag (any tree over these bags has
    /// all separators equal to `X`, so the shape does not matter).
    pub fn from_mvd_parts(lhs: &AttrSet, parts: &[AttrSet]) -> Result<Self> {
        if parts.len() < 2 {
            return Err(RelationError::EmptyInput(
                "an MVD needs at least two dependent parts",
            ));
        }
        let bags: Vec<AttrSet> = parts.iter().map(|y| lhs.union(y)).collect();
        let edges: Vec<(usize, usize)> = (1..bags.len()).map(|i| (0, i)).collect();
        JoinTree::new(bags, edges)
    }

    /// Builds a path-shaped join tree `Ω₁ — Ω₂ — ⋯ — Ω_m` (validating RIP).
    pub fn path(bags: Vec<AttrSet>) -> Result<Self> {
        let edges: Vec<(usize, usize)> = (1..bags.len()).map(|i| (i - 1, i)).collect();
        JoinTree::new(bags, edges)
    }

    /// Builds a star-shaped join tree with `bags[0]` at the centre
    /// (validating RIP).
    pub fn star(bags: Vec<AttrSet>) -> Result<Self> {
        let edges: Vec<(usize, usize)> = (1..bags.len()).map(|i| (0, i)).collect();
        JoinTree::new(bags, edges)
    }

    /// Number of nodes `m`.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Number of edges (`m − 1`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The bag `χ(uᵢ)` of node `i`.
    pub fn bag(&self, i: usize) -> &AttrSet {
        &self.bags[i]
    }

    /// All bags, indexed by node.
    pub fn bags(&self) -> &[AttrSet] {
        &self.bags
    }

    /// The undirected edges of the tree.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a node.
    pub fn neighbours(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// The separator `χ(u) ∩ χ(v)` of the `e`-th edge.
    pub fn separator(&self, e: usize) -> AttrSet {
        let (u, v) = self.edges[e];
        self.bags[u].intersection(&self.bags[v])
    }

    /// All edge separators, in edge order.
    pub fn separators(&self) -> Vec<AttrSet> {
        (0..self.edges.len()).map(|e| self.separator(e)).collect()
    }

    /// The variable set of the tree `χ(T) = ∪ᵤ χ(u)`.
    pub fn attributes(&self) -> AttrSet {
        self.bags
            .iter()
            .fold(AttrSet::empty(), |acc, b| acc.union(b))
    }

    /// The schema defined by the tree (its bags, as owned sets).
    pub fn schema(&self) -> Vec<AttrSet> {
        self.bags.clone()
    }

    /// `true` if every node is reachable from node 0.
    fn is_connected(&self) -> bool {
        let m = self.num_nodes();
        let mut seen = vec![false; m];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == m
    }

    /// Checks the running intersection property: for every attribute, the
    /// nodes containing it induce a connected subtree.
    pub fn check_running_intersection(&self) -> bool {
        for attr in self.attributes().iter() {
            let holders: Vec<usize> = (0..self.num_nodes())
                .filter(|&i| self.bags[i].contains(attr))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS restricted to holder nodes, starting from the first holder.
            let mut seen = vec![false; self.num_nodes()];
            let mut stack = vec![holders[0]];
            seen[holders[0]] = true;
            let mut reached = 1usize;
            while let Some(u) = stack.pop() {
                for &v in &self.adjacency[u] {
                    if !seen[v] && self.bags[v].contains(attr) {
                        seen[v] = true;
                        reached += 1;
                        stack.push(v);
                    }
                }
            }
            if reached != holders.len() {
                return false;
            }
        }
        true
    }

    /// Returns the two sets of variables `χ(T_u)` and `χ(T_v)` obtained by
    /// removing the `e`-th edge `(u,v)`: the attribute sets of the two
    /// connected components, used to define the MVD `φ_{u,v}` of that edge.
    pub fn edge_split(&self, e: usize) -> (AttrSet, AttrSet) {
        let (u, v) = self.edges[e];
        let side_u = self.component_attrs(u, v);
        let side_v = self.component_attrs(v, u);
        (side_u, side_v)
    }

    /// Attributes of the connected component containing `start` in the tree
    /// with the edge towards `blocked` removed.
    fn component_attrs(&self, start: usize, blocked: usize) -> AttrSet {
        let mut seen = vec![false; self.num_nodes()];
        seen[start] = true;
        seen[blocked] = true; // do not cross into the other side
        let mut stack = vec![start];
        let mut attrs = self.bags[start].clone();
        while let Some(x) = stack.pop() {
            for &y in &self.adjacency[x] {
                if !seen[y] {
                    seen[y] = true;
                    attrs = attrs.union(&self.bags[y]);
                    stack.push(y);
                }
            }
        }
        attrs
    }

    /// Roots the tree at `root` and returns the depth-first view used by the
    /// paper's ordered statements (Theorem 2.2, Proposition 5.3).
    pub fn rooted(&self, root: usize) -> Result<RootedTree> {
        if root >= self.num_nodes() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "root {root} out of range for a tree with {} nodes",
                    self.num_nodes()
                ),
            });
        }
        let m = self.num_nodes();
        let mut order = Vec::with_capacity(m);
        let mut parent: Vec<Option<usize>> = vec![None; m];
        let mut seen = vec![false; m];
        // Iterative DFS, visiting neighbours in ascending index order for
        // determinism.
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            let mut children: Vec<usize> = self.adjacency[u]
                .iter()
                .copied()
                .filter(|&v| !seen[v])
                .collect();
            children.sort_unstable();
            // Push in reverse so the smallest-index child is visited first.
            for &v in children.iter().rev() {
                seen[v] = true;
                parent[v] = Some(u);
                stack.push(v);
            }
        }
        debug_assert_eq!(order.len(), m, "tree must be connected");
        Ok(RootedTree {
            tree: self.clone(),
            root,
            order,
            parent,
        })
    }

    /// Contracts the `e`-th edge: its two endpoints are replaced by a single
    /// node whose bag is the union of their bags.
    ///
    /// Contracting an edge of a valid join tree always yields a valid join
    /// tree (the running intersection property is preserved).  This is the
    /// basic move of the greedy schema-coarsening used by `ajd-core`'s
    /// discovery module, and of the inductive constructions in the paper's
    /// proofs (merging a leaf into its parent is the special case where one
    /// endpoint is a leaf).
    pub fn contract_edge(&self, e: usize) -> Result<JoinTree> {
        if e >= self.edges.len() {
            return Err(RelationError::SchemaMismatch {
                detail: format!("edge index {e} out of range ({} edges)", self.edges.len()),
            });
        }
        let (u, v) = self.edges[e];
        let mut new_bags = Vec::with_capacity(self.num_nodes() - 1);
        let mut remap = vec![usize::MAX; self.num_nodes()];
        for (i, slot) in remap.iter_mut().enumerate() {
            if i == v {
                continue;
            }
            *slot = new_bags.len();
            if i == u {
                new_bags.push(self.bags[u].union(&self.bags[v]));
            } else {
                new_bags.push(self.bags[i].clone());
            }
        }
        remap[v] = remap[u];
        let new_edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .enumerate()
            .filter(|&(idx, _)| idx != e)
            .map(|(_, &(a, b))| (remap[a], remap[b]))
            .collect();
        JoinTree::new(new_bags, new_edges)
    }

    /// Merges the bag of a leaf node into its (unique) neighbour, producing
    /// the smaller join tree `T'` used in the inductive arguments of
    /// Propositions 3.1 and 5.1.
    ///
    /// Returns an error if `leaf` is not a leaf or the tree has a single
    /// node.
    pub fn merge_leaf_into_parent(&self, leaf: usize) -> Result<JoinTree> {
        if self.num_nodes() <= 1 {
            return Err(RelationError::EmptyInput("cannot merge the only bag"));
        }
        if self.adjacency[leaf].len() != 1 {
            return Err(RelationError::SchemaMismatch {
                detail: format!("node {leaf} is not a leaf"),
            });
        }
        let parent = self.adjacency[leaf][0];
        let mut new_bags = Vec::with_capacity(self.num_nodes() - 1);
        // Map old indices to new indices.
        let mut remap = vec![usize::MAX; self.num_nodes()];
        for (i, slot) in remap.iter_mut().enumerate() {
            if i == leaf {
                continue;
            }
            *slot = new_bags.len();
            if i == parent {
                new_bags.push(self.bags[i].union(&self.bags[leaf]));
            } else {
                new_bags.push(self.bags[i].clone());
            }
        }
        let new_edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| u != leaf && v != leaf)
            .map(|&(u, v)| (remap[u], remap[v]))
            .collect();
        JoinTree::new(new_bags, new_edges)
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "JoinTree ({} bags):", self.num_nodes())?;
        for (i, b) in self.bags.iter().enumerate() {
            writeln!(f, "  u{i}: {b}")?;
        }
        for &(u, v) in &self.edges {
            writeln!(
                f,
                "  u{u} -- u{v}   sep {}",
                self.bags[u].intersection(&self.bags[v])
            )?;
        }
        Ok(())
    }
}

/// A join tree rooted at a node, with a fixed depth-first enumeration
/// `u₁,…,u_m` of its nodes (the paper's Section 2.3 view).
#[derive(Debug, Clone)]
pub struct RootedTree {
    tree: JoinTree,
    root: usize,
    /// DFS pre-order of node indices; `order[0] == root`.
    order: Vec<usize>,
    /// Parent of each node in the rooted tree (`None` for the root).
    parent: Vec<Option<usize>>,
}

impl RootedTree {
    /// The underlying unrooted join tree.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes `m`.
    pub fn num_nodes(&self) -> usize {
        self.order.len()
    }

    /// The DFS pre-order `u₁,…,u_m` (as node indices).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Parent of a node (by node index), `None` for the root.
    pub fn parent_of(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// The bag `Ωᵢ` of the `i`-th node in DFS order (1-based position
    /// `i ∈ [1, m]`, matching the paper's indexing).
    pub fn bag_at(&self, i: usize) -> &AttrSet {
        self.tree.bag(self.order[i - 1])
    }

    /// The separator `Δᵢ = χ(parent(uᵢ)) ∩ χ(uᵢ)` for position `i ∈ [2, m]`.
    pub fn delta(&self, i: usize) -> AttrSet {
        let node = self.order[i - 1];
        let p = self.parent[node].expect("delta is defined only for non-root positions");
        self.tree.bag(p).intersection(self.tree.bag(node))
    }

    /// Prefix union `Ω_{1:i} = ∪_{ℓ=1..i} Ω_ℓ` (1-based, `i ∈ [1, m]`).
    pub fn prefix_union(&self, i: usize) -> AttrSet {
        self.order[..i]
            .iter()
            .fold(AttrSet::empty(), |acc, &u| acc.union(self.tree.bag(u)))
    }

    /// Suffix union `Ω_{i:m} = ∪_{ℓ=i..m} Ω_ℓ` (1-based, `i ∈ [1, m]`).
    pub fn suffix_union(&self, i: usize) -> AttrSet {
        self.order[i - 1..]
            .iter()
            .fold(AttrSet::empty(), |acc, &u| acc.union(self.tree.bag(u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn path_tree() -> JoinTree {
        JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap()
    }

    #[test]
    fn construction_validates_edge_count_and_indices() {
        assert!(JoinTree::new(vec![], vec![]).is_err());
        assert!(JoinTree::new(vec![bag(&[0])], vec![(0, 0)]).is_err());
        assert!(JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![]).is_err());
        assert!(JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 5)]).is_err());
        assert!(JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).is_ok());
    }

    #[test]
    fn disconnected_edges_rejected() {
        // 4 nodes, 3 edges but one node is attached twice and another left out.
        let bags = vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3]), bag(&[3, 4])];
        let r = JoinTree::new(bags, vec![(0, 1), (1, 2), (0, 2)]);
        assert!(r.is_err());
    }

    #[test]
    fn rip_violation_rejected() {
        // Attribute 0 appears in the two end bags but not in the middle bag.
        let bags = vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 0])];
        let r = JoinTree::new(bags, vec![(0, 1), (1, 2)]);
        assert!(r.is_err());
    }

    #[test]
    fn path_and_star_builders() {
        let t = path_tree();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.separator(0), bag(&[1]));
        assert_eq!(t.separator(1), bag(&[2]));

        let s = JoinTree::star(vec![bag(&[0, 1, 2]), bag(&[0, 3]), bag(&[1, 4])]).unwrap();
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.neighbours(0).len(), 2);
    }

    #[test]
    fn mvd_tree_has_constant_separator() {
        let lhs = bag(&[0]);
        let parts = vec![bag(&[1]), bag(&[2]), bag(&[3])];
        let t = JoinTree::from_mvd_parts(&lhs, &parts).unwrap();
        assert_eq!(t.num_nodes(), 3);
        for e in 0..t.num_edges() {
            assert_eq!(t.separator(e), lhs);
        }
        assert!(JoinTree::from_mvd_parts(&lhs, &parts[..1]).is_err());
    }

    #[test]
    fn attributes_and_schema() {
        let t = path_tree();
        assert_eq!(t.attributes(), bag(&[0, 1, 2, 3]));
        assert_eq!(t.schema().len(), 3);
    }

    #[test]
    fn edge_split_partitions_attributes() {
        let t = path_tree();
        let (left, right) = t.edge_split(1); // edge between {1,2} and {2,3}
        assert_eq!(left, bag(&[0, 1, 2]));
        assert_eq!(right, bag(&[2, 3]));
        assert_eq!(left.union(&right), t.attributes());
    }

    #[test]
    fn rooted_order_and_separators() {
        let t = path_tree();
        let r = t.rooted(0).unwrap();
        assert_eq!(r.order(), &[0, 1, 2]);
        assert_eq!(r.parent_of(0), None);
        assert_eq!(r.parent_of(1), Some(0));
        assert_eq!(r.parent_of(2), Some(1));
        assert_eq!(r.bag_at(1), &bag(&[0, 1]));
        assert_eq!(r.delta(2), bag(&[1]));
        assert_eq!(r.delta(3), bag(&[2]));
        assert_eq!(r.prefix_union(2), bag(&[0, 1, 2]));
        assert_eq!(r.suffix_union(2), bag(&[1, 2, 3]));
        assert_eq!(r.suffix_union(1), t.attributes());
        assert!(t.rooted(7).is_err());
    }

    #[test]
    fn rooted_from_other_root() {
        let t = path_tree();
        let r = t.rooted(2).unwrap();
        assert_eq!(r.order()[0], 2);
        assert_eq!(r.num_nodes(), 3);
        // The separator of the node entered second is still the edge separator.
        assert_eq!(r.delta(2), bag(&[2]));
    }

    #[test]
    fn running_intersection_delta_equals_prefix_intersection() {
        // Property stated right before Theorem 2.2:
        // Δ_i = Ω_{1:(i-1)} ∩ Ω_i.
        let t = JoinTree::star(vec![
            bag(&[0, 1, 2]),
            bag(&[0, 3]),
            bag(&[2, 4]),
            bag(&[1, 5]),
        ])
        .unwrap();
        let r = t.rooted(0).unwrap();
        for i in 2..=r.num_nodes() {
            let delta = r.delta(i);
            let prefix = r.prefix_union(i - 1);
            let bag_i = r.bag_at(i).clone();
            assert_eq!(delta, prefix.intersection(&bag_i));
        }
    }

    #[test]
    fn merge_leaf_into_parent_shrinks_tree() {
        let t = path_tree();
        let merged = t.merge_leaf_into_parent(2).unwrap();
        assert_eq!(merged.num_nodes(), 2);
        assert!(merged.bags().iter().any(|b| *b == bag(&[1, 2, 3])));
        assert!(merged.check_running_intersection());
        // Node 1 is internal, not a leaf.
        assert!(t.merge_leaf_into_parent(1).is_err());
        let single = JoinTree::new(vec![bag(&[0])], vec![]).unwrap();
        assert!(single.merge_leaf_into_parent(0).is_err());
    }

    #[test]
    fn contract_edge_merges_endpoint_bags() {
        let t = path_tree();
        let c = t.contract_edge(0).unwrap();
        assert_eq!(c.num_nodes(), 2);
        assert!(c.bags().iter().any(|b| *b == bag(&[0, 1, 2])));
        assert!(c.check_running_intersection());
        // Contracting the remaining edge yields a single bag over everything.
        let c2 = c.contract_edge(0).unwrap();
        assert_eq!(c2.num_nodes(), 1);
        assert_eq!(c2.bag(0), &bag(&[0, 1, 2, 3]));
        assert!(t.contract_edge(5).is_err());
    }

    #[test]
    fn contract_edge_on_star_preserves_validity() {
        let t = JoinTree::star(vec![
            bag(&[0, 1, 2]),
            bag(&[0, 3]),
            bag(&[2, 4]),
            bag(&[1, 5]),
        ])
        .unwrap();
        for e in 0..t.num_edges() {
            let c = t.contract_edge(e).unwrap();
            assert_eq!(c.num_nodes(), t.num_nodes() - 1);
            assert!(c.check_running_intersection());
            assert_eq!(c.attributes(), t.attributes());
        }
    }

    #[test]
    fn display_shows_bags_and_separators() {
        let t = path_tree();
        let s = format!("{t}");
        assert!(s.contains("u0"));
        assert!(s.contains("sep"));
    }
}
