//! Experiment `lem41_lb` — Lemma 4.1 on random relations.
//!
//! For relations drawn from the random relation model and a variety of
//! acyclic schemas, the deterministic bound `J(T) ≤ log(1 + ρ(R,S))` must
//! hold for every instance.  We report the distribution of the slack
//! `log(1+ρ) − J ≥ 0` and the (always zero) violation rate.

use ajd_bench::harness::{parallel_trials, ExperimentArgs};
use ajd_bench::stats::{fraction_where, Summary};
use ajd_bench::table::{f, Table};
use ajd_core::BatchAnalyzer;
use ajd_jointree::JoinTree;
use ajd_random::{ProductDomain, RandomRelationModel};
use ajd_relation::AttrSet;

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

fn main() {
    let args = ExperimentArgs::from_env();
    let sizes: Vec<u64> = if args.quick {
        vec![64, 512]
    } else {
        vec![32, 64, 128, 256, 512, 1024]
    };
    let trees = [
        (
            "path-2attr-bags",
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
        ),
        (
            "star-2attr-bags",
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ),
        (
            "independence",
            JoinTree::path(vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])]).unwrap(),
        ),
        (
            "two-big-bags",
            JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        ),
    ];
    let model = RandomRelationModel::new(ProductDomain::new(vec![8, 8, 8, 8]).unwrap());

    let mut table = Table::new(
        "Lemma 4.1 on the random relation model, dims = [8,8,8,8] (nats)",
        &[
            "tree",
            "N",
            "trials",
            "J_mean",
            "log1p_rho_mean",
            "slack_mean",
            "slack_min",
            "violations",
        ],
    );

    // For each size, every tree is evaluated on the *same* sampled
    // relations (the trial seed does not depend on the tree), so all four
    // analyses of a trial run through one shared BatchAnalyzer cache.
    let mut cells: Vec<Vec<Vec<(f64, f64)>>> = vec![Vec::new(); trees.len()];
    for &n in &sizes {
        let per_trial = parallel_trials(args.trials, args.seed ^ n, |_, rng| {
            let r = model.sample(rng, n).expect("N within domain");
            // Trials are already parallel; keep the batch single-threaded.
            let batch = BatchAnalyzer::new(&r).with_threads(1);
            trees
                .iter()
                .map(|(_, tree)| {
                    let rep = batch.analyze(tree).expect("analysis");
                    (rep.j_measure, rep.log1p_rho)
                })
                .collect::<Vec<_>>()
        });
        for (t, cell) in cells.iter_mut().enumerate() {
            cell.push(per_trial.iter().map(|trial| trial[t]).collect());
        }
    }
    for ((name, _), cell) in trees.iter().zip(&cells) {
        for (rows, &n) in cell.iter().zip(&sizes) {
            let slacks: Vec<f64> = rows.iter().map(|(j, l)| l - j).collect();
            let js: Vec<f64> = rows.iter().map(|(j, _)| *j).collect();
            let ls: Vec<f64> = rows.iter().map(|(_, l)| *l).collect();
            let violation_rate = fraction_where(&slacks, |&s| s < -1e-9);
            table.push_row(vec![
                name.to_string(),
                n.to_string(),
                rows.len().to_string(),
                f(Summary::of(&js).mean),
                f(Summary::of(&ls).mean),
                f(Summary::of(&slacks).mean),
                f(Summary::of(&slacks).min),
                format!("{violation_rate:.3}"),
            ]);
        }
    }

    table.emit(args.csv_dir.as_deref(), "lem41_lb");
    println!(
        "Paper's shape: violations must be 0.000 everywhere (the bound is deterministic);\n\
         the slack shrinks as N approaches the full domain (the relation becomes closer to a product)."
    );
}
