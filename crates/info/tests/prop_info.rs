//! Property-based tests of the Shannon-information inequalities the paper's
//! arguments rest on, evaluated on empirical distributions of random
//! relations.

use ajd_info::{
    conditional_entropy, conditional_mutual_information, entropy, j_measure, kl_divergence_to_tree,
    mutual_information,
};
use ajd_jointree::JoinTree;
use ajd_relation::{AttrId, AttrSet, Relation, Value};
use proptest::prelude::*;

fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 1..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

fn bag(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 0 ≤ H(Y) ≤ log(number of distinct Y-values) ≤ log N.
    #[test]
    fn entropy_bounds(r in relation_strategy(3, 5, 50)) {
        for attrs in [bag(&[0]), bag(&[0, 1]), bag(&[0, 1, 2])] {
            let h = entropy(&r, &attrs).unwrap();
            let groups = r.group_counts(&attrs).unwrap().num_groups() as f64;
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= groups.ln() + 1e-9);
            prop_assert!(h <= (r.len() as f64).ln() + 1e-9);
        }
    }

    /// Monotonicity and sub-additivity: H(A) ≤ H(AB) ≤ H(A) + H(B).
    #[test]
    fn entropy_monotone_and_subadditive(r in relation_strategy(3, 5, 50)) {
        let ha = entropy(&r, &bag(&[0])).unwrap();
        let hb = entropy(&r, &bag(&[1])).unwrap();
        let hab = entropy(&r, &bag(&[0, 1])).unwrap();
        prop_assert!(ha <= hab + 1e-9);
        prop_assert!(hb <= hab + 1e-9);
        prop_assert!(hab <= ha + hb + 1e-9);
    }

    /// Conditioning reduces entropy: 0 ≤ H(A|B) ≤ H(A).
    #[test]
    fn conditioning_reduces_entropy(r in relation_strategy(3, 4, 50)) {
        let ha = entropy(&r, &bag(&[0])).unwrap();
        let ha_given_b = conditional_entropy(&r, &bag(&[0]), &bag(&[1])).unwrap();
        let ha_given_bc = conditional_entropy(&r, &bag(&[0]), &bag(&[1, 2])).unwrap();
        prop_assert!(ha_given_b >= -1e-9);
        prop_assert!(ha_given_b <= ha + 1e-9);
        // More conditioning reduces entropy further.
        prop_assert!(ha_given_bc <= ha_given_b + 1e-9);
    }

    /// Mutual information identities: I(A;B) = H(A) − H(A|B) ≥ 0, symmetric,
    /// and I(A;A) = H(A).
    #[test]
    fn mutual_information_identities(r in relation_strategy(2, 5, 50)) {
        let a = bag(&[0]);
        let b = bag(&[1]);
        let iab = mutual_information(&r, &a, &b).unwrap();
        let iba = mutual_information(&r, &b, &a).unwrap();
        let ha = entropy(&r, &a).unwrap();
        let hab = conditional_entropy(&r, &a, &b).unwrap();
        prop_assert!(iab >= -1e-9);
        prop_assert!((iab - iba).abs() < 1e-9);
        prop_assert!((iab - (ha - hab)).abs() < 1e-9);
        let iaa = mutual_information(&r, &a, &a).unwrap();
        prop_assert!((iaa - ha).abs() < 1e-9);
    }

    /// Chain rule: I(A;BC) = I(A;B) + I(A;C|B).
    #[test]
    fn mutual_information_chain_rule(r in relation_strategy(3, 4, 50)) {
        let a = bag(&[0]);
        let b = bag(&[1]);
        let c = bag(&[2]);
        let lhs = mutual_information(&r, &a, &b.union(&c)).unwrap();
        let rhs = mutual_information(&r, &a, &b).unwrap()
            + conditional_mutual_information(&r, &a, &c, &b).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// The J-measure of any join tree is non-negative and equals the
    /// KL-divergence to the tree factorisation (Theorem 3.2) — here checked
    /// on *multiset* relations too, where tuples carry multiplicities.
    #[test]
    fn j_measure_nonnegative_and_equals_kl_on_multisets(r in relation_strategy(3, 4, 60)) {
        let trees = [
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2])]).unwrap(),
            JoinTree::path(vec![bag(&[0]), bag(&[1]), bag(&[2])]).unwrap(),
        ];
        for tree in trees {
            let j = j_measure(&r, &tree).unwrap();
            let kl = kl_divergence_to_tree(&r, &tree).unwrap();
            prop_assert!(j >= -1e-9);
            prop_assert!((j - kl).abs() < 1e-9 * (1.0 + j.abs()));
        }
    }
}
