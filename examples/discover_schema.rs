//! Approximate acyclic-schema discovery on a noisy dataset.
//!
//! Run with `cargo run --release --example discover_schema`.
//!
//! The relation's attributes form a noisy Markov chain
//! `X₀ → X₁ → X₂ → X₃ → X₄`, so the "true" acyclic schema is the path of
//! consecutive pairs.  The miner first recovers that structure from pairwise
//! mutual information (Chow–Liu), then coarsens it until the J-measure drops
//! below a budget, and we check what the certified and realised losses look
//! like for each intermediate schema.

use ajd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let relation = generators::markov_chain_relation(&mut rng, 5, 8, 4_000, 0.15, true)
        .expect("generator parameters are valid");
    println!(
        "dataset: {} tuples over {} attributes (noisy Markov chain, 15% noise)",
        relation.len(),
        relation.arity()
    );
    // One analyzer for every budget: mining sweeps and loss evaluations all
    // draw from the same grouping cache.
    let analyzer = Analyzer::new(&relation);

    for (label, threshold) in [
        ("strict (J <= 1e-6)", 1e-6),
        ("moderate (J <= 0.05)", 0.05),
        ("loose (J <= 0.5)", 0.5),
    ] {
        let mined = analyzer
            .mine(DiscoveryConfig {
                j_threshold: threshold,
                ..DiscoveryConfig::default()
            })
            .expect("mining succeeds");
        let realised = analyzer.loss(&mined.tree).expect("loss of mined schema");
        println!("\n=== budget: {label} ===");
        println!(
            "  bags: {:?}",
            mined
                .bags()
                .iter()
                .map(|b| format!("{b}"))
                .collect::<Vec<_>>()
        );
        println!("  J-measure          : {:.5} nats", mined.j_measure);
        println!(
            "  certified rho >=   : {:.5}   (Lemma 4.1)",
            mined.rho_lower_bound
        );
        println!("  realised  rho      : {:.5}", realised);
        assert!(mined.rho_lower_bound <= realised + 1e-6);
    }

    // The Chow-Liu starting point, for reference.
    let chow_liu = SchemaMiner::default()
        .chow_liu_tree(&relation)
        .expect("chow-liu tree");
    println!(
        "\nChow-Liu starting schema: {:?}",
        chow_liu
            .bags()
            .iter()
            .map(|b| format!("{b}"))
            .collect::<Vec<_>>()
    );
    println!("(low noise keeps consecutive attributes together, recovering the Markov-chain path)");
}
