//! Property-based tests of the acyclic-schema machinery: GYO against the
//! running intersection property, supports, and join-size counting.

use ajd_jointree::mvd::{ordered_support, support};
use ajd_jointree::{acyclic_join, count_acyclic_join, gyo_reduction, JoinTree};
use ajd_relation::{AttrId, AttrSet, Relation, Value};
use proptest::prelude::*;

fn bag_of(ids: &[u32]) -> AttrSet {
    AttrSet::from_ids(ids.iter().copied())
}

/// Strategy: a random tree over `n` attribute-nodes given as a parent
/// pointer for each node > 0; the bags are the edges `{Xᵢ, X_parent(i)}`.
/// Such a schema is always acyclic, so GYO must accept it.
fn tree_edge_schema(n: usize) -> impl Strategy<Value = Vec<AttrSet>> {
    prop::collection::vec(0usize..n, n - 1).prop_map(move |parents| {
        (1..n)
            .map(|i| {
                let p = parents[i - 1] % i; // parent strictly before i
                bag_of(&[i as u32, p as u32])
            })
            .collect()
    })
}

/// Strategy: a relation over `arity` attributes.
fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 1..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            Relation::from_rows(schema, &rows)
                .expect("generated rows have the right arity")
                .distinct()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every edge-set of a tree over attributes forms an acyclic schema, and
    /// the join tree GYO builds for it satisfies the running intersection
    /// property, covers all attributes, and has one bag per input edge.
    #[test]
    fn gyo_accepts_tree_edge_schemas(bags in tree_edge_schema(6)) {
        let out = gyo_reduction(&bags);
        prop_assert!(out.is_acyclic());
        let tree = out.into_tree().unwrap();
        prop_assert!(tree.check_running_intersection());
        prop_assert_eq!(tree.num_nodes(), bags.len());
        let all: AttrSet = bags.iter().fold(AttrSet::empty(), |acc, b| acc.union(b));
        prop_assert_eq!(tree.attributes(), all);
    }

    /// Adding an edge that closes a cycle over singleton overlaps makes the
    /// schema cyclic (GYO rejects it) unless some bag covers the cycle.
    #[test]
    fn gyo_rejects_simple_cycles(k in 3usize..7) {
        let mut bags: Vec<AttrSet> = (0..k)
            .map(|i| bag_of(&[i as u32, ((i + 1) % k) as u32]))
            .collect();
        prop_assert!(!gyo_reduction(&bags).is_acyclic());
        // Covering the whole cycle with one big bag restores acyclicity.
        bags.push(bag_of(&(0..k as u32).collect::<Vec<_>>()));
        prop_assert!(gyo_reduction(&bags).is_acyclic());
    }

    /// Supports: the edge-split MVDs of a join tree partition the attribute
    /// set (their two sides cover everything and intersect exactly in the
    /// separator), and the ordered support has m-1 entries for every root.
    #[test]
    fn support_structure(bags in tree_edge_schema(6)) {
        let tree = JoinTree::from_acyclic_schema(&bags).unwrap();
        for mvd in support(&tree) {
            prop_assert_eq!(mvd.attributes(), tree.attributes());
            prop_assert_eq!(mvd.left.intersection(&mvd.right), mvd.lhs.clone());
        }
        for root in 0..tree.num_nodes() {
            let rooted = tree.rooted(root).unwrap();
            let ord = ordered_support(&rooted);
            prop_assert_eq!(ord.len(), tree.num_nodes() - 1);
            for mvd in ord {
                prop_assert_eq!(mvd.attributes(), tree.attributes());
            }
        }
    }

    /// The rooted view is consistent for every root: Δᵢ equals the
    /// intersection of the bag with the union of all earlier bags
    /// (running intersection property, Section 2.3).
    #[test]
    fn rooted_delta_equals_prefix_intersection(bags in tree_edge_schema(7)) {
        let tree = JoinTree::from_acyclic_schema(&bags).unwrap();
        for root in 0..tree.num_nodes() {
            let rooted = tree.rooted(root).unwrap();
            for i in 2..=rooted.num_nodes() {
                let delta = rooted.delta(i);
                let prefix = rooted.prefix_union(i - 1);
                let bag_i = rooted.bag_at(i).clone();
                prop_assert_eq!(delta, prefix.intersection(&bag_i));
            }
        }
    }

    /// Join-size counting equals the materialised acyclic join for random
    /// relations over random tree-shaped schemas on 4 attributes.
    #[test]
    fn counting_matches_materialisation(
        bags in tree_edge_schema(4),
        r in relation_strategy(4, 4, 40),
    ) {
        let tree = JoinTree::from_acyclic_schema(&bags).unwrap();
        let counted = count_acyclic_join(&r, &tree).unwrap();
        let materialised = acyclic_join(&r, &tree).unwrap();
        prop_assert_eq!(counted, materialised.len() as u128);
        prop_assert!(counted >= r.project(&tree.attributes()).unwrap().len() as u128);
    }

    /// Join-size counting on **multiset** relations (duplicates kept) still
    /// matches the materialised join of the set-semantic bag projections —
    /// the observational contract of the columnar grouping kernel.
    #[test]
    fn counting_matches_materialisation_on_multisets(
        bags in tree_edge_schema(4),
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 4), 1..40),
    ) {
        let schema: Vec<AttrId> = (0..4u32).map(AttrId::from).collect();
        // No dedup: duplicates exercise the multiset grouping path.
        let r = Relation::from_rows(schema, &rows).unwrap();
        let tree = JoinTree::from_acyclic_schema(&bags).unwrap();
        let counted = count_acyclic_join(&r, &tree).unwrap();
        let materialised = acyclic_join(&r, &tree).unwrap();
        prop_assert_eq!(counted, materialised.len() as u128);
    }

    /// Contracting any edge of a valid join tree keeps it valid and only
    /// merges the two endpoint bags.
    #[test]
    fn edge_contraction_preserves_validity(bags in tree_edge_schema(6), which in 0usize..5) {
        let tree = JoinTree::from_acyclic_schema(&bags).unwrap();
        prop_assume!(tree.num_edges() > 0);
        let e = which % tree.num_edges();
        let contracted = tree.contract_edge(e).unwrap();
        prop_assert_eq!(contracted.num_nodes(), tree.num_nodes() - 1);
        prop_assert!(contracted.check_running_intersection());
        prop_assert_eq!(contracted.attributes(), tree.attributes());
    }
}
