//! # ajd-core
//!
//! The user-facing API of the reproduction of *"Quantifying the Loss of
//! Acyclic Join Dependencies"* (Kenig & Weinberger, PODS 2023).
//!
//! This crate ties the substrates together:
//!
//! * [`analysis`] — given a relation `R` and an acyclic schema / join tree,
//!   compute in one pass everything the paper talks about: the exact loss
//!   `ρ(R,S)` (via join-tree counting), the J-measure, the KL-divergence of
//!   Theorem 3.2, the per-MVD decomposition of the support, the
//!   deterministic lower bound of Lemma 4.1, the deterministic Proposition
//!   5.1 bound, and (on request) the probabilistic Theorem 5.1 /
//!   Proposition 5.3 upper bounds.
//! * [`batch`] — [`BatchAnalyzer`]: evaluate *many* join trees over one
//!   relation through a single shared [`ajd_relation::AnalysisContext`],
//!   fanning the per-tree work out over `std::thread::scope` workers.  The
//!   trees of a sweep overlap heavily (bags, separators, `H(Ω)`), so the
//!   shared cache pays for each grouping of `R` exactly once.
//! * [`discovery`] — *approximate acyclic schema discovery*, the motivating
//!   application (Kenig et al., SIGMOD 2020): a Chow–Liu style spanning-tree
//!   miner over pairwise mutual information, followed by greedy bag merging
//!   to drive the J-measure below a target, plus exhaustive best-MVD search
//!   for small schemas.  All candidate scoring runs through a shared
//!   context; pass a multi-threaded [`BatchAnalyzer`] to
//!   `SchemaMiner::mine_with` to evaluate each round's contractions in
//!   parallel.
//!
//! ```
//! use ajd_core::analysis::LossAnalysis;
//! use ajd_jointree::JoinTree;
//! use ajd_random::generators::bijection_relation;
//! use ajd_relation::{AttrId, AttrSet};
//!
//! // Example 4.1 of the paper.
//! let r = bijection_relation(32);
//! let tree = JoinTree::from_acyclic_schema(&[
//!     AttrSet::singleton(AttrId(0)),
//!     AttrSet::singleton(AttrId(1)),
//! ]).unwrap();
//! let report = LossAnalysis::new(&r, &tree).unwrap().report();
//! assert_eq!(report.spurious, 32 * 32 - 32);
//! // Lemma 4.1 is tight on this family: J = log(1 + rho).
//! assert!((report.j_measure - report.log1p_rho).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod discovery;

pub use analysis::{LossAnalysis, LossReport, MvdLoss, ProbabilisticBounds};
pub use batch::BatchAnalyzer;
pub use discovery::{DiscoveryConfig, MinedSchema, SchemaMiner};
