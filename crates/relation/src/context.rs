//! Shared-computation analysis context and the [`GroupSource`] abstraction.
//!
//! Every information measure in the paper (the entropies of eq. 4, the
//! J-measure of eq. 7, the KL-divergence of Theorem 3.2, the per-MVD
//! conditional mutual informations and losses of eq. 28) reduces to *group
//! counts* of the same relation `R` on various attribute subsets `Y ⊆ Ω`,
//! and every loss computation reduces to *projections* of `R` onto bags.
//! Evaluating many measures — or many candidate join trees, as schema
//! discovery does — therefore recomputes the same groupings over and over.
//!
//! Two pieces live here:
//!
//! * [`GroupSource`] — the capability every measure in the workspace is
//!   written against: "give me group counts / interned group ids / a
//!   projection for this attribute set".  A plain [`Relation`] implements it
//!   by computing fresh (the one-shot path); an [`AnalysisContext`]
//!   implements it by memoizing (the shared path).  Because both
//!   implementations call the *same* columnar kernel, a measure computed
//!   through a context is **bit-identical** to its uncached counterpart — a
//!   property the workspace's tests assert.
//! * [`AnalysisContext`] — the memoization layer, in the spirit of the
//!   lattice-level entropy caching of Kenig et al. (*Mining Approximate
//!   Acyclic Schemes from Relations*, 2019): caches of [`GroupCounts`],
//!   interned [`GroupIds`] and set-semantic projections keyed by
//!   [`AttrSet`], **striped** across several `RwLock`-guarded shards (so
//!   writes on unrelated attribute sets do not contend) with **per-key
//!   single-flight** misses: when several threads race on the same cold
//!   `AttrSet`, exactly one computes the grouping and the rest block on
//!   that entry alone — never on the whole map, and never recomputing the
//!   same expensive grouping N times.  Misses are computed through the
//!   context's [`ThreadBudget`] (the chunked parallel kernel), which keeps
//!   results bit-identical to the serial path at any budget.

use crate::attr::{AttrId, AttrSet};
use crate::error::{RelationError, Result};
use crate::hash::{FxHashMap, FxHasher};
use crate::parallel::ThreadBudget;
use crate::relation::{GroupCounts, GroupIds, Relation};
use crate::sketch::KmvSketch;
use ajd_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ajd_sync::{OnceSlot, RwLock};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The grouping capability every measure is written against.
///
/// Functions in `ajd-info`, `ajd-jointree` and `ajd-core` are generic over a
/// `GroupSource`, so one implementation serves the convenience path
/// (`entropy(&r, …)` — compute from scratch), the shared path
/// (`entropy(&ctx, …)` or `Analyzer` methods — answer from the cache) *and*
/// the sharded path (`entropy(&sharded, …)` — shard-local grouping with a
/// shard-order merge).  This replaces the former `foo` / `foo_ctx` function
/// pairs.
///
/// A source is *not* required to hold its rows in one flat buffer — a
/// [`crate::ShardedRelation`] has no single backing [`Relation`] — so the
/// trait exposes the schema-level facts the measure stack needs (schema,
/// row count, active domain sizes) instead of a backing-relation accessor.
pub trait GroupSource {
    /// The column order of the source (its schema).
    fn schema(&self) -> &[AttrId];

    /// Number of tuples `N = |R|` (with multiplicity for multisets).
    fn num_rows(&self) -> usize;

    /// Size of the active domain of an attribute: the number of distinct
    /// values it takes in the source (`d_A = |Π_A(R)|` in the paper).
    fn active_domain_size(&self, attr: AttrId) -> Result<usize>;

    /// Multiplicities of the distinct `attrs`-projections of the relation's
    /// tuples (see [`Relation::group_counts`]).
    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>>;

    /// Interned group keys for `attrs` (see [`GroupIds`]).
    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>>;

    /// Set-semantic projection `Π_attrs(R)`.
    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>>;

    /// The attribute set of the source (schema as a set).
    fn attrs(&self) -> AttrSet {
        AttrSet::from_slice(self.schema())
    }

    /// Number of attributes per tuple.
    fn arity(&self) -> usize {
        self.schema().len()
    }

    /// `true` if the source holds no tuples.
    fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Positions (column indices) of each attribute of `attrs` in the
    /// source's column order, in the order of `attrs` (ascending id).
    fn attr_positions(&self, attrs: &AttrSet) -> Result<Vec<usize>> {
        let schema = self.schema();
        attrs
            .iter()
            .map(|a| {
                schema
                    .iter()
                    .position(|&b| b == a)
                    .ok_or(RelationError::UnknownAttribute(a))
            })
            .collect()
    }
}

/// The budget-aware grouping kernel a memoizing [`AnalysisContext`] computes
/// its cache misses through.
///
/// Implemented by the two storage layouts of the workspace — the flat
/// [`Relation`] (chunked row-scan kernel) and the [`crate::ShardedRelation`]
/// (shard-local grouping + shard-order merge).  Both are **bit-identical**
/// to the serial flat kernel at any budget, so a context over either layout
/// serves the same values.
pub trait GroupKernel: GroupSource + Sync {
    /// [`GroupSource::group_counts`] computed under a [`ThreadBudget`].
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts>;

    /// [`GroupSource::group_ids`] computed under a [`ThreadBudget`].
    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds>;

    /// [`GroupSource::projection`] computed under a [`ThreadBudget`].
    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation>;

    /// Materialises the rows at the given **sorted, strictly increasing**
    /// global row indices as a fresh flat [`Relation`].
    ///
    /// This is the estimation tier's sampled-read kernel: a seeded
    /// without-replacement index draw is sorted ascending and gathered here.
    /// Because the result is rebuilt from *decoded* values in global row
    /// order, its dictionaries follow first-appearance order of the sampled
    /// rows alone — the same `(source rows, indices)` therefore yields a
    /// bit-identical sample relation from a flat [`Relation`] and from any
    /// sharding of it (the same argument as
    /// [`crate::ShardedRelation::collect`]).
    ///
    /// Errors with [`crate::RelationError::InvalidParameter`] if the indices
    /// are out of range, unsorted, or contain duplicates.
    fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation>;

    /// Streams the `attrs`-projection of every row through a seeded
    /// [`KmvSketch`] with `k` minimum values, without materialising a group
    /// table.
    ///
    /// The sketch hashes decoded values and its merge is order-independent,
    /// so flat and sharded sources produce **identical** sketches for the
    /// same `(rows, attrs, k, seed)`.
    fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch>;
}

impl GroupSource for Relation {
    fn schema(&self) -> &[AttrId] {
        Relation::schema(self)
    }

    fn num_rows(&self) -> usize {
        self.len()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        Relation::active_domain_size(self, attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        Relation::group_counts(self, attrs).map(Arc::new)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        Relation::group_ids(self, attrs).map(Arc::new)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        Relation::project(self, attrs).map(Arc::new)
    }
}

impl GroupKernel for Relation {
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        Relation::group_counts_with(self, attrs, budget)
    }

    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        Relation::group_ids_with(self, attrs, budget)
    }

    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        Relation::project_with(self, attrs, budget)
    }

    fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        Relation::gather_rows(self, sorted_rows)
    }

    fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        Relation::distinct_sketch(self, attrs, k, seed)
    }
}

impl<S: GroupSource + ?Sized> GroupSource for &S {
    fn schema(&self) -> &[AttrId] {
        (**self).schema()
    }

    fn num_rows(&self) -> usize {
        (**self).num_rows()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        (**self).active_domain_size(attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        (**self).group_counts(attrs)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        (**self).group_ids(attrs)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        (**self).projection(attrs)
    }
}

impl<S: GroupKernel + ?Sized> GroupKernel for &S {
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        (**self).group_counts_with(attrs, budget)
    }

    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        (**self).group_ids_with(attrs, budget)
    }

    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        (**self).project_with(attrs, budget)
    }

    fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        (**self).gather_rows(sorted_rows)
    }

    fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        (**self).distinct_sketch(attrs, k, seed)
    }
}

impl<S: GroupSource + ?Sized> GroupSource for Arc<S> {
    fn schema(&self) -> &[AttrId] {
        (**self).schema()
    }

    fn num_rows(&self) -> usize {
        (**self).num_rows()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        (**self).active_domain_size(attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        (**self).group_counts(attrs)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        (**self).group_ids(attrs)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        (**self).projection(attrs)
    }
}

impl<S: GroupKernel + Send + ?Sized> GroupKernel for Arc<S> {
    fn group_counts_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupCounts> {
        (**self).group_counts_with(attrs, budget)
    }

    fn group_ids_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<GroupIds> {
        (**self).group_ids_with(attrs, budget)
    }

    fn project_with(&self, attrs: &AttrSet, budget: ThreadBudget) -> Result<Relation> {
        (**self).project_with(attrs, budget)
    }

    fn gather_rows(&self, sorted_rows: &[u64]) -> Result<Relation> {
        (**self).gather_rows(sorted_rows)
    }

    fn distinct_sketch(&self, attrs: &AttrSet, k: usize, seed: u64) -> Result<KmvSketch> {
        (**self).distinct_sketch(attrs, k, seed)
    }
}

/// A point-in-time snapshot of a context's cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cache.
    pub hits: u64,
    /// Lookups that had to compute (and then memoize) their value.
    pub misses: u64,
    /// Number of memoized [`GroupCounts`] entries.
    pub group_count_entries: usize,
    /// Number of memoized [`GroupIds`] entries.
    pub group_id_entries: usize,
    /// Number of memoized projection entries.
    pub projection_entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Number of shards each cache map is striped across (a power of two; the
/// shard is picked by the key's Fx hash).  Striping means two writers
/// memoizing *different* attribute sets rarely touch the same lock.
const CACHE_STRIPES: usize = 16;

/// One memoization slot: filled exactly once, by the single thread that
/// computes the value (the "leader"); racing threads block on this slot —
/// not on the shard map — until the leader finishes.
type Slot<T> = Arc<OnceSlot<Result<Arc<T>>>>;

/// A striped, single-flight memoization map keyed by [`AttrSet`].
#[derive(Debug)]
struct StripedCache<T> {
    shards: Vec<RwLock<FxHashMap<AttrSet, Slot<T>>>>,
}

impl<T> StripedCache<T> {
    fn new() -> Self {
        StripedCache {
            shards: (0..CACHE_STRIPES)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, attrs: &AttrSet) -> &RwLock<FxHashMap<AttrSet, Slot<T>>> {
        let mut h = FxHasher::default();
        attrs.hash(&mut h);
        &self.shards[(h.finish() as usize) & (CACHE_STRIPES - 1)]
    }

    /// Number of *completed, successful* entries (in-flight slots and
    /// removed error slots do not count).
    fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| slot.get().is_some_and(|r| r.is_ok()))
                    .count()
            })
            .sum()
    }
}

/// Memoized group counts, interned group ids and projections of one
/// relation — the shared-computation substrate of the measurement stack.
///
/// A context **owns** its source, which in practice is a cheap handle: a
/// `&Relation` borrow for one-shot analysis, or an `Arc<ShardedRelation>`
/// snapshot (see [`crate::ShardedStore`]) pinning one epoch of a live,
/// append-only relation — the context's merged-result caches are then
/// exactly the per-epoch tier of the two-tier incremental design (this
/// context caches merged results for *its* snapshot's epoch; the snapshot's
/// shards carry their own per-shard tables that survive into later epochs).
/// A context is cheap to create (empty caches); it pays for itself as soon
/// as two measures — or two candidate join trees — touch the same attribute
/// subset.  It is `Sync`: `ajd-core`'s
/// `BatchAnalyzer` shares one context across `std::thread::scope` workers,
/// and concurrent misses on the same attribute set are **single-flight** —
/// exactly one thread computes, the others block on that entry and receive
/// the same `Arc`.
///
/// Misses are computed through the context's [`ThreadBudget`] (defaulting
/// to the machine's available parallelism), which the chunked kernel keeps
/// bit-identical to serial results.
///
/// Most callers never construct one directly: `ajd_core::Analyzer` owns a
/// context and routes every measure through it.
///
/// ```
/// use ajd_relation::{AnalysisContext, AttrId, AttrSet, GroupSource, Relation};
///
/// let r = Relation::from_rows(vec![AttrId(0), AttrId(1)], &[
///     &[0, 0][..], &[0, 1][..], &[1, 0][..],
/// ]).unwrap();
/// let ctx = AnalysisContext::new(&r);
/// let y = AttrSet::singleton(AttrId(0));
/// let first = ctx.group_counts(&y).unwrap();
/// let second = ctx.group_counts(&y).unwrap();      // served from cache
/// assert_eq!(first.num_groups(), second.num_groups());
/// assert_eq!(ctx.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct AnalysisContext<S = Relation> {
    source: S,
    group_counts: StripedCache<GroupCounts>,
    group_ids: StripedCache<GroupIds>,
    projections: StripedCache<Relation>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Thread budget for computing misses, as a raw count (atomic so a
    /// shared context's budget can be retuned through an `Arc`).
    threads: AtomicUsize,
}

impl<S: GroupKernel> AnalysisContext<S> {
    /// Creates an empty context over `src` with the default
    /// [`ThreadBudget`] (the machine's available parallelism).
    ///
    /// `src` is taken by value, but sources are handles in practice:
    /// `AnalysisContext::new(&r)` builds a borrowing context (as before)
    /// and `AnalysisContext::new(store.snapshot())` an owning one over an
    /// `Arc` snapshot that lives for as long as the context does.
    pub fn new(src: S) -> Self {
        Self::with_thread_budget(src, ThreadBudget::default())
    }

    /// Creates an empty context over `src` that computes misses under the
    /// given [`ThreadBudget`].
    pub fn with_thread_budget(src: S, budget: ThreadBudget) -> Self {
        AnalysisContext {
            source: src,
            group_counts: StripedCache::new(),
            group_ids: StripedCache::new(),
            projections: StripedCache::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            threads: AtomicUsize::new(budget.get()),
        }
    }

    /// The grouping source (flat [`Relation`], [`crate::ShardedRelation`]
    /// or `Arc` snapshot of one) this context memoizes computations over.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// The thread budget used to compute cache misses.
    pub fn thread_budget(&self) -> ThreadBudget {
        ThreadBudget::new(self.threads.load(Ordering::Relaxed))
    }

    /// Retunes the miss-computation thread budget (affects future misses;
    /// values already cached are untouched — results are bit-identical at
    /// any budget anyway).
    pub fn set_thread_budget(&self, budget: ThreadBudget) {
        self.threads.store(budget.get(), Ordering::Relaxed);
    }

    /// Memoized [`Relation::group_counts`]: multiplicities of the distinct
    /// `attrs`-projections of the relation's tuples.
    pub fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        self.group_counts_budgeted(attrs, self.thread_budget())
    }

    /// [`AnalysisContext::group_counts`] with an explicit per-call kernel
    /// budget overriding the context's standing one — how callers that
    /// split a total budget across layers (e.g. a batch sweep giving each
    /// fan-out worker its share) pass the share down without mutating the
    /// shared context.  The cached value is identical either way.
    pub fn group_counts_budgeted(
        &self,
        attrs: &AttrSet,
        budget: ThreadBudget,
    ) -> Result<Arc<GroupCounts>> {
        self.memoized(&self.group_counts, attrs, |r, a| {
            r.group_counts_with(a, budget).map(Arc::new)
        })
    }

    /// Memoized interned group keys (see [`GroupIds`]) for `attrs`.
    pub fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        self.group_ids_budgeted(attrs, self.thread_budget())
    }

    /// [`AnalysisContext::group_ids`] with an explicit per-call kernel
    /// budget (see [`AnalysisContext::group_counts_budgeted`]).
    pub fn group_ids_budgeted(
        &self,
        attrs: &AttrSet,
        budget: ThreadBudget,
    ) -> Result<Arc<GroupIds>> {
        self.memoized(&self.group_ids, attrs, |r, a| {
            r.group_ids_with(a, budget).map(Arc::new)
        })
    }

    /// Memoized set-semantic projection `Π_attrs(R)`.
    pub fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        self.projection_budgeted(attrs, self.thread_budget())
    }

    /// [`AnalysisContext::projection`] with an explicit per-call kernel
    /// budget (see [`AnalysisContext::group_counts_budgeted`]).
    pub fn projection_budgeted(
        &self,
        attrs: &AttrSet,
        budget: ThreadBudget,
    ) -> Result<Arc<Relation>> {
        self.memoized(&self.projections, attrs, |r, a| {
            r.project_with(a, budget).map(Arc::new)
        })
    }

    /// Snapshot of cache sizes and hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            group_count_entries: self.group_counts.entries(),
            group_id_entries: self.group_ids.entries(),
            projection_entries: self.projections.entries(),
        }
    }

    /// Striped single-flight memoization.
    ///
    /// Lookup takes a read lock on the key's shard only; a cold key
    /// installs an empty [`Slot`] under a brief shard write lock and then
    /// races on the slot's [`OnceSlot`] **outside any map lock** — exactly
    /// one thread (the leader) runs `compute`, every other thread blocks on
    /// that slot alone and receives the leader's `Arc`.  Errors are not
    /// memoized: the leader removes the failed slot so later calls retry
    /// (threads already blocked on it still observe the error).
    fn memoized<T>(
        &self,
        cache: &StripedCache<T>,
        attrs: &AttrSet,
        compute: impl FnOnce(&S, &AttrSet) -> Result<Arc<T>>,
    ) -> Result<Arc<T>> {
        let shard = cache.shard(attrs);
        let slot: Slot<T> = {
            let fast = shard.read().get(attrs).cloned();
            match fast {
                Some(slot) => slot,
                None => Arc::clone(shard.write().entry(attrs.clone()).or_default()),
            }
        };
        if let Some(done) = slot.get() {
            if done.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return done.clone();
        }
        let mut led = false;
        let result = slot
            .get_or_init(|| {
                led = true;
                let out = compute(&self.source, attrs);
                if out.is_ok() {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                out
            })
            .clone();
        if !led {
            // Either the fast path raced with a completing leader or this
            // thread blocked on the in-flight slot: served without work.
            if result.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        } else if result.is_err() {
            // Do not memoize failures; drop the slot (only if it is still
            // ours — a retry may have installed a fresh one meanwhile).
            let mut guard = shard.write();
            if guard.get(attrs).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                guard.remove(attrs);
            }
        }
        result
    }
}

#[cfg(ajd_model)]
impl<S: GroupKernel> AnalysisContext<S> {
    /// **Seeded mutant, model builds only**: a group-counts lookup with the
    /// single-flight slot *removed* — cold keys go check-then-compute
    /// straight against the shard map, so two racers can both observe the
    /// key cold and both run the kernel.  Exists solely so the model suite
    /// can prove the explorer catches this bug class (the miss counter
    /// then exceeds the distinct-key count); never compiled into normal
    /// builds.
    pub fn mutant_group_counts_no_single_flight(
        &self,
        attrs: &AttrSet,
    ) -> Result<Arc<GroupCounts>> {
        let shard = self.group_counts.shard(attrs);
        if let Some(slot) = shard.read().get(attrs).cloned() {
            if let Some(done) = slot.get() {
                if done.is_ok() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                return done.clone();
            }
        }
        // MUTANT: compute unconditionally instead of contending on a slot.
        let budget = self.thread_budget();
        let out = self.source.group_counts_with(attrs, budget).map(Arc::new);
        if out.is_ok() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let slot: Slot<GroupCounts> = Arc::new(OnceSlot::new());
        let _ = slot.set(out.clone());
        shard.write().insert(attrs.clone(), slot);
        out
    }
}

impl<'a> AnalysisContext<&'a Relation> {
    /// The flat relation this context memoizes computations over (for
    /// contexts over a [`crate::ShardedRelation`], use
    /// [`AnalysisContext::source`]).
    pub fn relation(&self) -> &'a Relation {
        self.source
    }
}

impl<S: GroupKernel> GroupSource for AnalysisContext<S> {
    fn schema(&self) -> &[AttrId] {
        self.source.schema()
    }

    fn num_rows(&self) -> usize {
        self.source.num_rows()
    }

    fn active_domain_size(&self, attr: AttrId) -> Result<usize> {
        self.source.active_domain_size(attr)
    }

    fn group_counts(&self, attrs: &AttrSet) -> Result<Arc<GroupCounts>> {
        AnalysisContext::group_counts(self, attrs)
    }

    fn group_ids(&self, attrs: &AttrSet) -> Result<Arc<GroupIds>> {
        AnalysisContext::group_ids(self, attrs)
    }

    fn projection(&self, attrs: &AttrSet) -> Result<Arc<Relation>> {
        AnalysisContext::projection(self, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrId;
    use crate::relation::Value;

    fn sample() -> Relation {
        Relation::from_rows(
            vec![AttrId(0), AttrId(1), AttrId(2)],
            &[
                &[0, 0, 0][..],
                &[0, 1, 0][..],
                &[1, 0, 1][..],
                &[1, 1, 1][..],
                &[0, 0, 0][..], // duplicate row: multiset
            ],
        )
        .unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn group_counts_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[0, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let cached = ctx.group_counts(&attrs).unwrap();
            let direct = r.group_counts(&attrs).unwrap();
            assert_eq!(cached.total, direct.total);
            assert_eq!(cached.num_groups(), direct.num_groups());
            for (key, count) in direct.iter() {
                assert_eq!(cached.count_of(key), count);
            }
        }
    }

    #[test]
    fn group_ids_agree_with_group_counts() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[1, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let ids = ctx.group_ids(&attrs).unwrap();
            let counts = ctx.group_counts(&attrs).unwrap();
            assert_eq!(ids.num_groups(), counts.num_groups());
            assert_eq!(ids.total() as u128, counts.total);
            assert_eq!(ids.row_ids().len(), r.len());
            assert_eq!(ids.counts().iter().sum::<u64>(), r.len() as u64);
            // Rows with equal projections share an id; the id's count matches.
            for (row, &id) in r.iter_rows().zip(ids.row_ids()) {
                let positions = r.attr_positions(&attrs).unwrap();
                let key: Vec<Value> = positions.iter().map(|&p| row[p]).collect();
                assert_eq!(ids.counts()[id as usize], counts.count_of(&key));
            }
        }
    }

    #[test]
    fn map_to_recovers_coarser_groups() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let fine = ctx.group_ids(&bag(&[0, 1, 2])).unwrap();
        for coarse_attrs in [bag(&[0]), bag(&[1, 2]), AttrSet::empty()] {
            let coarse = ctx.group_ids(&coarse_attrs).unwrap();
            let map = fine.map_to(&coarse);
            assert_eq!(map.len(), fine.num_groups());
            // Per row: mapping the fine id must land on the row's coarse id.
            for (&f, &c) in fine.row_ids().iter().zip(coarse.row_ids()) {
                assert_eq!(map[f as usize], c);
            }
        }
    }

    #[test]
    fn projections_match_uncached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1]);
        let cached = ctx.projection(&attrs).unwrap();
        let direct = r.project(&attrs).unwrap();
        assert!(cached.set_eq(&direct));
        assert_eq!(cached.len(), direct.len());
    }

    #[test]
    fn caches_are_shared_and_counted() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let a = ctx.group_counts(&bag(&[0])).unwrap();
        let b = ctx.group_counts(&bag(&[0])).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = ctx.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.group_count_entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_is_not_cached() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        assert!(ctx.group_counts(&bag(&[9])).is_err());
        assert!(ctx.group_ids(&bag(&[9])).is_err());
        assert!(ctx.projection(&bag(&[9])).is_err());
        assert_eq!(ctx.stats().group_count_entries, 0);
    }

    #[test]
    fn group_source_is_object_agnostic() {
        // The same generic function body works over a Relation (fresh
        // computation) and a context (memoized), with identical results.
        fn groups_via<S: GroupSource>(src: &S, attrs: &AttrSet) -> usize {
            src.group_counts(attrs).unwrap().num_groups()
        }
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1]);
        assert_eq!(groups_via(&r, &attrs), groups_via(&ctx, &attrs));
        // Blanket impl: references to sources are sources too.
        assert_eq!(groups_via(&&r, &attrs), groups_via(&&ctx, &attrs));
        assert_eq!(GroupSource::num_rows(&ctx), r.len());
        assert_eq!(GroupSource::schema(&ctx), r.schema());
    }

    #[test]
    fn concurrent_readers_converge() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        let sets: Vec<AttrSet> = vec![bag(&[0]), bag(&[1]), bag(&[0, 1]), bag(&[0, 1, 2])];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for attrs in &sets {
                        let c = ctx.group_counts(attrs).unwrap();
                        assert_eq!(c.total, r.len() as u128);
                        let ids = ctx.group_ids(attrs).unwrap();
                        assert_eq!(ids.num_groups(), c.num_groups());
                    }
                });
            }
        });
        assert_eq!(ctx.stats().group_count_entries, sets.len());
        assert_eq!(ctx.stats().group_id_entries, sets.len());
    }

    /// A relation large enough that a grouping takes measurable time, so
    /// pre-fix the 8-thread race below would reliably observe duplicated
    /// misses.
    fn stress_relation() -> Relation {
        let mut r = Relation::new(vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)]).unwrap();
        let mut x = 1u32;
        for _ in 0..20_000 {
            // Deterministic xorshift-style scramble; four correlated columns.
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            r.push_row(&[x % 37, (x >> 8) % 23, (x >> 16) % 11, x % 5])
                .unwrap();
        }
        r
    }

    /// Satellite regression: 8 threads hammering one *cold* context on the
    /// same attribute sets must produce exactly one miss per distinct set —
    /// the single-flight entry guarantees at most one thread ever computes
    /// a given `AttrSet` (pre-fix, every racing thread recomputed the same
    /// grouping and `misses` was a multiple of the set count).
    #[test]
    fn cold_context_races_observe_one_miss_per_distinct_set() {
        let r = stress_relation();
        let ctx = AnalysisContext::new(&r);
        let sets: Vec<AttrSet> = vec![
            bag(&[0, 1]),
            bag(&[1, 2]),
            bag(&[2, 3]),
            bag(&[0, 2]),
            bag(&[1, 3]),
            bag(&[0, 1, 2, 3]),
        ];
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait(); // release all threads into the cold cache at once
                    for attrs in &sets {
                        let c = ctx.group_counts(attrs).unwrap();
                        assert_eq!(c.total, r.len() as u128);
                    }
                });
            }
        });
        let stats = ctx.stats();
        assert_eq!(
            stats.misses,
            sets.len() as u64,
            "every distinct attribute set must be computed exactly once"
        );
        assert_eq!(stats.hits, (8 - 1) * sets.len() as u64);
        assert_eq!(stats.group_count_entries, sets.len());
    }

    /// The single-flight guarantee holds per cache: group counts, group ids
    /// and projections each compute once per distinct set under the same
    /// 8-thread hammering.
    #[test]
    fn cold_context_races_single_flight_across_all_caches() {
        let r = stress_relation();
        let ctx = AnalysisContext::new(&r);
        let sets: Vec<AttrSet> = vec![bag(&[0, 1]), bag(&[2, 3]), bag(&[0, 3])];
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    for attrs in &sets {
                        ctx.group_counts(attrs).unwrap();
                        ctx.group_ids(attrs).unwrap();
                        ctx.projection(attrs).unwrap();
                    }
                });
            }
        });
        let stats = ctx.stats();
        assert_eq!(stats.misses, 3 * sets.len() as u64);
        assert_eq!(stats.group_count_entries, sets.len());
        assert_eq!(stats.group_id_entries, sets.len());
        assert_eq!(stats.projection_entries, sets.len());
    }

    /// Racing threads on one cold set all receive the *same* `Arc` (the
    /// leader's), not clones of equal values.
    #[test]
    fn racing_threads_share_the_leaders_arc() {
        let r = stress_relation();
        let ctx = AnalysisContext::new(&r);
        let attrs = bag(&[0, 1, 2]);
        let barrier = std::sync::Barrier::new(4);
        let arcs: Vec<Arc<GroupCounts>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        ctx.group_counts(&attrs).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in arcs.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(ctx.stats().misses, 1);
    }

    /// Errors are not memoized: a failed lookup leaves no entry behind and
    /// the next call retries (and fails again, deterministically).
    #[test]
    fn errors_retry_instead_of_poisoning() {
        let r = sample();
        let ctx = AnalysisContext::new(&r);
        for _ in 0..2 {
            assert!(ctx.group_counts(&bag(&[9])).is_err());
            assert_eq!(ctx.stats().group_count_entries, 0);
            assert_eq!(ctx.stats().misses, 0);
        }
        // A successful lookup after the failures works normally.
        assert!(ctx.group_counts(&bag(&[0])).is_ok());
        assert_eq!(ctx.stats().group_count_entries, 1);
    }

    /// The context budget knob is observable and retunable, and a non-serial
    /// budget yields bit-identical groupings (the determinism contract).
    #[test]
    fn thread_budget_is_tunable_and_result_invariant() {
        let r = stress_relation();
        let serial_ctx = AnalysisContext::with_thread_budget(&r, ThreadBudget::serial());
        assert!(serial_ctx.thread_budget().is_serial());
        let par_ctx = AnalysisContext::with_thread_budget(&r, ThreadBudget::new(4));
        assert_eq!(par_ctx.thread_budget().get(), 4);
        for attrs in [bag(&[0, 1]), bag(&[0, 1, 2, 3])] {
            let a = serial_ctx.group_ids(&attrs).unwrap();
            let b = par_ctx.group_ids(&attrs).unwrap();
            assert_eq!(a.row_ids(), b.row_ids());
            assert_eq!(a.counts(), b.counts());
            assert_eq!(a.group_codes(), b.group_codes());
        }
        par_ctx.set_thread_budget(ThreadBudget::serial());
        assert!(par_ctx.thread_budget().is_serial());
    }

    #[test]
    fn empty_relation_contexts_work() {
        let r = Relation::new(vec![AttrId(0)]).unwrap();
        let ctx = AnalysisContext::new(&r);
        let ids = ctx.group_ids(&bag(&[0])).unwrap();
        assert_eq!(ids.num_groups(), 0);
        assert_eq!(ids.total(), 0);
        assert_eq!(ctx.projection(&bag(&[0])).unwrap().len(), 0);
    }
}
