//! Entropies of the empirical distribution of a relation.
//!
//! For a relation instance `R` with `N` tuples over attributes `Ω`, the
//! empirical distribution assigns probability `K/N` to every tuple with
//! multiplicity `K` (Section 2.2).  The entropy of an attribute subset
//! `Y ⊆ Ω` is the Shannon entropy of the marginal of that distribution on
//! `Y`; for counts `c₁,…,c_g` of the distinct `Y`-projections it equals
//!
//! ```text
//! H(Y) = ln N − (1/N) Σᵢ cᵢ ln cᵢ      (in nats)
//! ```
//!
//! which is the numerically stable form used here (one logarithm per
//! distinct group, no divisions inside the loop).
//!
//! Every function is generic over [`GroupSource`]: pass `&Relation` to
//! compute marginals from scratch, or any shared source (an
//! `AnalysisContext`, via `ajd_core::Analyzer`) to answer them from a
//! memoized cache — one code path, bit-identical results.

use ajd_relation::{AttrSet, GroupCounts, GroupSource, Relation, Result};

/// Entropy (in nats) of the marginal empirical distribution of `src`'s
/// relation on the attribute set `attrs`.
///
/// `H(∅) = 0` by convention (all tuples project to the same empty tuple).
pub fn entropy<S: GroupSource>(src: &S, attrs: &AttrSet) -> Result<f64> {
    let counts = src.group_counts(attrs)?;
    Ok(entropy_from_counts(&counts))
}

/// Entropy (in nats) computed from pre-grouped counts.
pub fn entropy_from_counts(counts: &GroupCounts) -> f64 {
    entropy_of_count_values(counts.iter().map(|(_, c)| c), counts.total)
}

/// Entropy (in nats) of the full empirical distribution of `r` (i.e. over
/// all of its attributes).  For a *set* relation this is exactly `ln N`.
pub fn entropy_of_relation(r: &Relation) -> Result<f64> {
    entropy(r, &r.attrs())
}

/// Conditional entropy `H(A | B) = H(A ∪ B) − H(B)` (in nats).
pub fn conditional_entropy<S: GroupSource>(src: &S, a: &AttrSet, b: &AttrSet) -> Result<f64> {
    let hab = entropy(src, &a.union(b))?;
    let hb = entropy(src, b)?;
    Ok(hab - hb)
}

/// Entropy from an iterator of positive counts with the given total.
///
/// Exposed for the statistics of the random relation model (where counts
/// may come from histograms rather than relations).  `total` is `u128` to
/// match [`GroupCounts::total`], which never saturates.
pub fn entropy_of_count_values<I: IntoIterator<Item = u64>>(counts: I, total: u128) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let mut acc = 0.0f64;
    for c in counts {
        if c > 0 {
            let cf = c as f64;
            acc += cf * cf.ln();
        }
    }
    n.ln() - acc / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::{AnalysisContext, AttrId, Relation};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn entropy_of_uniform_marginal_is_log_of_support() {
        // Attribute 0 takes 4 values, each twice.
        let rows: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i % 4, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let h = entropy(&r, &bag(&[0])).unwrap();
        assert!((h - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_full_set_relation_is_ln_n() {
        let rows: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i, 2 * i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let h = entropy_of_relation(&r).unwrap();
        assert!((h - (10.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_attribute_is_zero() {
        let rows: Vec<Vec<u32>> = (0..5u32).map(|i| vec![7, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert!(entropy(&r, &bag(&[0])).unwrap().abs() < 1e-12);
    }

    #[test]
    fn entropy_of_empty_attribute_set_is_zero() {
        let rows: Vec<Vec<u32>> = (0..5u32).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert!(entropy(&r, &AttrSet::empty()).unwrap().abs() < 1e-12);
    }

    #[test]
    fn entropy_is_monotone_under_adding_attributes() {
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 0], &[1, 0, 1], &[1, 1, 0], &[2, 0, 1]],
        );
        let h0 = entropy(&r, &bag(&[0])).unwrap();
        let h01 = entropy(&r, &bag(&[0, 1])).unwrap();
        let h012 = entropy(&r, &bag(&[0, 1, 2])).unwrap();
        assert!(h0 <= h01 + 1e-12);
        assert!(h01 <= h012 + 1e-12);
    }

    #[test]
    fn entropy_bounded_by_log_of_active_domain() {
        let r = rel(&[0, 1], &[&[0, 0], &[0, 1], &[1, 0], &[3, 3], &[3, 0]]);
        let h = entropy(&r, &bag(&[0])).unwrap();
        let d = r.active_domain_size(AttrId(0)).unwrap() as f64;
        assert!(h <= d.ln() + 1e-12);
    }

    #[test]
    fn skewed_distribution_has_lower_entropy_than_uniform() {
        // 6 tuples: value 0 appears 5 times, value 1 once.
        let rows: Vec<Vec<u32>> = vec![
            vec![0, 0],
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![0, 4],
            vec![1, 5],
        ];
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let h = entropy(&r, &bag(&[0])).unwrap();
        // Uniform over 2 values would be ln 2.
        assert!(h > 0.0);
        assert!(h < (2.0f64).ln());
        // Exact: H = ln 6 - (5 ln 5)/6
        let expected = (6.0f64).ln() - 5.0 * (5.0f64).ln() / 6.0;
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_basic_identities() {
        let r = rel(&[0, 1], &[&[0, 0], &[0, 1], &[1, 0], &[1, 1]]);
        // A and B independent and uniform: H(A|B) = H(A) = ln 2.
        let hab = conditional_entropy(&r, &bag(&[0]), &bag(&[1])).unwrap();
        assert!((hab - (2.0f64).ln()).abs() < 1e-12);
        // H(A|A) = 0.
        let haa = conditional_entropy(&r, &bag(&[0]), &bag(&[0])).unwrap();
        assert!(haa.abs() < 1e-12);
    }

    #[test]
    fn functional_dependency_gives_zero_conditional_entropy() {
        // B = A + 1 (mod 3): B is a function of A, so H(B|A) = 0.
        let rows: Vec<Vec<u32>> = (0..9u32).map(|i| vec![i % 3, (i % 3 + 1) % 3]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let h = conditional_entropy(&r, &bag(&[1]), &bag(&[0])).unwrap();
        assert!(h.abs() < 1e-12);
    }

    #[test]
    fn entropy_handles_multiset_relations() {
        // Duplicated tuples: empirical distribution is no longer uniform over
        // distinct tuples.
        let r = rel(&[0], &[&[0], &[0], &[0], &[1]]);
        let h = entropy_of_relation(&r).unwrap();
        let expected = (4.0f64).ln() - (3.0 * (3.0f64).ln()) / 4.0;
        assert!((h - expected).abs() < 1e-12);
    }

    #[test]
    fn context_and_relation_sources_are_bit_identical() {
        let r = rel(
            &[0, 1, 2],
            &[&[0, 0, 0], &[0, 1, 0], &[1, 0, 1], &[1, 1, 0], &[2, 0, 1]],
        );
        let ctx = AnalysisContext::new(&r);
        for attrs in [bag(&[0]), bag(&[0, 2]), bag(&[0, 1, 2]), AttrSet::empty()] {
            let fresh = entropy(&r, &attrs).unwrap();
            let cached = entropy(&ctx, &attrs).unwrap();
            let cached_again = entropy(&ctx, &attrs).unwrap();
            assert_eq!(fresh.to_bits(), cached.to_bits());
            assert_eq!(fresh.to_bits(), cached_again.to_bits());
        }
        assert!(ctx.stats().hits > 0);
    }

    #[test]
    fn entropy_of_counts_helper_edge_cases() {
        assert_eq!(entropy_of_count_values([], 0), 0.0);
        assert!(entropy_of_count_values([5], 5).abs() < 1e-12);
        let h = entropy_of_count_values([1, 1, 1, 1], 4);
        assert!((h - (4.0f64).ln()).abs() < 1e-12);
        // Zero counts are ignored.
        let h2 = entropy_of_count_values([2, 0, 2], 4);
        assert!((h2 - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_errors() {
        let r = rel(&[0], &[&[0]]);
        assert!(entropy(&r, &bag(&[5])).is_err());
    }
}
