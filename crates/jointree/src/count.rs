//! Acyclic join sizes and loss via message passing.
//!
//! Computing the loss `ρ(R,S) = (|⋈ᵢ R[Ωᵢ]| − |R|)/|R|` (eq. 1) requires the
//! cardinality of the acyclic join of all bag projections.  Materialising
//! that join is exponential in the worst case (e.g. Example 4.1 produces
//! `N²` tuples from `N`), but its *size* can be computed in time roughly
//! linear in the sizes of the projections by dynamic programming over the
//! join tree — the counting variant of Yannakakis' algorithm:
//!
//! 1. group `R` by every bag and every edge separator (dense interned ids
//!    from the columnar kernel — see [`ajd_relation::GroupIds`]);
//! 2. process nodes bottom-up (children before parents); each node assigns
//!    every distinct bag tuple a weight equal to the product of the counts
//!    its children report for the tuple's separator group;
//! 3. each node sends its parent a flat `Vec<u128>` message indexed by the
//!    separator's group ids;
//! 4. the total at the root is `|⋈ᵢ R[Ωᵢ]|`.
//!
//! Because every projection originates from the same relation `R`, no
//! semijoin reduction is needed: every partial assignment extends to at
//! least one full join result.
//!
//! Counts are accumulated in `u128` with **checked** arithmetic: already
//! for ten attributes with domain size 100 the cross-product join exceeds
//! `u64`, and a join beyond `u128` must fail loudly
//! ([`RelationError::CountOverflow`]) rather than clamp — a saturated count
//! would silently report a wrong loss `ρ`.
//!
//! Every function is generic over [`GroupSource`]: pass `&Relation` for a
//! self-contained one-shot computation, or a shared source (an
//! `AnalysisContext`, via `ajd_core::Analyzer`) so the groupings — which a
//! discovery sweep shares across many trees — are memoized.

use crate::tree::JoinTree;
use ajd_relation::join::natural_join_all;
use ajd_relation::{AttrSet, GroupSource, Relation, RelationError, Result};

/// Error for a join size that exceeds `u128`.
const OVERFLOW: RelationError = RelationError::CountOverflow("acyclic join size exceeds u128");

fn check_tree_covered(relation_attrs: &AttrSet, tree: &JoinTree) -> Result<()> {
    let tree_attrs = tree.attributes();
    if !tree_attrs.is_subset_of(relation_attrs) {
        return Err(RelationError::SchemaMismatch {
            detail: format!(
                "join tree attributes {tree_attrs} are not covered by the relation schema"
            ),
        });
    }
    Ok(())
}

/// Computes `|⋈ᵢ R[Ωᵢ]|` for the bags `Ωᵢ` of the join tree, without
/// materialising the join.
///
/// Runs the bottom-up dynamic program on **interned group ids**: each bag's
/// distinct projection tuples are the source's [`ajd_relation::GroupIds`]
/// groups, and the message a node sends its parent is a dense `Vec<u128>`
/// indexed by the separator's group ids — no per-tuple hashing, no key
/// allocation.  The id mappings (bag group → separator group) are recovered
/// from the per-row id vectors in one linear pass per edge.
///
/// Returns [`RelationError::CountOverflow`] if the exact join size exceeds
/// `u128`.
pub fn count_acyclic_join<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<u128> {
    check_tree_covered(&src.attrs(), tree)?;

    let bag_ids: Vec<_> = tree
        .bags()
        .iter()
        .map(|b| src.group_ids(b))
        .collect::<Result<_>>()?;

    let rooted = tree.rooted(0)?;
    let order = rooted.order().to_vec();
    let m = order.len();

    // One separator grouping per edge, shared by the two endpoints (fetched
    // once so the uncached path does not group each separator twice).
    let sep_ids: Vec<_> = (0..tree.num_edges())
        .map(|e| src.group_ids(&tree.separator(e)))
        .collect::<Result<_>>()?;
    // The edge connecting `node` to its parent, if any.
    let edge_of = |u: usize, v: usize| -> usize {
        tree.edges()
            .iter()
            .position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
            .expect("parent links follow tree edges")
    };

    // Message from each node to its parent: weight per separator group id.
    let mut messages: Vec<Option<Vec<u128>>> = vec![None; m];

    for &node in order.iter().rev() {
        let groups = bag_ids[node].num_groups();
        let children: Vec<usize> = (0..m)
            .filter(|&v| rooted.parent_of(v) == Some(node))
            .collect();

        // Weight of each distinct bag tuple: product of the children's
        // messages at the tuple's separator values.
        let mut weights: Vec<u128> = vec![1; groups];
        for &c in &children {
            let map = bag_ids[node].map_to(&sep_ids[edge_of(node, c)]);
            let msg = messages[c]
                .take()
                .expect("children are processed before parents");
            for (g, w) in weights.iter_mut().enumerate() {
                *w = w.checked_mul(msg[map[g] as usize]).ok_or(OVERFLOW)?;
            }
        }

        match rooted.parent_of(node) {
            Some(p) => {
                let sep = &sep_ids[edge_of(node, p)];
                let map = bag_ids[node].map_to(sep);
                let mut outgoing: Vec<u128> = vec![0; sep.num_groups()];
                for (g, &w) in weights.iter().enumerate() {
                    let slot = &mut outgoing[map[g] as usize];
                    *slot = slot.checked_add(w).ok_or(OVERFLOW)?;
                }
                messages[node] = Some(outgoing);
            }
            None => {
                let mut total: u128 = 0;
                for &w in &weights {
                    total = total.checked_add(w).ok_or(OVERFLOW)?;
                }
                return Ok(total);
            }
        }
    }
    unreachable!("the root is always processed last and returns")
}

/// The loss `ρ(R, S)` of eq. (1) for the acyclic schema defined by `tree`,
/// computed exactly via [`count_acyclic_join`].
///
/// The baseline is the number of distinct tuples of `R` projected onto the
/// tree's attributes — for a set relation whose attributes the tree covers
/// exactly (the paper's setting) this is `|R|`.  Bag projections are
/// set-semantic, so the join always contains that projection and the loss
/// is never negative, duplicates or not.
pub fn loss_acyclic<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<f64> {
    if src.is_empty() {
        return Err(RelationError::EmptyInput("relation for loss computation"));
    }
    let join_size = count_acyclic_join(src, tree)? as f64;
    let base = src.group_counts(&tree.attributes())?.num_groups() as f64;
    Ok((join_size - base) / base)
}

/// Materialises the acyclic join `⋈ᵢ R[Ωᵢ]` by joining the bag projections
/// along a depth-first traversal of the tree (a join order that never
/// produces dangling intermediate tuples).
///
/// Use [`count_acyclic_join`] when only the size is needed; the materialised
/// join can be exponentially larger than `R`.  Over a caching source the bag
/// projections come from the projection cache, so materialising the joins of
/// several trees over one relation re-projects nothing.
pub fn acyclic_join<S: GroupSource>(src: &S, tree: &JoinTree) -> Result<Relation> {
    let projections: Vec<_> = tree
        .bags()
        .iter()
        .map(|b| src.projection(b))
        .collect::<Result<_>>()?;
    let rooted = tree.rooted(0)?;
    let ordered: Vec<Relation> = rooted
        .order()
        .iter()
        .map(|&u| (*projections[u]).clone())
        .collect();
    natural_join_all(&ordered)
}

/// Reference implementation of the loss (eq. 1) that fully materialises the
/// join; used to validate [`loss_acyclic`] in tests and as the ablation
/// baseline in benchmarks.  Uses the same distinct-tuple baseline as
/// [`loss_acyclic`]; delegates to [`ajd_relation::join::loss_materialized`].
pub fn loss_materialized(r: &Relation, schema: &[AttrSet]) -> Result<f64> {
    ajd_relation::join::loss_materialized(r, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_relation::join::natural_join;
    use ajd_relation::{AnalysisContext, AttrId};

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        let s: Vec<AttrId> = schema.iter().map(|&i| AttrId(i)).collect();
        Relation::from_rows(s, rows).unwrap()
    }

    fn random_like_relation() -> Relation {
        // A fixed, irregular relation over 4 attributes.
        rel(
            &[0, 1, 2, 3],
            &[
                &[0, 0, 0, 0],
                &[0, 1, 0, 1],
                &[0, 1, 1, 0],
                &[1, 0, 1, 1],
                &[1, 1, 0, 0],
                &[2, 0, 0, 1],
                &[2, 2, 1, 1],
                &[2, 2, 2, 0],
            ],
        )
    }

    #[test]
    fn single_bag_tree_counts_projection() {
        let r = random_like_relation();
        let t = JoinTree::new(vec![bag(&[0, 1, 2, 3])], vec![]).unwrap();
        assert_eq!(count_acyclic_join(&r, &t).unwrap(), r.len() as u128);
        assert_eq!(loss_acyclic(&r, &t).unwrap(), 0.0);
    }

    #[test]
    fn bijection_relation_cross_product_count() {
        // Example 4.1: schema {{A},{B}} over the bijection relation.
        let n = 11u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let r = rel(&[0, 1], &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        assert_eq!(
            count_acyclic_join(&r, &t).unwrap(),
            (n as u128) * (n as u128)
        );
        let rho = loss_acyclic(&r, &t).unwrap();
        assert!((rho - (n as f64 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn count_matches_materialised_join_on_path_tree() {
        let r = random_like_relation();
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let counted = count_acyclic_join(&r, &t).unwrap();
        let materialised = acyclic_join(&r, &t).unwrap();
        assert_eq!(counted, materialised.len() as u128);
        assert!(r.is_subset_of(&materialised));
        let rho_tree = loss_acyclic(&r, &t).unwrap();
        let rho_mat = loss_materialized(&r, &t.schema()).unwrap();
        assert!((rho_tree - rho_mat).abs() < 1e-12);
    }

    #[test]
    fn count_matches_materialised_join_on_star_tree() {
        let r = random_like_relation();
        let t = JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap();
        let counted = count_acyclic_join(&r, &t).unwrap();
        let materialised = acyclic_join(&r, &t).unwrap();
        assert_eq!(counted, materialised.len() as u128);
    }

    #[test]
    fn lossless_decomposition_has_zero_loss() {
        // Build R as the join of two tables sharing attribute 1 -> the MVD holds.
        let left = rel(&[0, 1], &[&[0, 0], &[1, 0], &[2, 1]]);
        let right = rel(&[1, 2], &[&[0, 5], &[0, 6], &[1, 7]]);
        let r = natural_join(&left, &right).unwrap();
        let t = JoinTree::new(vec![bag(&[0, 1]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        assert_eq!(loss_acyclic(&r, &t).unwrap(), 0.0);
        assert_eq!(count_acyclic_join(&r, &t).unwrap(), r.len() as u128);
    }

    #[test]
    fn join_size_is_never_below_relation_size() {
        let r = random_like_relation();
        for t in [
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
            JoinTree::new(
                vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
                vec![(0, 1), (1, 2), (2, 3)],
            )
            .unwrap(),
        ] {
            let c = count_acyclic_join(&r, &t).unwrap();
            assert!(c >= r.len() as u128);
            assert!(loss_acyclic(&r, &t).unwrap() >= 0.0);
        }
    }

    #[test]
    fn tree_attributes_must_be_subset_of_relation() {
        let r = rel(&[0, 1], &[&[0, 0]]);
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 7])]).unwrap();
        assert!(count_acyclic_join(&r, &t).is_err());
    }

    #[test]
    fn empty_relation_loss_is_error() {
        let r = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        let t = JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap();
        assert!(loss_acyclic(&r, &t).is_err());
    }

    #[test]
    fn cached_count_matches_uncached_on_assorted_trees() {
        let r = random_like_relation();
        let ctx = AnalysisContext::new(&r);
        for t in [
            JoinTree::new(vec![bag(&[0, 1, 2, 3])], vec![]).unwrap(),
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
            JoinTree::new(
                vec![bag(&[0]), bag(&[1]), bag(&[2]), bag(&[3])],
                vec![(0, 1), (1, 2), (2, 3)],
            )
            .unwrap(),
            JoinTree::new(vec![bag(&[0, 1, 2]), bag(&[2, 3])], vec![(0, 1)]).unwrap(),
        ] {
            assert_eq!(
                count_acyclic_join(&ctx, &t).unwrap(),
                count_acyclic_join(&r, &t).unwrap(),
                "context and uncached counts disagree for {t}"
            );
            assert_eq!(
                loss_acyclic(&ctx, &t).unwrap(),
                loss_acyclic(&r, &t).unwrap()
            );
        }
        // The sweep above shares all grouping work through the context.
        assert!(ctx.stats().hits > 0);
    }

    #[test]
    fn cached_materialised_join_matches_uncached() {
        let r = random_like_relation();
        let ctx = AnalysisContext::new(&r);
        let trees = [
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ];
        for t in &trees {
            assert!(acyclic_join(&ctx, t)
                .unwrap()
                .set_eq(&acyclic_join(&r, t).unwrap()));
        }
        // Both trees project the shared relation through the same cache.
        assert!(ctx.stats().projection_entries > 0);
        assert!(ctx.stats().hits > 0);
    }

    #[test]
    fn count_works_when_tree_covers_a_strict_subset() {
        let r = random_like_relation();
        let ctx = AnalysisContext::new(&r);
        let t = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2])]).unwrap();
        assert_eq!(
            count_acyclic_join(&ctx, &t).unwrap(),
            count_acyclic_join(&r, &t).unwrap()
        );
    }

    /// Regression: join sizes beyond `u128` used to saturate silently
    /// (`saturating_mul`), making `loss_acyclic` report a wrong `ρ`; they
    /// must now surface as [`RelationError::CountOverflow`].
    #[test]
    fn count_overflow_is_an_error_not_a_clamp() {
        // 16 singleton bags over a 256-row "bijection" relation: the
        // cross-product join has 256^16 = 2^128 tuples, one past u128::MAX.
        let n = 256u32;
        let arity = 16usize;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i; arity]).collect();
        let schema: Vec<u32> = (0..arity as u32).collect();
        let r = rel(&schema, &rows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let bags: Vec<AttrSet> = (0..arity as u32).map(|i| bag(&[i])).collect();
        let edges: Vec<(usize, usize)> = (1..arity).map(|i| (i - 1, i)).collect();
        let t = JoinTree::new(bags, edges).unwrap();

        let err = count_acyclic_join(&r, &t).unwrap_err();
        assert!(matches!(err, RelationError::CountOverflow(_)), "{err}");
        let ctx = AnalysisContext::new(&r);
        let err = count_acyclic_join(&ctx, &t).unwrap_err();
        assert!(matches!(err, RelationError::CountOverflow(_)), "{err}");
        assert!(loss_acyclic(&r, &t).is_err());

        // One bag fewer stays within range and is computed exactly.
        let bags: Vec<AttrSet> = (0..15u32).map(|i| bag(&[i])).collect();
        let edges: Vec<(usize, usize)> = (1..15).map(|i| (i - 1, i)).collect();
        let t15 = JoinTree::new(bags, edges).unwrap();
        assert_eq!(
            count_acyclic_join(&r, &t15).unwrap(),
            (n as u128).pow(15),
            "15-bag count must still be exact"
        );
        assert_eq!(count_acyclic_join(&ctx, &t15).unwrap(), (n as u128).pow(15));
    }

    #[test]
    fn deep_tree_count_does_not_overflow_u64_semantics() {
        // 6 singleton bags over a bijection-style relation: exercises the
        // u128 accumulation paths and the path of singleton bags.
        let n = 20u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i; 6]).collect();
        let r = rel(
            &[0, 1, 2, 3, 4, 5],
            &rows.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let bags: Vec<AttrSet> = (0..6u32).map(|i| bag(&[i])).collect();
        let edges: Vec<(usize, usize)> = (1..6).map(|i| (i - 1, i)).collect();
        let t = JoinTree::new(bags, edges).unwrap();
        assert_eq!(count_acyclic_join(&r, &t).unwrap(), (n as u128).pow(6));
    }
}
