//! Lifting per-MVD bounds to a full acyclic schema
//! (Proposition 5.1 and Proposition 5.3).
//!
//! * Proposition 5.1 (deterministic):
//!   `J(R,S) ≤ Σ_{i=2}^{m} log(1 + ρ(R, φᵢ))`
//!   where `φᵢ` ranges over the ordered support of the join tree.  It follows
//!   from the chain-rule decomposition of `J` over the ordered support
//!   (Theorem 2.2) and Lemma 4.1 applied to each MVD separately.
//!
//!   Note that the *loss* itself does **not** compose this way: the naive
//!   analogue `log(1+ρ(R,S)) ≤ Σᵢ log(1+ρ(R,φᵢ))` is false in general (a
//!   9-tuple relation over a 3-bag star schema already violates it), which is
//!   precisely why the paper routes schema-level upper bounds through
//!   information measures and the random relation model (Proposition 5.3)
//!   rather than through per-MVD losses.
//! * Proposition 5.3 (high probability, via a union bound over the support):
//!   `log(1 + ρ(R,S)) ≤ Σᵢ I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ) + Σᵢ εᵢ`
//!   and, using Theorem 2.2, `≤ (m−1)·J(T) + Σᵢ εᵢ`,
//!   each with probability `1 − δ` when every `εᵢ` is instantiated at
//!   confidence `δ/(m−1)`.

use serde::{Deserialize, Serialize};

/// Proposition 5.1: upper bound on the J-measure `J(R,S)` from the per-MVD
/// losses of the ordered support (`ρ(R,φᵢ)` values).  Returns
/// `Σᵢ log(1 + ρ(R,φᵢ))` in nats.
pub fn prop51_j_bound(per_mvd_losses: &[f64]) -> f64 {
    per_mvd_losses
        .iter()
        .map(|&rho| {
            assert!(rho >= -1e-9, "per-MVD loss must be non-negative, got {rho}");
            rho.max(0.0).ln_1p()
        })
        .sum()
}

/// The two schema-level upper bounds of Proposition 5.3 on
/// `log(1 + ρ(R,S))`, in nats.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prop53Bound {
    /// `Σᵢ I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ) + Σᵢ εᵢ` — eq. (33).
    pub sum_cmi_bound: f64,
    /// `(m − 1)·J(T) + Σᵢ εᵢ` — eq. (34) (always ≥ `sum_cmi_bound` by
    /// Theorem 2.2).
    pub j_based_bound: f64,
    /// The total deviation `Σᵢ εᵢ` that was added.
    pub total_epsilon: f64,
    /// The confidence `1 − δ` at which the bound holds (after the union
    /// bound over the `m − 1` support MVDs).
    pub confidence: f64,
}

/// Proposition 5.3: combines the per-MVD conditional mutual informations and
/// deviation terms into schema-level bounds.
///
/// `per_mvd_cmi[i]` and `per_mvd_epsilon[i]` must refer to the same ordered
/// support MVD; `j_nats` is the J-measure of the tree; `delta` is the total
/// failure probability (each `εᵢ` is assumed to have been instantiated at
/// `δ/(m−1)` by the caller, e.g. via [`crate::thm51::epsilon_star`]).
pub fn prop53_schema_bound(
    per_mvd_cmi: &[f64],
    per_mvd_epsilon: &[f64],
    j_nats: f64,
    delta: f64,
) -> Prop53Bound {
    assert_eq!(
        per_mvd_cmi.len(),
        per_mvd_epsilon.len(),
        "one epsilon per support MVD"
    );
    assert!(delta > 0.0 && delta < 1.0);
    let m_minus_1 = per_mvd_cmi.len() as f64;
    let sum_cmi: f64 = per_mvd_cmi
        .iter()
        .map(|&c| {
            assert!(c >= -1e-9, "CMI must be non-negative");
            c.max(0.0)
        })
        .sum();
    let total_epsilon: f64 = per_mvd_epsilon
        .iter()
        .map(|&e| {
            assert!(e >= 0.0, "epsilon must be non-negative");
            e
        })
        .sum();
    Prop53Bound {
        sum_cmi_bound: sum_cmi + total_epsilon,
        j_based_bound: m_minus_1 * j_nats.max(0.0) + total_epsilon,
        total_epsilon,
        confidence: 1.0 - delta,
    }
}

/// Convenience form of eq. (34): an upper bound on `log(1+ρ(R,S))` from the
/// J-measure alone plus the per-MVD deviations:
/// `(m − 1)·J + Σ εᵢ`.
pub fn loss_upper_bound_from_j(j_nats: f64, num_bags: usize, per_mvd_epsilon: &[f64]) -> f64 {
    assert!(num_bags >= 1);
    let m_minus_1 = (num_bags - 1) as f64;
    m_minus_1 * j_nats.max(0.0) + per_mvd_epsilon.iter().sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop51_bound_is_sum_of_log1p() {
        let losses = [0.0, 1.0, 3.0];
        let b = prop51_j_bound(&losses);
        let expected = 0.0 + (2.0f64).ln() + (4.0f64).ln();
        assert!((b - expected).abs() < 1e-12);
        assert_eq!(prop51_j_bound(&[]), 0.0);
    }

    #[test]
    fn prop51_with_zero_losses_gives_zero_bound() {
        assert_eq!(prop51_j_bound(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn prop51_rejects_negative_losses() {
        prop51_j_bound(&[-0.5]);
    }

    #[test]
    fn prop53_combines_cmi_and_epsilon() {
        let cmi = [0.2, 0.3];
        let eps = [0.05, 0.07];
        let j = 0.4;
        let b = prop53_schema_bound(&cmi, &eps, j, 0.1);
        assert!((b.sum_cmi_bound - (0.5 + 0.12)).abs() < 1e-12);
        assert!((b.j_based_bound - (2.0 * 0.4 + 0.12)).abs() < 1e-12);
        assert!((b.total_epsilon - 0.12).abs() < 1e-12);
        assert!((b.confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn prop53_j_bound_dominates_cmi_bound_by_theorem_2_2() {
        // When J >= every CMI (which Theorem 2.2's lower bound guarantees),
        // (m-1)*J >= sum of CMIs.
        let cmi = [0.2, 0.35, 0.1];
        let j: f64 = 0.4; // >= max cmi
        let eps = [0.0, 0.0, 0.0];
        let b = prop53_schema_bound(&cmi, &eps, j, 0.05);
        assert!(b.j_based_bound >= b.sum_cmi_bound - 1e-12);
    }

    #[test]
    #[should_panic]
    fn prop53_requires_matching_lengths() {
        prop53_schema_bound(&[0.1], &[0.1, 0.2], 0.1, 0.1);
    }

    #[test]
    fn loss_upper_bound_from_j_matches_formula() {
        let b = loss_upper_bound_from_j(0.5, 4, &[0.1, 0.1, 0.1]);
        assert!((b - (3.0 * 0.5 + 0.3)).abs() < 1e-12);
        // A single-bag schema has no support and no loss.
        assert_eq!(loss_upper_bound_from_j(0.7, 1, &[]), 0.0);
    }
}
