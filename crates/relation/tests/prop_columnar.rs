//! Observational-equivalence property tests of the columnar store.
//!
//! The dictionary-encoded columnar `Relation` must be indistinguishable
//! from a naive row store: every operation the measurement stack relies on
//! (`group_counts`, `project`, `project_multiset`, `distinct`,
//! `canonicalize`, `group_ids`) is compared bit-for-bit against a reference
//! implementation written here directly over `iter_rows()` — the seed's
//! row-hashing semantics — on random multiset relations, including raw
//! values scattered across the full `u32` range (so dictionary encode →
//! decode round-trips are exercised at the extremes).

use ajd_relation::{AttrId, AttrSet, Relation, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// Multiplies values by a large odd constant so raw values are scattered
/// over the whole `u32` range (dictionary codes stay dense regardless).
fn scatter(v: u32) -> u32 {
    v.wrapping_mul(2_654_435_761).wrapping_add(0xdead_beef)
}

/// A relation over `arity` attributes with (possibly duplicated) rows.
/// `scattered` maps the small generated values across the full u32 range.
fn relation_strategy(
    arity: usize,
    domain: Value,
    max_rows: usize,
    scattered: bool,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..max_rows).prop_map(
        move |rows| {
            let schema: Vec<AttrId> = (0..arity).map(AttrId::from).collect();
            let rows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|v| if scattered { scatter(v) } else { v })
                        .collect()
                })
                .collect();
            Relation::from_rows(schema, &rows).expect("generated rows have the right arity")
        },
    )
}

// ---------------------------------------------------------------------------
// Reference (row-path) implementations
// ---------------------------------------------------------------------------

fn ref_key(row: &[Value], positions: &[usize]) -> Vec<Value> {
    positions.iter().map(|&p| row[p]).collect()
}

/// The seed's `group_counts`: hash the projected value tuple of every row.
fn ref_group_counts(r: &Relation, attrs: &AttrSet) -> HashMap<Vec<Value>, u64> {
    let positions = r.attr_positions(attrs).unwrap();
    let mut counts: HashMap<Vec<Value>, u64> = HashMap::new();
    for row in r.iter_rows() {
        *counts.entry(ref_key(row, &positions)).or_insert(0) += 1;
    }
    counts
}

/// The seed's set-semantic projection: first-appearance dedup of value rows.
fn ref_project(r: &Relation, attrs: &AttrSet) -> Vec<Vec<Value>> {
    let positions = r.attr_positions(attrs).unwrap();
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
    let mut out = Vec::new();
    for row in r.iter_rows() {
        let key = ref_key(row, &positions);
        if seen.insert(key.clone(), ()).is_none() {
            out.push(key);
        }
    }
    out
}

/// The seed's multiset projection: one output row per input row.
fn ref_project_multiset(r: &Relation, attrs: &AttrSet) -> Vec<Vec<Value>> {
    let positions = r.attr_positions(attrs).unwrap();
    r.iter_rows().map(|row| ref_key(row, &positions)).collect()
}

/// The seed's `distinct`: first occurrence kept, insertion order preserved.
fn ref_distinct(r: &Relation) -> Vec<Vec<Value>> {
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
    let mut out = Vec::new();
    for row in r.iter_rows() {
        let key = row.to_vec();
        if seen.insert(key.clone(), ()).is_none() {
            out.push(key);
        }
    }
    out
}

/// The seed's `canonicalize`: ascending attribute order, sorted rows.
fn ref_canonicalize(r: &Relation) -> Vec<Vec<Value>> {
    let attrs = r.attrs();
    let positions = r.attr_positions(&attrs).unwrap();
    let mut rows: Vec<Vec<Value>> = r.iter_rows().map(|row| ref_key(row, &positions)).collect();
    rows.sort_unstable();
    rows
}

fn rows_of(r: &Relation) -> Vec<Vec<Value>> {
    r.iter_rows().map(|row| row.to_vec()).collect()
}

/// Checks one relation against every reference operation on one attribute
/// subset.  Returns an error string on the first mismatch (proptest style).
fn check_equivalence(r: &Relation, attrs: &AttrSet) -> Result<(), String> {
    // group_counts: identical key → count maps, identical totals.
    let counts = r.group_counts(attrs).map_err(|e| e.to_string())?;
    let reference = ref_group_counts(r, attrs);
    if counts.num_groups() != reference.len() {
        return Err(format!(
            "group_counts groups {} != reference {}",
            counts.num_groups(),
            reference.len()
        ));
    }
    if counts.total != r.len() as u128 {
        return Err("group_counts total mismatch".into());
    }
    for (key, count) in counts.iter() {
        if reference.get(key).copied().unwrap_or(0) != count {
            return Err(format!("count mismatch for key {key:?}"));
        }
    }

    // group_ids: per-row labels consistent with the reference partition.
    let ids = r.group_ids(attrs).map_err(|e| e.to_string())?;
    let positions = r.attr_positions(attrs).unwrap();
    let mut id_of_key: HashMap<Vec<Value>, u32> = HashMap::new();
    for (row, &id) in r.iter_rows().zip(ids.row_ids()) {
        let key = ref_key(row, &positions);
        match id_of_key.get(&key) {
            Some(&seen) if seen != id => {
                return Err(format!(
                    "rows with equal projection got ids {seen} and {id}"
                ))
            }
            None => {
                if ids.counts()[id as usize] != reference[&key] {
                    return Err(format!("group id {id} count mismatch"));
                }
                id_of_key.insert(key, id);
            }
            _ => {}
        }
    }
    if id_of_key.len() != ids.num_groups() {
        return Err("group id space not dense".into());
    }

    // project: identical rows in identical (first-appearance) order.
    let projected = r.project(attrs).map_err(|e| e.to_string())?;
    if rows_of(&projected) != ref_project(r, attrs) {
        return Err("project mismatch".into());
    }

    // project_multiset: identical rows in row order.
    let multiset = r.project_multiset(attrs).map_err(|e| e.to_string())?;
    if rows_of(&multiset) != ref_project_multiset(r, attrs) {
        return Err("project_multiset mismatch".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dictionary occupancy invariant: every constructor's output has every
    /// dictionary code occurring in at least one row.  The single-column
    /// `group_ids` fast path treats the code column as its own grouping, so
    /// a constructor leaving zero-occurrence codes behind (e.g. a careless
    /// column-wholesale copy) would make it emit phantom groups — this
    /// property pins every constructor to the invariant, and additionally
    /// checks the fast path's counts are all positive.
    #[test]
    fn every_constructor_preserves_dictionary_occupancy(
        r in relation_strategy(3, 4, 40, false),
        s in relation_strategy(3, 6, 40, false),
    ) {
        let half = AttrSet::from_ids([0u32, 1]);

        let mut outputs: Vec<(&str, Relation)> = vec![
            ("from_rows", r.clone()),
            ("distinct", r.distinct()),
            ("canonicalize", r.canonicalize()),
            ("project", r.project(&half).unwrap()),
            ("project_multiset", r.project_multiset(&half).unwrap()),
            ("select_eq", r.select_eq(AttrId(0), 1).unwrap()),
            (
                "reorder_columns",
                r.reorder_columns(&[AttrId(2), AttrId(0), AttrId(1)]).unwrap(),
            ),
        ];
        // Joins exercise the code-remap path: `s` shares attrs {0,1} with
        // `r` but draws from a larger domain, so remapping misses (probe
        // values absent from the build dictionaries) are common.
        let s01 = s.project(&half).unwrap();
        outputs.push(("natural_join", ajd_relation::join::natural_join(&r, &s01).unwrap()));
        outputs.push(("semijoin", ajd_relation::join::semijoin(&r, &s01).unwrap()));

        for (what, out) in &outputs {
            prop_assert!(
                out.dictionaries_fully_occupied(),
                "{what} produced zero-occurrence dictionary codes"
            );
            // The single-column fast path must never fabricate empty groups.
            for attr in out.schema() {
                let ids = out.group_ids(&AttrSet::singleton(*attr)).unwrap();
                prop_assert!(
                    ids.counts().iter().all(|&c| c > 0),
                    "{what}: single-column grouping on {attr} emitted an empty group"
                );
                prop_assert_eq!(ids.num_groups(), out.domain(*attr).unwrap().len());
            }
        }
    }

    /// Dense small values: the grouping kernel's mixed-radix path.
    #[test]
    fn columnar_matches_row_path_dense(r in relation_strategy(4, 4, 40, false)) {
        for attrs in [
            AttrSet::empty(),
            AttrSet::from_ids([0u32]),
            AttrSet::from_ids([1u32, 3]),
            AttrSet::from_ids([0u32, 1, 2]),
            AttrSet::from_ids([0u32, 1, 2, 3]),
        ] {
            if let Err(e) = check_equivalence(&r, &attrs) {
                return Err(format!("{e} (attrs {attrs})"));
            }
        }
        prop_assert_eq!(rows_of(&r.distinct()), ref_distinct(&r));
        prop_assert_eq!(rows_of(&r.canonicalize()), ref_canonicalize(&r));
        prop_assert_eq!(r.is_set(), ref_distinct(&r).len() == r.len());
    }

    /// Values scattered over the full u32 range: dictionaries do real work,
    /// and encode → decode must round-trip every raw value.
    #[test]
    fn columnar_matches_row_path_scattered(r in relation_strategy(3, 5, 40, true)) {
        for attrs in [
            AttrSet::from_ids([0u32]),
            AttrSet::from_ids([0u32, 2]),
            AttrSet::from_ids([0u32, 1, 2]),
        ] {
            if let Err(e) = check_equivalence(&r, &attrs) {
                return Err(format!("{e} (attrs {attrs})"));
            }
        }
        prop_assert_eq!(rows_of(&r.distinct()), ref_distinct(&r));
        prop_assert_eq!(rows_of(&r.canonicalize()), ref_canonicalize(&r));
    }

    /// Dictionary round-trip: the decoded view returns the pushed raw values
    /// untouched, the domain is exactly the distinct values in
    /// first-appearance order, and `code → value → code` is the identity.
    #[test]
    fn dictionary_roundtrips_all_values(
        rows in prop::collection::vec(prop::collection::vec(0u32..8, 2), 1..30),
        extreme in 0u32..4,
    ) {
        // Mix scattered values with boundary cases per generated case.
        let boundary = [0u32, 1, u32::MAX, u32::MAX - 1][extreme as usize];
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|row| vec![scatter(row[0]).max(2), boundary])
            .collect();
        let schema = vec![AttrId(0), AttrId(1)];
        let r = Relation::from_rows(schema, &rows).unwrap();

        // Decoded view round-trips exactly.
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(r.row(i), row.as_slice());
        }
        for attr in [AttrId(0), AttrId(1)] {
            let domain = r.domain(attr).unwrap();
            // Domain = distinct values in first-appearance order.
            let mut expected: Vec<Value> = Vec::new();
            let pos = r.attr_pos(attr).unwrap();
            for row in &rows {
                if !expected.contains(&row[pos]) {
                    expected.push(row[pos]);
                }
            }
            prop_assert_eq!(domain, expected.as_slice());
            prop_assert_eq!(r.active_domain_size(attr).unwrap(), expected.len());
            // code → value → code is the identity.
            for (code, &value) in domain.iter().enumerate() {
                prop_assert_eq!(r.code_of(attr, value).unwrap(), Some(code as u32));
            }
            // Codes decode back to the row's raw value.
            let codes = r.column_codes(attr).unwrap();
            for (i, &code) in codes.iter().enumerate() {
                prop_assert_eq!(domain[code as usize], r.row(i)[pos]);
            }
        }
    }
}
