//! The explorer: bounded depth-first search over schedules.
//!
//! One *run* executes the test body under a schedule — a sequence of
//! decisions, each picking which thread to resume (or which condvar
//! waiter to wake) among the candidates at that point.  The explorer
//! replays the longest prefix of the previous run's decisions, flips the
//! deepest decision that still has an untried alternative, and repeats
//! until the tree is exhausted or a bound trips.  Because a run is fully
//! determined by its decision sequence (see [`crate::runtime`]), any
//! failing schedule can be replayed verbatim.
//!
//! Bounds (all overridable per [`Model`] and via environment):
//!
//! | knob | env var | default |
//! |------|---------|---------|
//! | max schedules per check | `AJD_MODEL_MAX_SCHEDULES` | 100 000 |
//! | preemption bound | `AJD_MODEL_PREEMPTION_BOUND` | unbounded |
//! | per-run operation budget | `AJD_MODEL_MAX_OPS` | 200 000 |
//!
//! `AJD_MODEL_REPLAY=<schedule>` makes [`Model::check`] run exactly that
//! schedule instead of exploring (optionally gated to one check by
//! `AJD_MODEL_REPLAY_TEST=<name>`).

use crate::runtime::{self, Choice, Handle, Runtime, ViolationKind};
use std::sync::Arc;

/// A violation found by exploration, with the schedule that triggers it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable detail (thread states, panic message, …).
    pub message: String,
    /// The failing schedule: comma-separated chosen thread ids, suitable
    /// for [`Model::replay`] / `AJD_MODEL_REPLAY`.
    pub schedule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}\n  failing schedule: {}",
            self.kind, self.message, self.schedule
        )
    }
}

/// What an exploration produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// `true` when the whole decision tree was explored (no bound trip).
    pub exhausted: bool,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

/// Builder for a model-checking run: bounds plus the entry points
/// [`Model::check`], [`Model::explore`], and [`Model::replay`].
#[derive(Debug, Clone)]
pub struct Model {
    max_schedules: usize,
    preemption_bound: Option<usize>,
    max_ops: u64,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Model {
    /// A model with default bounds, overridden by the `AJD_MODEL_*`
    /// environment variables where set (that is how CI pins exploration
    /// budgets without touching test code).
    pub fn new() -> Self {
        Model {
            max_schedules: env_usize("AJD_MODEL_MAX_SCHEDULES").unwrap_or(100_000),
            preemption_bound: env_usize("AJD_MODEL_PREEMPTION_BOUND"),
            max_ops: env_usize("AJD_MODEL_MAX_OPS").unwrap_or(200_000) as u64,
        }
    }

    /// Caps the number of schedules explored per check.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n.max(1);
        self
    }

    /// Bounds preemptive context switches per run (switches away from a
    /// still-runnable thread).  Small bounds (2–3) catch most real bugs
    /// at a fraction of the cost of exhaustive search.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = Some(n);
        self
    }

    /// Per-run scheduled-operation budget (livelock detector).
    pub fn max_ops(mut self, n: u64) -> Self {
        self.max_ops = n.max(1);
        self
    }

    /// Executes `body` once under `script` and returns the outcome.
    fn run_once<F>(&self, script: Vec<usize>, body: &F) -> runtime::RunOutcome
    where
        F: Fn() + Sync,
    {
        let rt = Arc::new(Runtime::new(script, self.preemption_bound, self.max_ops));
        // Register the root virtual thread (id 0) before its OS thread
        // exists, so the controller never observes an empty run.
        let root = rt.register();
        std::thread::scope(|s| {
            let rt2 = Arc::clone(&rt);
            s.spawn(move || {
                crate::thread::run_virtual(rt2, root, body);
            });
            rt.control()
        })
    }

    /// Explores schedules of `body` until a violation is found, the tree
    /// is exhausted, or the schedule budget is spent.
    pub fn explore<F>(&self, body: F) -> Report
    where
        F: Fn() + Sync,
    {
        let mut script: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let outcome = self.run_once(script.clone(), &body);
            schedules += 1;
            if let Some(failure) = outcome.failure {
                return Report {
                    schedules,
                    exhausted: false,
                    violation: Some(Violation {
                        kind: failure.kind,
                        message: failure.message,
                        schedule: schedule_string(&outcome.trace),
                    }),
                };
            }
            match next_script(&outcome.trace) {
                None => {
                    return Report {
                        schedules,
                        exhausted: true,
                        violation: None,
                    }
                }
                Some(_) if schedules >= self.max_schedules => {
                    return Report {
                        schedules,
                        exhausted: false,
                        violation: None,
                    }
                }
                Some(next) => script = next,
            }
        }
    }

    /// Runs `body` under exactly one schedule (as produced by a previous
    /// failure) and returns the violation it reproduces, if any.
    pub fn replay<F>(&self, schedule: &str, body: F) -> Option<Violation>
    where
        F: Fn() + Sync,
    {
        let script = parse_schedule(schedule);
        let consumed = script.len();
        let outcome = self.run_once(script, &body);
        if let Some(failure) = outcome.failure {
            return Some(Violation {
                kind: failure.kind,
                message: failure.message,
                schedule: schedule_string(&outcome.trace),
            });
        }
        if outcome.trace.len() < consumed {
            return Some(Violation {
                kind: ViolationKind::Divergence,
                message: format!(
                    "replay schedule has {consumed} decisions but the run only hit {}; \
                     the code under test has changed since this schedule was recorded",
                    outcome.trace.len()
                ),
                schedule: schedule.to_owned(),
            });
        }
        None
    }

    /// Explores `body` and **panics** on any violation, printing the
    /// failing schedule and how to replay it.  This is the assertion
    /// entry point model tests call; `name` labels the check in failure
    /// output and for `AJD_MODEL_REPLAY_TEST` gating.
    pub fn check<F>(&self, name: &str, body: F)
    where
        F: Fn() + Sync,
    {
        if let Ok(schedule) = std::env::var("AJD_MODEL_REPLAY") {
            let gated = std::env::var("AJD_MODEL_REPLAY_TEST")
                .map(|t| t != name)
                .unwrap_or(false);
            if !gated {
                match self.replay(&schedule, body) {
                    Some(v) => panic!("model check '{name}' (replay) failed: {v}"),
                    None => return,
                }
            }
        }
        let report = self.explore(body);
        if let Some(v) = report.violation {
            panic!(
                "model check '{name}' failed after {} schedule(s): {v}\n  \
                 replay with: AJD_MODEL_REPLAY={} AJD_MODEL_REPLAY_TEST={name} \
                 cargo test (same target, --cfg ajd_model)",
                report.schedules, v.schedule
            );
        }
    }
}

/// The schedule a trace encodes: comma-separated chosen thread ids.
fn schedule_string(trace: &[Choice]) -> String {
    trace
        .iter()
        .map(|c| c.chosen_thread().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_schedule(s: &str) -> Vec<usize> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| panic!("malformed AJD_MODEL_REPLAY step {t:?}"))
        })
        .collect()
}

/// DFS step: the script that replays `trace` up to its deepest decision
/// with an untried alternative, then takes that alternative.  `None` when
/// every decision has been fully explored.
fn next_script(trace: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let c = &trace[i];
        if c.taken + 1 < c.options.len() {
            let mut script: Vec<usize> = trace[..i].iter().map(Choice::chosen_thread).collect();
            script.push(c.options[c.taken + 1]);
            return Some(script);
        }
    }
    None
}

/// Yield point re-exported for tests that need an explicit interleaving
/// opportunity inside a model body (equivalent to `thread::yield_now`).
pub fn yield_point() {
    if let Some(Handle { rt, me }) = runtime::current() {
        rt.yield_runnable(me);
    }
}
