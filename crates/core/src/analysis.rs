//! One-stop loss analysis of an acyclic schema with respect to a relation.
//!
//! [`LossAnalysis`] evaluates, for a relation `R` and a join tree `T`:
//!
//! * the exact loss `ρ(R,S)` of eq. (1), via message-passing join counting;
//! * the J-measure `J(T)` (eq. 7) and the KL-divergence `D_KL(P‖P^T)`
//!   (Theorem 3.2) — equal up to floating point, reported separately as a
//!   numerical cross-check;
//! * the per-MVD decomposition over the ordered support (eq. 9): loss,
//!   `log(1+ρ)` and conditional mutual information of every support MVD;
//! * the deterministic bounds: Lemma 4.1 (`ρ ≥ e^J − 1`) and
//!   Proposition 5.1 (`J(R,S) ≤ Σ log(1+ρ(R,φᵢ))`);
//! * optionally, the probabilistic bounds of Theorem 5.1 / Proposition 5.3
//!   with the `ε*` deviation instantiated from the *measured* active domain
//!   sizes of each support MVD.

use ajd_bounds::{
    epsilon_star, j_lower_bound_on_loss, prop51_j_bound, prop53_schema_bound, Prop53Bound,
    Thm51Params,
};
use ajd_info::jmeasure::{j_measure_bounds_ctx, j_measure_ctx, JMeasureBounds};
use ajd_info::{kl_divergence_to_tree_ctx, mvd_cmi_ctx};
use ajd_jointree::mvd::ordered_support;
use ajd_jointree::{count_acyclic_join_ctx, JoinTree, Mvd};
use ajd_relation::{AnalysisContext, Relation, RelationError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Loss and information measures of a single support MVD `φᵢ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MvdLoss {
    /// The MVD `Δᵢ ↠ Ω_{1:i-1} | Ω_{i:m}`.
    pub mvd: Mvd,
    /// Conditional mutual information `I(Ω_{1:i-1}; Ω_{i:m} | Δᵢ)` in nats.
    pub cmi_nats: f64,
    /// The loss `ρ(R, φᵢ)` of the two-way decomposition (eq. 28).
    pub rho: f64,
    /// `log(1 + ρ(R, φᵢ))` in nats.
    pub log1p_rho: f64,
    /// Measured active-domain sizes `(d_A, d_B, d_C)` of the two exclusive
    /// sides and the separator (value-combination counts), used to
    /// instantiate Theorem 5.1.
    pub domain_sizes: (u64, u64, u64),
}

/// The probabilistic (Theorem 5.1 / Proposition 5.3) upper bounds, together
/// with the per-MVD deviation terms and qualifying-condition flags.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilisticBounds {
    /// Per-MVD deviation `ε*(φᵢ, N, δ/(m−1))` in nats.
    pub per_mvd_epsilon: Vec<f64>,
    /// Whether the qualifying condition (37) holds for each support MVD.
    pub per_mvd_qualified: Vec<bool>,
    /// The schema-level bounds of Proposition 5.3.
    pub schema_bound: Prop53Bound,
    /// The confidence parameter `δ` the caller requested.
    pub delta: f64,
}

/// Everything the paper says about one `(R, S)` pair, in one struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossReport {
    /// Number of tuples `N = |R|` (with multiplicity for multisets).
    pub n: u64,
    /// Number of *distinct* tuples of `R`.  Equals [`LossReport::n`] for set
    /// relations; for multisets the loss is measured against this value,
    /// since bag projections are set-semantic and the rejoined relation is
    /// compared with `distinct(R)`.
    pub distinct_n: u64,
    /// Number of bags `m` of the schema.
    pub num_bags: usize,
    /// Exact size of the acyclic join `|⋈ᵢ R[Ωᵢ]|`.
    pub join_size: u128,
    /// Number of spurious tuples `|⋈ᵢ R[Ωᵢ]| − |distinct(R)|`.
    pub spurious: u128,
    /// The loss `ρ(R,S)` of eq. (1).
    pub rho: f64,
    /// `log(1 + ρ(R,S))` in nats.
    pub log1p_rho: f64,
    /// The J-measure `J(T)` in nats (eq. 7).
    pub j_measure: f64,
    /// `D_KL(P_R ‖ P_R^T)` in nats, computed independently of `J` as a
    /// numerical cross-check of Theorem 3.2.
    pub kl_nats: f64,
    /// Lemma 4.1 lower bound on the loss: `e^J − 1 ≤ ρ`.
    pub rho_lower_bound: f64,
    /// Theorem 2.2 sandwich around `J`.
    pub theorem22: JMeasureBounds,
    /// Per-MVD losses over the ordered support of the tree rooted at 0.
    pub per_mvd: Vec<MvdLoss>,
    /// Proposition 5.1 deterministic upper bound on the J-measure:
    /// `J(R,S) ≤ Σᵢ log(1 + ρ(R,φᵢ))`.  (The loss itself does not compose
    /// this way; see `ajd_bounds::schema`.)
    pub prop51_bound: f64,
}

impl LossReport {
    /// `true` if the schema is lossless for this relation
    /// (`ρ = 0`, equivalently `J = 0` by Theorem 2.1).
    pub fn is_lossless(&self) -> bool {
        self.spurious == 0
    }

    /// The gap `log(1+ρ) − J ≥ 0` of Lemma 4.1 (0 exactly when the lower
    /// bound is tight, as for Example 4.1).
    pub fn lemma41_gap(&self) -> f64 {
        self.log1p_rho - self.j_measure
    }
}

impl fmt::Display for LossReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Loss analysis (N = {}, m = {} bags)",
            self.n, self.num_bags
        )?;
        if self.distinct_n != self.n {
            writeln!(f, "  distinct tuples    : {}", self.distinct_n)?;
        }
        writeln!(f, "  join size          : {}", self.join_size)?;
        writeln!(f, "  spurious tuples    : {}", self.spurious)?;
        writeln!(f, "  rho (loss)         : {:.6}", self.rho)?;
        writeln!(f, "  log(1+rho)  [nats] : {:.6}", self.log1p_rho)?;
        writeln!(f, "  J-measure   [nats] : {:.6}", self.j_measure)?;
        writeln!(f, "  KL(P || P^T)[nats] : {:.6}", self.kl_nats)?;
        writeln!(f, "  Lemma 4.1 rho >=   : {:.6}", self.rho_lower_bound)?;
        writeln!(f, "  Prop 5.1 bound     : {:.6}", self.prop51_bound)?;
        writeln!(f, "  support MVDs:")?;
        for (i, m) in self.per_mvd.iter().enumerate() {
            writeln!(
                f,
                "    phi_{}: {}   I = {:.6}, rho = {:.6}",
                i + 2,
                m.mvd,
                m.cmi_nats,
                m.rho
            )?;
        }
        Ok(())
    }
}

/// Analyzer binding a relation to a join tree.
#[derive(Debug, Clone)]
pub struct LossAnalysis<'a> {
    relation: &'a Relation,
    tree: JoinTree,
    report: LossReport,
}

impl<'a> LossAnalysis<'a> {
    /// Prepares the analysis and computes the full [`LossReport`] through a
    /// private, throwaway [`AnalysisContext`].
    ///
    /// When analysing several trees over the same relation, build one
    /// context (or use [`crate::BatchAnalyzer`]) and call
    /// [`LossAnalysis::with_context`] so the grouping work is shared.
    pub fn new(r: &'a Relation, tree: &JoinTree) -> Result<Self> {
        Self::with_context(&AnalysisContext::new(r), tree)
    }

    /// Prepares the analysis over a shared [`AnalysisContext`], computing
    /// the full [`LossReport`] with every projection and group count served
    /// from (and memoized into) the context's caches.
    ///
    /// Requirements: the relation must be non-empty and the tree's
    /// attributes must be exactly the relation's attributes (so that the
    /// empirical distributions and `P^T` live over the same variable set).
    ///
    /// Multiset relations are accepted — information measures then weight
    /// tuples by multiplicity, and the loss side (`join_size`, `spurious`,
    /// `ρ`) is measured against the number of *distinct* tuples
    /// ([`LossReport::distinct_n`]), because bag projections are
    /// set-semantic and the rejoined relation contains each tuple once.
    /// The paper's statements relating `J` to `ρ` (Lemma 4.1,
    /// Proposition 5.1) assume a *set* relation; call
    /// [`Relation::distinct`] first if your data has duplicates and you
    /// want those guarantees.
    pub fn with_context(ctx: &AnalysisContext<'a>, tree: &JoinTree) -> Result<Self> {
        let r = ctx.relation();
        if r.is_empty() {
            return Err(RelationError::EmptyInput("relation for loss analysis"));
        }
        if tree.attributes() != r.attrs() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "join tree covers {} but the relation has attributes {}",
                    tree.attributes(),
                    r.attrs()
                ),
            });
        }

        let n = r.len() as u64;
        // For a set relation this is `n`; for a multiset it is the size of
        // `distinct(R)`, the baseline the rejoined (set-semantic) join must
        // be compared against.  (The full-relation group counts also back
        // `H(Ω)` and the KL sum, so this grouping is shared, not extra.)
        let distinct_n = ctx.group_counts(&r.attrs())?.num_groups() as u64;
        let join_size = count_acyclic_join_ctx(ctx, tree)?;
        let spurious = join_size
            .checked_sub(distinct_n as u128)
            .expect("the acyclic join contains every distinct tuple of R");
        let rho = (join_size as f64 - distinct_n as f64) / distinct_n as f64;
        let j = j_measure_ctx(ctx, tree)?;
        let kl = kl_divergence_to_tree_ctx(ctx, tree)?;
        let theorem22 = j_measure_bounds_ctx(ctx, tree, 0)?;

        let rooted = tree.rooted(0)?;
        let support = ordered_support(&rooted);
        let mut per_mvd = Vec::with_capacity(support.len());
        for mvd in support {
            let cmi = mvd_cmi_ctx(ctx, &mvd)?;
            // Ordered-support MVDs cover all of Ω, so this is measured
            // against the same distinct-tuple baseline as the schema loss.
            let mvd_rho = mvd.loss_ctx(ctx)?;
            let d_a = ctx.group_counts(&mvd.left_exclusive())?.num_groups() as u64;
            let d_b = ctx.group_counts(&mvd.right_exclusive())?.num_groups() as u64;
            let d_c = if mvd.lhs.is_empty() {
                1
            } else {
                ctx.group_counts(&mvd.lhs)?.num_groups() as u64
            };
            per_mvd.push(MvdLoss {
                cmi_nats: cmi,
                rho: mvd_rho,
                log1p_rho: mvd_rho.ln_1p(),
                domain_sizes: (d_a, d_b, d_c),
                mvd,
            });
        }
        let prop51_bound = prop51_j_bound(&per_mvd.iter().map(|m| m.rho).collect::<Vec<_>>());

        let report = LossReport {
            n,
            distinct_n,
            num_bags: tree.num_nodes(),
            join_size,
            spurious,
            rho,
            log1p_rho: rho.ln_1p(),
            j_measure: j,
            kl_nats: kl,
            rho_lower_bound: j_lower_bound_on_loss(j.max(0.0)),
            theorem22,
            per_mvd,
            prop51_bound,
        };

        Ok(LossAnalysis {
            relation: r,
            tree: tree.clone(),
            report,
        })
    }

    /// The relation being analysed.
    pub fn relation(&self) -> &Relation {
        self.relation
    }

    /// The join tree being analysed.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The computed report (cheap clone of the precomputed values).
    pub fn report(&self) -> LossReport {
        self.report.clone()
    }

    /// Evaluates the probabilistic upper bounds of Theorem 5.1 /
    /// Proposition 5.3 at total confidence `1 − δ`.
    ///
    /// Each support MVD's `ε*` is instantiated at confidence `δ/(m−1)` with
    /// the *measured* active-domain sizes of its sides, as recorded in the
    /// report.  The returned struct also reports, per MVD, whether the
    /// qualifying condition (37) of Theorem 5.1 holds; when it does not, the
    /// ε-term is still computed but the paper gives no guarantee.
    ///
    /// `delta` must lie strictly inside `(0, 1)`; values outside that range
    /// yield [`RelationError::InvalidParameter`] (library code must not
    /// panic on caller input).
    pub fn probabilistic_bounds(&self, delta: f64) -> Result<ProbabilisticBounds> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(RelationError::InvalidParameter {
                what: "delta",
                detail: format!("confidence parameter must be in (0,1), got {delta}"),
            });
        }
        let m_minus_1 = self.report.per_mvd.len().max(1);
        let per_delta = delta / m_minus_1 as f64;
        let mut eps = Vec::with_capacity(self.report.per_mvd.len());
        let mut qualified = Vec::with_capacity(self.report.per_mvd.len());
        let mut cmis = Vec::with_capacity(self.report.per_mvd.len());
        for m in &self.report.per_mvd {
            let (d_a, d_b, d_c) = m.domain_sizes;
            let params =
                Thm51Params::new(d_a.max(1), d_b.max(1), d_c.max(1), self.report.n, per_delta);
            eps.push(epsilon_star(&params));
            qualified.push(ajd_bounds::thm51_qualifying_condition(&params));
            cmis.push(m.cmi_nats);
        }
        let schema_bound = prop53_schema_bound(&cmis, &eps, self.report.j_measure, delta);
        Ok(ProbabilisticBounds {
            per_mvd_epsilon: eps,
            per_mvd_qualified: qualified,
            schema_bound,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajd_random::generators::{bijection_relation, conditional_product_relation};
    use ajd_random::RandomRelationModel;
    use ajd_relation::{AttrId, AttrSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bag(ids: &[u32]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn cross_tree() -> JoinTree {
        JoinTree::new(vec![bag(&[0]), bag(&[1])], vec![(0, 1)]).unwrap()
    }

    #[test]
    fn bijection_relation_report_matches_example_4_1() {
        let n = 16u32;
        let r = bijection_relation(n);
        let a = LossAnalysis::new(&r, &cross_tree()).unwrap();
        let rep = a.report();
        assert_eq!(rep.n, n as u64);
        assert_eq!(rep.join_size, (n as u128) * (n as u128));
        assert_eq!(rep.spurious, (n as u128) * (n as u128) - n as u128);
        assert!((rep.rho - (n as f64 - 1.0)).abs() < 1e-9);
        // Tightness of Lemma 4.1 on this family.
        assert!(rep.lemma41_gap().abs() < 1e-9);
        assert!((rep.j_measure - (n as f64).ln()).abs() < 1e-9);
        assert!((rep.rho_lower_bound - rep.rho).abs() < 1e-6);
        assert!(!rep.is_lossless());
    }

    #[test]
    fn lossless_relation_reports_zero_everything() {
        let r = conditional_product_relation(4, 3, 2);
        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let rep = LossAnalysis::new(&r, &tree).unwrap().report();
        assert!(rep.is_lossless());
        assert_eq!(rep.spurious, 0);
        assert!(rep.rho.abs() < 1e-12);
        assert!(rep.j_measure.abs() < 1e-9);
        assert!(rep.kl_nats.abs() < 1e-9);
        assert!(rep.rho_lower_bound.abs() < 1e-9);
        assert!(rep.prop51_bound.abs() < 1e-9);
        for m in &rep.per_mvd {
            assert!(m.rho.abs() < 1e-12);
            assert!(m.cmi_nats.abs() < 1e-9);
        }
    }

    #[test]
    fn theorem_3_2_and_lemma_4_1_hold_on_random_relations() {
        let mut rng = StdRng::seed_from_u64(2024);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![6, 5, 4, 3]).unwrap());
        let trees = vec![
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ];
        for _ in 0..5 {
            let r = model.sample(&mut rng, 80).unwrap();
            for tree in &trees {
                let rep = LossAnalysis::new(&r, tree).unwrap().report();
                // Theorem 3.2: J = KL.
                assert!((rep.j_measure - rep.kl_nats).abs() < 1e-9);
                // Lemma 4.1: J <= log(1+rho).
                assert!(rep.j_measure <= rep.log1p_rho + 1e-9);
                // Proposition 5.1: J <= sum log(1+rho_i).
                assert!(rep.j_measure <= rep.prop51_bound + 1e-9);
                // Theorem 2.2 sandwich.
                assert!(rep.theorem22.max_cmi <= rep.j_measure + 1e-9);
                assert!(rep.j_measure <= rep.theorem22.sum_cmi + 1e-9);
            }
        }
    }

    #[test]
    fn per_mvd_breakdown_has_one_entry_per_edge() {
        let mut rng = StdRng::seed_from_u64(7);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![4, 4, 4, 4]).unwrap());
        let r = model.sample(&mut rng, 60).unwrap();
        let tree = JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap();
        let rep = LossAnalysis::new(&r, &tree).unwrap().report();
        assert_eq!(rep.per_mvd.len(), tree.num_edges());
        for m in &rep.per_mvd {
            assert!(m.rho >= 0.0);
            assert!(m.cmi_nats >= -1e-9);
            // Lemma 4.1 applied to a single MVD: I(A;B|C) <= log(1+rho_i).
            assert!(m.cmi_nats <= m.log1p_rho + 1e-9);
            assert!(m.domain_sizes.0 >= 1 && m.domain_sizes.1 >= 1 && m.domain_sizes.2 >= 1);
        }
    }

    #[test]
    fn probabilistic_bounds_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RandomRelationModel::for_mvd(8, 8, 2).unwrap();
        let r = model.sample(&mut rng, 100).unwrap();
        let tree = JoinTree::new(vec![bag(&[0, 2]), bag(&[1, 2])], vec![(0, 1)]).unwrap();
        let analysis = LossAnalysis::new(&r, &tree).unwrap();
        let pb = analysis.probabilistic_bounds(0.1).unwrap();
        assert_eq!(pb.per_mvd_epsilon.len(), 1);
        assert_eq!(pb.per_mvd_qualified.len(), 1);
        assert!(pb.per_mvd_epsilon[0] > 0.0);
        assert!((pb.schema_bound.confidence - 0.9).abs() < 1e-12);
        // With only 100 tuples the qualifying condition cannot hold.
        assert!(!pb.per_mvd_qualified[0]);
        // The eps-inflated bound dominates the measured log(1+rho)
        // trivially here (eps is huge for tiny N).
        assert!(pb.schema_bound.sum_cmi_bound >= analysis.report().log1p_rho);
    }

    /// Regression: an out-of-range `delta` used to `assert!` (panicking in
    /// library code); it must now surface as a proper error.
    #[test]
    fn probabilistic_bounds_reject_out_of_range_delta() {
        let r = bijection_relation(4);
        let analysis = LossAnalysis::new(&r, &cross_tree()).unwrap();
        for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            let err = analysis.probabilistic_bounds(bad).unwrap_err();
            assert!(
                matches!(err, RelationError::InvalidParameter { what: "delta", .. }),
                "expected InvalidParameter for delta = {bad}, got {err}"
            );
        }
        assert!(analysis.probabilistic_bounds(0.05).is_ok());
    }

    /// Regression: for multiset relations the spurious-tuple count used to
    /// be computed as `join_size − N` in `u128`, underflowing (debug panic,
    /// release wraparound and negative ρ) whenever duplicates made the
    /// set-semantic join smaller than `N`.  The loss is now measured
    /// against the distinct-tuple count.
    #[test]
    fn multiset_relation_loss_measured_against_distinct_tuples() {
        // 3 distinct tuples, one duplicated 3 times: N = 5, distinct = 3.
        let r = Relation::from_rows(
            vec![AttrId(0), AttrId(1)],
            &[
                &[0, 0][..],
                &[0, 0][..],
                &[0, 0][..],
                &[1, 0][..],
                &[1, 1][..],
            ],
        )
        .unwrap();
        assert!(!r.is_set());
        // Join of the singleton projections: {0,1} x {0,1} = 4 < N = 5.
        let analysis = LossAnalysis::new(&r, &cross_tree()).unwrap();
        let rep = analysis.report();
        assert_eq!(rep.n, 5);
        assert_eq!(rep.distinct_n, 3);
        assert_eq!(rep.join_size, 4);
        assert_eq!(rep.spurious, 1);
        assert!(rep.rho >= 0.0);
        assert!((rep.rho - 1.0 / 3.0).abs() < 1e-12);
        // Per-MVD losses are measured against the same baseline.
        for m in &rep.per_mvd {
            assert!(m.rho >= 0.0);
        }
        // The information side still weights tuples by multiplicity.
        assert!(rep.j_measure >= 0.0);
        assert!((rep.j_measure - rep.kl_nats).abs() < 1e-9);
    }

    #[test]
    fn set_relation_reports_distinct_equal_to_n() {
        let r = bijection_relation(6);
        let rep = LossAnalysis::new(&r, &cross_tree()).unwrap().report();
        assert_eq!(rep.distinct_n, rep.n);
    }

    #[test]
    fn with_context_matches_new_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        let model =
            RandomRelationModel::new(ajd_random::ProductDomain::new(vec![5, 4, 4, 3]).unwrap());
        let r = model.sample(&mut rng, 70).unwrap();
        let ctx = AnalysisContext::new(&r);
        for tree in [
            JoinTree::path(vec![bag(&[0, 1]), bag(&[1, 2]), bag(&[2, 3])]).unwrap(),
            JoinTree::star(vec![bag(&[0, 1]), bag(&[0, 2]), bag(&[0, 3])]).unwrap(),
        ] {
            let fresh = LossAnalysis::new(&r, &tree).unwrap().report();
            let shared = LossAnalysis::with_context(&ctx, &tree).unwrap().report();
            assert_eq!(fresh.join_size, shared.join_size);
            assert_eq!(fresh.spurious, shared.spurious);
            // Bit-identical floats, not just approximately equal.
            assert_eq!(fresh.rho.to_bits(), shared.rho.to_bits());
            assert_eq!(fresh.j_measure.to_bits(), shared.j_measure.to_bits());
            assert_eq!(fresh.kl_nats.to_bits(), shared.kl_nats.to_bits());
            for (a, b) in fresh.per_mvd.iter().zip(&shared.per_mvd) {
                assert_eq!(a.cmi_nats.to_bits(), b.cmi_nats.to_bits());
                assert_eq!(a.rho.to_bits(), b.rho.to_bits());
                assert_eq!(a.domain_sizes, b.domain_sizes);
            }
        }
        assert!(ctx.stats().hits > 0);
    }

    #[test]
    fn mismatched_tree_and_relation_are_rejected() {
        let r = bijection_relation(4);
        let tree = JoinTree::new(vec![bag(&[0]), bag(&[2])], vec![(0, 1)]).unwrap();
        assert!(LossAnalysis::new(&r, &tree).is_err());
        let empty = Relation::new(vec![AttrId(0), AttrId(1)]).unwrap();
        assert!(LossAnalysis::new(&empty, &cross_tree()).is_err());
    }

    #[test]
    fn display_renders_all_sections() {
        let r = bijection_relation(4);
        let rep = LossAnalysis::new(&r, &cross_tree()).unwrap().report();
        let s = format!("{rep}");
        assert!(s.contains("spurious"));
        assert!(s.contains("J-measure"));
        assert!(s.contains("phi_2"));
    }
}
