//! Executes `docs/PROTOCOL.md` against a live server.
//!
//! The spec's fenced code blocks ARE the test vectors: the block tagged
//! `csv fixture` is the flat catalog entry, the block tagged
//! `csv fixture sharded` is the live sharded entry (loaded as two shards
//! of two rows), every block tagged `json request` or `text request` is a
//! request line, and each is answered by the next block tagged
//! `json response`.  Each pair runs against a **fresh** server (with the
//! admission config the spec pins), so the examples are deterministic and
//! the document cannot drift from the implementation.

use ajd_relation::ReadOptions;
use ajd_server::{AdmissionConfig, Json, RelationStore, Server, ServerConfig};

const SPEC: &str = include_str!("../../../docs/PROTOCOL.md");

/// A fenced code block: info string (the text after ```) and body.
struct Block {
    info: String,
    body: String,
}

fn fenced_blocks(markdown: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for line in markdown.lines() {
        match current.as_mut() {
            None => {
                if let Some(info) = line.strip_prefix("```") {
                    if !info.trim().is_empty() {
                        current = Some(Block {
                            info: info.trim().to_owned(),
                            body: String::new(),
                        });
                    }
                }
            }
            Some(block) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    block.body.push_str(line);
                    block.body.push('\n');
                }
            }
        }
    }
    blocks
}

/// The admission config the spec's examples are pinned to.
fn pinned_config() -> ServerConfig {
    ServerConfig {
        admission: AdmissionConfig {
            point_slots: 4,
            mine_slots: 2,
            queue_depth: 8,
            point_threads: 1,
            mine_threads: 1,
        },
    }
}

#[test]
fn every_spec_example_is_live() {
    let blocks = fenced_blocks(SPEC);
    let fixture = blocks
        .iter()
        .find(|b| b.info == "csv fixture")
        .expect("the spec must contain a `csv fixture` block");
    let sharded_fixture = blocks
        .iter()
        .find(|b| b.info == "csv fixture sharded")
        .expect("the spec must contain a `csv fixture sharded` block");

    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut pending_request: Option<&str> = None;
    for block in &blocks {
        match block.info.as_str() {
            "json request" | "text request" => {
                assert!(
                    pending_request.is_none(),
                    "two request blocks in a row in the spec (around {:?})",
                    block.body.trim()
                );
                pending_request = Some(block.body.trim_end_matches('\n'));
            }
            "json response" => {
                let request = pending_request
                    .take()
                    .expect("a `json response` block must follow a request block");
                pairs.push((request, block.body.trim_end_matches('\n')));
            }
            _ => {}
        }
    }
    assert!(
        pending_request.is_none(),
        "a request block at the end of the spec has no response"
    );
    assert!(
        pairs.len() >= 12,
        "the spec documents at least 12 worked examples, found {}",
        pairs.len()
    );

    for (request, expected) in pairs {
        assert!(
            !request.contains('\n'),
            "request examples must be single lines: {request:?}"
        );
        // Fresh server per example: the spec's frames are cold-state.
        let (catalog, relation) =
            ajd_relation::io::read_delimited(&sharded_fixture.body, ReadOptions::default())
                .expect("spec sharded fixture must load");
        let stores = vec![
            RelationStore::from_delimited("courses", &fixture.body, ReadOptions::default())
                .expect("spec fixture must load"),
            RelationStore::sharded(
                "events",
                catalog,
                relation
                    .into_shards(2)
                    .expect("spec sharded fixture shards"),
            )
            .expect("spec sharded fixture must load"),
        ];
        let server = Server::new(&stores, pinned_config()).expect("server over spec fixture");
        let actual = server.handle_line(request);
        let expected_json = Json::parse(expected)
            .unwrap_or_else(|e| panic!("spec response is not valid JSON ({e}): {expected}"));
        assert_eq!(
            actual.to_string(),
            expected_json.to_string(),
            "\nspec drift for request:\n  {request}\nexpected:\n  {expected}\ngot:\n  {actual}\n"
        );
    }
}

/// Every `json request` block in the spec must itself be valid JSON (the
/// deliberately-malformed example is tagged `text request` instead).
#[test]
fn spec_request_blocks_are_valid_json() {
    for block in fenced_blocks(SPEC) {
        if block.info == "json request" || block.info == "json response" {
            let body = block.body.trim();
            Json::parse(body)
                .unwrap_or_else(|e| panic!("spec block is not valid JSON ({e}): {body}"));
        }
    }
}
